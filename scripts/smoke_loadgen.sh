#!/usr/bin/env bash
# Overload smoke: synthesize a bursty tenant-mixed trace, replay it with
# `tracto loadgen` against a real rate-limited `tracto serve` process, and
# require the overload ladder to fire without breaking the contract:
#   - the generator drains cleanly (every accepted job settles; exit 0),
#   - a nonzero number of requests is shed with typed capacity errors,
#   - the server never panics.
# The trace is seeded from TRACTO_CHAOS_SEED (default 1) so a failing
# schedule can be replayed exactly.
# Usage: scripts/smoke_loadgen.sh  [uses target/debug/tracto or $TRACTO_BIN]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${TRACTO_BIN:-target/debug/tracto}
if [[ ! -x "$BIN" ]]; then
  echo "== building tracto-cli =="
  cargo build -q -p tracto-cli
fi

SEED=${TRACTO_CHAOS_SEED:-1}
DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT
SOCK="$DIR/tracto.sock"
TRACE="$DIR/burst.jsonl"

echo "== synthesizing a burst trace (seed $SEED) =="
"$BIN" loadgen --out "$TRACE" \
  --requests 120 --rate 60 --arrivals burst --burst 12 \
  --tenants alpha:3,beta:1 --priorities low:1,normal:2,high:1 \
  --repeat 0.6 --distinct 5 --deadline-ms 5000 --seed "$SEED"
grep -c loadgen.request "$TRACE" >/dev/null || {
  echo "FAIL: trace has no requests"; exit 1; }

echo "== starting a rate-limited server on unix:$SOCK =="
"$BIN" serve --listen "unix:$SOCK" --workers 2 --rate-limit 10 \
  --approx-low true >"$DIR/server.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "FAIL: server never bound $SOCK"; cat "$DIR/server.log"; exit 1; }

echo "== replaying the trace (open loop) =="
# `loadgen` exits nonzero if any accepted job is still unsettled at the
# timeout, so a zero exit code IS the clean-drain assertion.
OUT=$("$BIN" loadgen --connect "unix:$SOCK" --replay "$TRACE" \
  --scale 0.05 --samples 2 --burnin 30 --timeout-ms 60000)
echo "$OUT"

SHED=$(grep -o '[0-9]* shed at submit' <<<"$OUT" | grep -o '^[0-9]*')
[[ "$SHED" -gt 0 ]] || {
  echo "FAIL: a 60 jobs/s burst against a 10 jobs/s limit must shed"; exit 1; }
grep -q ' 0 unsettled at timeout' <<<"$OUT" || {
  echo "FAIL: jobs left unsettled after the storm"; exit 1; }

echo "== shutting down =="
"$BIN" shutdown --connect "unix:$SOCK"
wait "$SERVER_PID"
SERVER_PID=""
if grep -qi 'panic' "$DIR/server.log"; then
  echo "FAIL: server panicked under overload"; cat "$DIR/server.log"; exit 1
fi
grep -q 'rate limited' "$DIR/server.log" || {
  echo "FAIL: no overload counters in the server report"; cat "$DIR/server.log"; exit 1; }

echo "loadgen smoke passed: $SHED requests shed, clean drain, zero panics (seed $SEED)"
