#!/usr/bin/env bash
# Cross-process smoke: a real `tracto serve --listen` server process driven
# by real `tracto submit` clients over a Unix socket must be deterministic
# (identical digests on resubmission) and bit-identical to an in-process
# script replay of the same job (same total step count).
# Usage: scripts/smoke_socket.sh  [uses target/debug/tracto or $TRACTO_BIN]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${TRACTO_BIN:-target/debug/tracto}
if [[ ! -x "$BIN" ]]; then
  echo "== building tracto-cli =="
  cargo build -q -p tracto-cli
fi

DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT
SOCK="$DIR/tracto.sock"

echo "== starting server on unix:$SOCK =="
"$BIN" serve --listen "unix:$SOCK" >"$DIR/server.log" &
SERVER_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "FAIL: server never bound $SOCK"; cat "$DIR/server.log"; exit 1; }

SUBMIT=(submit --connect "unix:$SOCK"
        --dataset single --scale 0.05 --dataset-seed 3 --snr none
        --samples 2 --burnin 30 --interval 1 --seed 9 --max-steps 60)

echo "== submitting the same job twice over the socket =="
OUT1=$("$BIN" "${SUBMIT[@]}")
OUT2=$("$BIN" "${SUBMIT[@]}")
echo "$OUT1"
DIGEST1=$(grep -o 'digest [0-9a-f]*' <<<"$OUT1" || true)
DIGEST2=$(grep -o 'digest [0-9a-f]*' <<<"$OUT2" || true)
STEPS_REMOTE=$(grep -o '[0-9]* total steps' <<<"$OUT1" || true)
[[ -n "$DIGEST1" ]] || { echo "FAIL: no digest in client output"; exit 1; }
[[ "$DIGEST1" == "$DIGEST2" ]] || {
  echo "FAIL: remote digests differ: $DIGEST1 vs $DIGEST2"; exit 1; }
grep -q 'cache_hit=true' <<<"$OUT2" || {
  echo "FAIL: resubmission missed the sample cache"; echo "$OUT2"; exit 1; }

echo "== shutting the server down over the socket =="
"$BIN" shutdown --connect "unix:$SOCK"
wait "$SERVER_PID"
SERVER_PID=""
[[ ! -e "$SOCK" ]] || { echo "FAIL: socket not unlinked on shutdown"; exit 1; }

echo "== replaying the identical job in-process =="
cat >"$DIR/job.txt" <<EOF
dataset d single scale=0.05 seed=3 snr=none
track d samples=2 burnin=30 interval=1 seed=9 max-steps=60
EOF
LOCAL=$("$BIN" serve --script "$DIR/job.txt")
STEPS_LOCAL=$(grep -o '[0-9]* total steps' <<<"$LOCAL" | head -1)
[[ -n "$STEPS_REMOTE" && "$STEPS_REMOTE" == "$STEPS_LOCAL" ]] || {
  echo "FAIL: socket vs in-process mismatch: '$STEPS_REMOTE' vs '$STEPS_LOCAL'"
  exit 1
}

echo "socket smoke passed: $DIGEST1, $STEPS_REMOTE (socket == in-process)"
