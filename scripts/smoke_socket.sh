#!/usr/bin/env bash
# Cross-process smoke: a real `tracto serve --listen` server process driven
# by real `tracto submit` clients over a Unix socket must be deterministic
# (identical digests on resubmission) and bit-identical to an in-process
# script replay of the same job (same total step count).
# Usage: scripts/smoke_socket.sh  [uses target/debug/tracto or $TRACTO_BIN]
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${TRACTO_BIN:-target/debug/tracto}
if [[ ! -x "$BIN" ]]; then
  echo "== building tracto-cli =="
  cargo build -q -p tracto-cli
fi

DIR=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT
SOCK="$DIR/tracto.sock"

echo "== starting server on unix:$SOCK =="
"$BIN" serve --listen "unix:$SOCK" >"$DIR/server.log" &
SERVER_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "FAIL: server never bound $SOCK"; cat "$DIR/server.log"; exit 1; }

SUBMIT=(submit --connect "unix:$SOCK"
        --dataset single --scale 0.05 --dataset-seed 3 --snr none
        --samples 2 --burnin 30 --interval 1 --seed 9 --max-steps 60)

echo "== submitting the same job twice over the socket =="
OUT1=$("$BIN" "${SUBMIT[@]}")
OUT2=$("$BIN" "${SUBMIT[@]}")
echo "$OUT1"
DIGEST1=$(grep -o 'digest [0-9a-f]*' <<<"$OUT1" || true)
DIGEST2=$(grep -o 'digest [0-9a-f]*' <<<"$OUT2" || true)
STEPS_REMOTE=$(grep -o '[0-9]* total steps' <<<"$OUT1" || true)
[[ -n "$DIGEST1" ]] || { echo "FAIL: no digest in client output"; exit 1; }
[[ "$DIGEST1" == "$DIGEST2" ]] || {
  echo "FAIL: remote digests differ: $DIGEST1 vs $DIGEST2"; exit 1; }
grep -q 'cache_hit=true' <<<"$OUT2" || {
  echo "FAIL: resubmission missed the sample cache"; echo "$OUT2"; exit 1; }

echo "== shutting the server down over the socket =="
"$BIN" shutdown --connect "unix:$SOCK"
wait "$SERVER_PID"
SERVER_PID=""
[[ ! -e "$SOCK" ]] || { echo "FAIL: socket not unlinked on shutdown"; exit 1; }

echo "== replaying the identical job in-process =="
cat >"$DIR/job.txt" <<EOF
dataset d single scale=0.05 seed=3 snr=none
track d samples=2 burnin=30 interval=1 seed=9 max-steps=60
EOF
LOCAL=$("$BIN" serve --script "$DIR/job.txt")
STEPS_LOCAL=$(grep -o '[0-9]* total steps' <<<"$LOCAL" | head -1)
[[ -n "$STEPS_REMOTE" && "$STEPS_REMOTE" == "$STEPS_LOCAL" ]] || {
  echo "FAIL: socket vs in-process mismatch: '$STEPS_REMOTE' vs '$STEPS_LOCAL'"
  exit 1
}

echo "== restart round trip: SIGKILL mid-batch, recover from the journal =="
STATE="$DIR/state"
"$BIN" serve --listen "unix:$SOCK" --state-dir "$STATE" --checkpoint-every 1 \
  >"$DIR/server2.log" &
SERVER_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
[[ -S "$SOCK" ]] || { echo "FAIL: durable server never bound"; cat "$DIR/server2.log"; exit 1; }

# Accept a job, then die without warning: --seed 11 makes a fresh cache key
# so the server has real work in flight when the signal lands.
JOB_OUT=$("$BIN" "${SUBMIT[@]}" --seed 11 --no-wait)
JOB_ID=$(grep -o 'submitted job [0-9]*' <<<"$JOB_OUT" | grep -o '[0-9]*$')
[[ -n "$JOB_ID" ]] || { echo "FAIL: no job id in '$JOB_OUT'"; exit 1; }
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

"$BIN" serve --listen "unix:$SOCK" --state-dir "$STATE" --checkpoint-every 1 \
  >"$DIR/server3.log" &
SERVER_PID=$!
# The client rides out the restart window with its own connect retries.
if ! AWAIT=$("$BIN" await --connect "unix:$SOCK" --job "$JOB_ID" \
      --timeout-ms 60000 --connect-retries 20 --connect-backoff-ms 50); then
  # The job finished inside the first incarnation; determinism still lets
  # us fetch its canonical result by resubmitting the identical recipe.
  AWAIT=$("$BIN" "${SUBMIT[@]}" --seed 11)
fi
DIGEST_RECOVERED=$(grep -o 'digest [0-9a-f]*' <<<"$AWAIT" || true)
[[ -n "$DIGEST_RECOVERED" ]] || { echo "FAIL: no digest after recovery: $AWAIT"; exit 1; }
grep -q 'recovered [0-9]* unfinished job' "$DIR/server3.log" || {
  echo "FAIL: restarted server recovered nothing"; cat "$DIR/server3.log"; exit 1; }
"$BIN" shutdown --connect "unix:$SOCK"
wait "$SERVER_PID"
SERVER_PID=""

echo "== uninterrupted reference run of the same job =="
"$BIN" serve --listen "unix:$SOCK" --state-dir "$DIR/state-ref" >"$DIR/server4.log" &
SERVER_PID=$!
for _ in $(seq 100); do [[ -S "$SOCK" ]] && break; sleep 0.1; done
REF=$("$BIN" "${SUBMIT[@]}" --seed 11)
DIGEST_REF=$(grep -o 'digest [0-9a-f]*' <<<"$REF" || true)
"$BIN" shutdown --connect "unix:$SOCK"
wait "$SERVER_PID"
SERVER_PID=""
[[ "$DIGEST_RECOVERED" == "$DIGEST_REF" ]] || {
  echo "FAIL: recovered digest differs from reference: $DIGEST_RECOVERED vs $DIGEST_REF"
  exit 1
}

echo "socket smoke passed: $DIGEST1, $STEPS_REMOTE (socket == in-process)"
echo "restart smoke passed: job $JOB_ID survived SIGKILL, $DIGEST_RECOVERED == reference"
