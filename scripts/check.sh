#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== modality matrix (per-getter suites) =="
for modality in getter analytic tensorline stop; do
    echo "-- modality leg: ${modality} --"
    cargo test -q -p tracto-tracking "${modality}::"
done
cargo test -q -p tracto-cli modality

echo "all checks passed"
