/root/repo/target/release/libtracto_rng.rlib: /root/repo/crates/rng/src/boxmuller.rs /root/repo/crates/rng/src/dist.rs /root/repo/crates/rng/src/lib.rs /root/repo/crates/rng/src/taus.rs
