/root/repo/target/release/deps/tracto_tracking-cf28b6e8c12be65f.d: crates/tracking/src/lib.rs crates/tracking/src/cluster.rs crates/tracking/src/connectivity.rs crates/tracking/src/deterministic.rs crates/tracking/src/export.rs crates/tracking/src/field.rs crates/tracking/src/gpu.rs crates/tracking/src/policy.rs crates/tracking/src/probabilistic.rs crates/tracking/src/resample.rs crates/tracking/src/segmentation.rs crates/tracking/src/tensorline.rs crates/tracking/src/walker.rs

/root/repo/target/release/deps/libtracto_tracking-cf28b6e8c12be65f.rlib: crates/tracking/src/lib.rs crates/tracking/src/cluster.rs crates/tracking/src/connectivity.rs crates/tracking/src/deterministic.rs crates/tracking/src/export.rs crates/tracking/src/field.rs crates/tracking/src/gpu.rs crates/tracking/src/policy.rs crates/tracking/src/probabilistic.rs crates/tracking/src/resample.rs crates/tracking/src/segmentation.rs crates/tracking/src/tensorline.rs crates/tracking/src/walker.rs

/root/repo/target/release/deps/libtracto_tracking-cf28b6e8c12be65f.rmeta: crates/tracking/src/lib.rs crates/tracking/src/cluster.rs crates/tracking/src/connectivity.rs crates/tracking/src/deterministic.rs crates/tracking/src/export.rs crates/tracking/src/field.rs crates/tracking/src/gpu.rs crates/tracking/src/policy.rs crates/tracking/src/probabilistic.rs crates/tracking/src/resample.rs crates/tracking/src/segmentation.rs crates/tracking/src/tensorline.rs crates/tracking/src/walker.rs

crates/tracking/src/lib.rs:
crates/tracking/src/cluster.rs:
crates/tracking/src/connectivity.rs:
crates/tracking/src/deterministic.rs:
crates/tracking/src/export.rs:
crates/tracking/src/field.rs:
crates/tracking/src/gpu.rs:
crates/tracking/src/policy.rs:
crates/tracking/src/probabilistic.rs:
crates/tracking/src/resample.rs:
crates/tracking/src/segmentation.rs:
crates/tracking/src/tensorline.rs:
crates/tracking/src/walker.rs:
