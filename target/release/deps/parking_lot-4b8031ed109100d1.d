/root/repo/target/release/deps/parking_lot-4b8031ed109100d1.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-4b8031ed109100d1.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-4b8031ed109100d1.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
