/root/repo/target/release/deps/tracto_mcmc-583a092c4d46c755.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

/root/repo/target/release/deps/libtracto_mcmc-583a092c4d46c755.rlib: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

/root/repo/target/release/deps/libtracto_mcmc-583a092c4d46c755.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/diagnostics.rs:
crates/mcmc/src/gibbs.rs:
crates/mcmc/src/mh.rs:
crates/mcmc/src/pointest.rs:
crates/mcmc/src/voxelwise.rs:
