/root/repo/target/release/deps/tracto_volume-0e8bc82aa25138cb.d: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

/root/repo/target/release/deps/libtracto_volume-0e8bc82aa25138cb.rlib: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

/root/repo/target/release/deps/libtracto_volume-0e8bc82aa25138cb.rmeta: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

crates/volume/src/lib.rs:
crates/volume/src/dims.rs:
crates/volume/src/grid.rs:
crates/volume/src/mask.rs:
crates/volume/src/vec3.rs:
crates/volume/src/volume3.rs:
crates/volume/src/volume4.rs:
crates/volume/src/interp.rs:
crates/volume/src/io.rs:
crates/volume/src/ops.rs:
crates/volume/src/render.rs:
