/root/repo/target/release/deps/tracto_bench-812c55a8c3e3284c.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtracto_bench-812c55a8c3e3284c.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtracto_bench-812c55a8c3e3284c.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
