/root/repo/target/release/deps/proptest-2038abed4bcc32e4.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2038abed4bcc32e4.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-2038abed4bcc32e4.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
