/root/repo/target/release/deps/tracto_phantom-0224ea4158f806a6.d: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

/root/repo/target/release/deps/libtracto_phantom-0224ea4158f806a6.rlib: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

/root/repo/target/release/deps/libtracto_phantom-0224ea4158f806a6.rmeta: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

crates/phantom/src/lib.rs:
crates/phantom/src/datasets.rs:
crates/phantom/src/field.rs:
crates/phantom/src/geometry.rs:
crates/phantom/src/gradients.rs:
crates/phantom/src/noise.rs:
crates/phantom/src/signal.rs:
