/root/repo/target/release/deps/tracto_serve-b36291a998594553.d: crates/serve/src/lib.rs

/root/repo/target/release/deps/libtracto_serve-b36291a998594553.rlib: crates/serve/src/lib.rs

/root/repo/target/release/deps/libtracto_serve-b36291a998594553.rmeta: crates/serve/src/lib.rs

crates/serve/src/lib.rs:
