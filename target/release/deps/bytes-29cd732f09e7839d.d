/root/repo/target/release/deps/bytes-29cd732f09e7839d.d: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-29cd732f09e7839d.rlib: shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-29cd732f09e7839d.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
