/root/repo/target/release/deps/criterion-803e45e4ceb4fc1d.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-803e45e4ceb4fc1d.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-803e45e4ceb4fc1d.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
