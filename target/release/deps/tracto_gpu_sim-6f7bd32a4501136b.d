/root/repo/target/release/deps/tracto_gpu_sim-6f7bd32a4501136b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

/root/repo/target/release/deps/libtracto_gpu_sim-6f7bd32a4501136b.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

/root/repo/target/release/deps/libtracto_gpu_sim-6f7bd32a4501136b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernel.rs:
crates/gpu-sim/src/ledger.rs:
crates/gpu-sim/src/multi.rs:
crates/gpu-sim/src/overlap.rs:
crates/gpu-sim/src/schedule.rs:
