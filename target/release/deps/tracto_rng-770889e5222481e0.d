/root/repo/target/release/deps/tracto_rng-770889e5222481e0.d: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

/root/repo/target/release/deps/libtracto_rng-770889e5222481e0.rlib: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

/root/repo/target/release/deps/libtracto_rng-770889e5222481e0.rmeta: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

crates/rng/src/lib.rs:
crates/rng/src/dist.rs:
crates/rng/src/boxmuller.rs:
crates/rng/src/taus.rs:
