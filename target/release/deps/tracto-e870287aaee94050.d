/root/repo/target/release/deps/tracto-e870287aaee94050.d: crates/cli/src/main.rs

/root/repo/target/release/deps/tracto-e870287aaee94050: crates/cli/src/main.rs

crates/cli/src/main.rs:
