/root/repo/target/release/deps/rayon-277bca4834a30af9.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-277bca4834a30af9.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-277bca4834a30af9.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
