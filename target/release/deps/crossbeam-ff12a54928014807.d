/root/repo/target/release/deps/crossbeam-ff12a54928014807.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-ff12a54928014807.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-ff12a54928014807.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
