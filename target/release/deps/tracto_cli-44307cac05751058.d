/root/repo/target/release/deps/tracto_cli-44307cac05751058.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

/root/repo/target/release/deps/libtracto_cli-44307cac05751058.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

/root/repo/target/release/deps/libtracto_cli-44307cac05751058.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/estimate.rs:
crates/cli/src/commands/info.rs:
crates/cli/src/commands/phantom.rs:
crates/cli/src/commands/render.rs:
crates/cli/src/commands/track.rs:
crates/cli/src/store.rs:
