/root/repo/target/release/deps/tracto_diffusion-a46f5ec569012ecb.d: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

/root/repo/target/release/deps/libtracto_diffusion-a46f5ec569012ecb.rlib: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

/root/repo/target/release/deps/libtracto_diffusion-a46f5ec569012ecb.rmeta: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

crates/diffusion/src/lib.rs:
crates/diffusion/src/acquisition.rs:
crates/diffusion/src/linalg.rs:
crates/diffusion/src/models.rs:
crates/diffusion/src/posterior.rs:
crates/diffusion/src/rician.rs:
crates/diffusion/src/tensor.rs:
