/root/repo/target/release/deps/tracto_stats-efb31fb77062aec6.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

/root/repo/target/release/deps/libtracto_stats-efb31fb77062aec6.rlib: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

/root/repo/target/release/deps/libtracto_stats-efb31fb77062aec6.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/loadbalance.rs:
crates/stats/src/regression.rs:
