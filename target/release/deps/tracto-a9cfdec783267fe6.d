/root/repo/target/release/deps/tracto-a9cfdec783267fe6.d: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

/root/repo/target/release/deps/libtracto-a9cfdec783267fe6.rlib: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

/root/repo/target/release/deps/libtracto-a9cfdec783267fe6.rmeta: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

crates/core/src/lib.rs:
crates/core/src/estimation.rs:
crates/core/src/pipeline.rs:
crates/core/src/synthetic.rs:
