/root/repo/target/debug/deps/tracto_rng-5bde2cbef7351cb3.d: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

/root/repo/target/debug/deps/tracto_rng-5bde2cbef7351cb3: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

crates/rng/src/lib.rs:
crates/rng/src/dist.rs:
crates/rng/src/boxmuller.rs:
crates/rng/src/taus.rs:
