/root/repo/target/debug/deps/tracto_mcmc-632da70291fbd0c2.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

/root/repo/target/debug/deps/libtracto_mcmc-632da70291fbd0c2.rlib: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

/root/repo/target/debug/deps/libtracto_mcmc-632da70291fbd0c2.rmeta: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/diagnostics.rs:
crates/mcmc/src/gibbs.rs:
crates/mcmc/src/mh.rs:
crates/mcmc/src/pointest.rs:
crates/mcmc/src/voxelwise.rs:
