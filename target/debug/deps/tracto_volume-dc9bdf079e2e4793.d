/root/repo/target/debug/deps/tracto_volume-dc9bdf079e2e4793.d: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

/root/repo/target/debug/deps/tracto_volume-dc9bdf079e2e4793: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

crates/volume/src/lib.rs:
crates/volume/src/dims.rs:
crates/volume/src/grid.rs:
crates/volume/src/mask.rs:
crates/volume/src/vec3.rs:
crates/volume/src/volume3.rs:
crates/volume/src/volume4.rs:
crates/volume/src/interp.rs:
crates/volume/src/io.rs:
crates/volume/src/ops.rs:
crates/volume/src/render.rs:
