/root/repo/target/debug/deps/experiments_integration-b62dfabce790bc62.d: crates/core/../../tests/experiments_integration.rs

/root/repo/target/debug/deps/experiments_integration-b62dfabce790bc62: crates/core/../../tests/experiments_integration.rs

crates/core/../../tests/experiments_integration.rs:
