/root/repo/target/debug/deps/tracto_bench-2f2e45470c84fe0e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/tracto_bench-2f2e45470c84fe0e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
