/root/repo/target/debug/deps/proptests-d1acda62585793de.d: crates/tracking/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d1acda62585793de: crates/tracking/tests/proptests.rs

crates/tracking/tests/proptests.rs:
