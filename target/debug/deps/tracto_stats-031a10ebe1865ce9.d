/root/repo/target/debug/deps/tracto_stats-031a10ebe1865ce9.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

/root/repo/target/debug/deps/tracto_stats-031a10ebe1865ce9: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/loadbalance.rs:
crates/stats/src/regression.rs:
