/root/repo/target/debug/deps/bytes-83fbb087c8d67406.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-83fbb087c8d67406: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
