/root/repo/target/debug/deps/tracto_stats-65a2cf279369adf7.d: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

/root/repo/target/debug/deps/libtracto_stats-65a2cf279369adf7.rlib: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

/root/repo/target/debug/deps/libtracto_stats-65a2cf279369adf7.rmeta: crates/stats/src/lib.rs crates/stats/src/ecdf.rs crates/stats/src/expfit.rs crates/stats/src/histogram.rs crates/stats/src/loadbalance.rs crates/stats/src/regression.rs

crates/stats/src/lib.rs:
crates/stats/src/ecdf.rs:
crates/stats/src/expfit.rs:
crates/stats/src/histogram.rs:
crates/stats/src/loadbalance.rs:
crates/stats/src/regression.rs:
