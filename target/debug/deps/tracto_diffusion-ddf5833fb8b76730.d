/root/repo/target/debug/deps/tracto_diffusion-ddf5833fb8b76730.d: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

/root/repo/target/debug/deps/libtracto_diffusion-ddf5833fb8b76730.rlib: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

/root/repo/target/debug/deps/libtracto_diffusion-ddf5833fb8b76730.rmeta: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

crates/diffusion/src/lib.rs:
crates/diffusion/src/acquisition.rs:
crates/diffusion/src/linalg.rs:
crates/diffusion/src/models.rs:
crates/diffusion/src/posterior.rs:
crates/diffusion/src/rician.rs:
crates/diffusion/src/tensor.rs:
