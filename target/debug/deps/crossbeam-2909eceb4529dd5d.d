/root/repo/target/debug/deps/crossbeam-2909eceb4529dd5d.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-2909eceb4529dd5d.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-2909eceb4529dd5d.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
