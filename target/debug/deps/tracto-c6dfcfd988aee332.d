/root/repo/target/debug/deps/tracto-c6dfcfd988aee332.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tracto-c6dfcfd988aee332: crates/cli/src/main.rs

crates/cli/src/main.rs:
