/root/repo/target/debug/deps/tracto_rng-b2c0a0076ac19d70.d: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

/root/repo/target/debug/deps/libtracto_rng-b2c0a0076ac19d70.rlib: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

/root/repo/target/debug/deps/libtracto_rng-b2c0a0076ac19d70.rmeta: crates/rng/src/lib.rs crates/rng/src/dist.rs crates/rng/src/boxmuller.rs crates/rng/src/taus.rs

crates/rng/src/lib.rs:
crates/rng/src/dist.rs:
crates/rng/src/boxmuller.rs:
crates/rng/src/taus.rs:
