/root/repo/target/debug/deps/proptests-ad9fdd12ff2710fc.d: crates/volume/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ad9fdd12ff2710fc: crates/volume/tests/proptests.rs

crates/volume/tests/proptests.rs:
