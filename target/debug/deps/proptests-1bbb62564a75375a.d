/root/repo/target/debug/deps/proptests-1bbb62564a75375a.d: crates/diffusion/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1bbb62564a75375a: crates/diffusion/tests/proptests.rs

crates/diffusion/tests/proptests.rs:
