/root/repo/target/debug/deps/tracto_gpu_sim-9292846a5991d594.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

/root/repo/target/debug/deps/tracto_gpu_sim-9292846a5991d594: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernel.rs:
crates/gpu-sim/src/ledger.rs:
crates/gpu-sim/src/multi.rs:
crates/gpu-sim/src/overlap.rs:
crates/gpu-sim/src/schedule.rs:
