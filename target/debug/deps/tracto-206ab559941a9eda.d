/root/repo/target/debug/deps/tracto-206ab559941a9eda.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/tracto-206ab559941a9eda: crates/cli/src/main.rs

crates/cli/src/main.rs:
