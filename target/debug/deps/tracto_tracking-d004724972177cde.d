/root/repo/target/debug/deps/tracto_tracking-d004724972177cde.d: crates/tracking/src/lib.rs crates/tracking/src/cluster.rs crates/tracking/src/connectivity.rs crates/tracking/src/deterministic.rs crates/tracking/src/export.rs crates/tracking/src/field.rs crates/tracking/src/gpu.rs crates/tracking/src/policy.rs crates/tracking/src/probabilistic.rs crates/tracking/src/resample.rs crates/tracking/src/segmentation.rs crates/tracking/src/tensorline.rs crates/tracking/src/walker.rs

/root/repo/target/debug/deps/tracto_tracking-d004724972177cde: crates/tracking/src/lib.rs crates/tracking/src/cluster.rs crates/tracking/src/connectivity.rs crates/tracking/src/deterministic.rs crates/tracking/src/export.rs crates/tracking/src/field.rs crates/tracking/src/gpu.rs crates/tracking/src/policy.rs crates/tracking/src/probabilistic.rs crates/tracking/src/resample.rs crates/tracking/src/segmentation.rs crates/tracking/src/tensorline.rs crates/tracking/src/walker.rs

crates/tracking/src/lib.rs:
crates/tracking/src/cluster.rs:
crates/tracking/src/connectivity.rs:
crates/tracking/src/deterministic.rs:
crates/tracking/src/export.rs:
crates/tracking/src/field.rs:
crates/tracking/src/gpu.rs:
crates/tracking/src/policy.rs:
crates/tracking/src/probabilistic.rs:
crates/tracking/src/resample.rs:
crates/tracking/src/segmentation.rs:
crates/tracking/src/tensorline.rs:
crates/tracking/src/walker.rs:
