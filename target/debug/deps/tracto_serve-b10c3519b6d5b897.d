/root/repo/target/debug/deps/tracto_serve-b10c3519b6d5b897.d: crates/serve/src/lib.rs

/root/repo/target/debug/deps/libtracto_serve-b10c3519b6d5b897.rlib: crates/serve/src/lib.rs

/root/repo/target/debug/deps/libtracto_serve-b10c3519b6d5b897.rmeta: crates/serve/src/lib.rs

crates/serve/src/lib.rs:
