/root/repo/target/debug/deps/tracto_phantom-7bc401ab61a5a9a3.d: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

/root/repo/target/debug/deps/libtracto_phantom-7bc401ab61a5a9a3.rlib: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

/root/repo/target/debug/deps/libtracto_phantom-7bc401ab61a5a9a3.rmeta: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

crates/phantom/src/lib.rs:
crates/phantom/src/datasets.rs:
crates/phantom/src/field.rs:
crates/phantom/src/geometry.rs:
crates/phantom/src/gradients.rs:
crates/phantom/src/noise.rs:
crates/phantom/src/signal.rs:
