/root/repo/target/debug/deps/mcmc_integration-dc7a9762ac3e3536.d: crates/core/../../tests/mcmc_integration.rs

/root/repo/target/debug/deps/mcmc_integration-dc7a9762ac3e3536: crates/core/../../tests/mcmc_integration.rs

crates/core/../../tests/mcmc_integration.rs:
