/root/repo/target/debug/deps/tracto-6255e0eae83e2403.d: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

/root/repo/target/debug/deps/tracto-6255e0eae83e2403: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

crates/core/src/lib.rs:
crates/core/src/estimation.rs:
crates/core/src/pipeline.rs:
crates/core/src/synthetic.rs:
