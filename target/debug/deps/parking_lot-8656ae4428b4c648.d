/root/repo/target/debug/deps/parking_lot-8656ae4428b4c648.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8656ae4428b4c648.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8656ae4428b4c648.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
