/root/repo/target/debug/deps/proptest-e40110de830e3783.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-e40110de830e3783: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
