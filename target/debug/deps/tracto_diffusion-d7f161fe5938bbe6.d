/root/repo/target/debug/deps/tracto_diffusion-d7f161fe5938bbe6.d: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

/root/repo/target/debug/deps/tracto_diffusion-d7f161fe5938bbe6: crates/diffusion/src/lib.rs crates/diffusion/src/acquisition.rs crates/diffusion/src/linalg.rs crates/diffusion/src/models.rs crates/diffusion/src/posterior.rs crates/diffusion/src/rician.rs crates/diffusion/src/tensor.rs

crates/diffusion/src/lib.rs:
crates/diffusion/src/acquisition.rs:
crates/diffusion/src/linalg.rs:
crates/diffusion/src/models.rs:
crates/diffusion/src/posterior.rs:
crates/diffusion/src/rician.rs:
crates/diffusion/src/tensor.rs:
