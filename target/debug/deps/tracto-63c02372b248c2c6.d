/root/repo/target/debug/deps/tracto-63c02372b248c2c6.d: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

/root/repo/target/debug/deps/libtracto-63c02372b248c2c6.rlib: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

/root/repo/target/debug/deps/libtracto-63c02372b248c2c6.rmeta: crates/core/src/lib.rs crates/core/src/estimation.rs crates/core/src/pipeline.rs crates/core/src/synthetic.rs

crates/core/src/lib.rs:
crates/core/src/estimation.rs:
crates/core/src/pipeline.rs:
crates/core/src/synthetic.rs:
