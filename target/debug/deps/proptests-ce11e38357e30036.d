/root/repo/target/debug/deps/proptests-ce11e38357e30036.d: crates/gpu-sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ce11e38357e30036: crates/gpu-sim/tests/proptests.rs

crates/gpu-sim/tests/proptests.rs:
