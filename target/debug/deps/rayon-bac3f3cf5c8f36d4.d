/root/repo/target/debug/deps/rayon-bac3f3cf5c8f36d4.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-bac3f3cf5c8f36d4: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
