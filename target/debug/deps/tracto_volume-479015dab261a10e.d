/root/repo/target/debug/deps/tracto_volume-479015dab261a10e.d: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

/root/repo/target/debug/deps/libtracto_volume-479015dab261a10e.rlib: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

/root/repo/target/debug/deps/libtracto_volume-479015dab261a10e.rmeta: crates/volume/src/lib.rs crates/volume/src/dims.rs crates/volume/src/grid.rs crates/volume/src/mask.rs crates/volume/src/vec3.rs crates/volume/src/volume3.rs crates/volume/src/volume4.rs crates/volume/src/interp.rs crates/volume/src/io.rs crates/volume/src/ops.rs crates/volume/src/render.rs

crates/volume/src/lib.rs:
crates/volume/src/dims.rs:
crates/volume/src/grid.rs:
crates/volume/src/mask.rs:
crates/volume/src/vec3.rs:
crates/volume/src/volume3.rs:
crates/volume/src/volume4.rs:
crates/volume/src/interp.rs:
crates/volume/src/io.rs:
crates/volume/src/ops.rs:
crates/volume/src/render.rs:
