/root/repo/target/debug/deps/crossbeam-0daae230ef278660.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-0daae230ef278660: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
