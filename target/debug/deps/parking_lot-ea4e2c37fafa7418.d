/root/repo/target/debug/deps/parking_lot-ea4e2c37fafa7418.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-ea4e2c37fafa7418: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
