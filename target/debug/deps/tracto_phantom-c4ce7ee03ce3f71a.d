/root/repo/target/debug/deps/tracto_phantom-c4ce7ee03ce3f71a.d: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

/root/repo/target/debug/deps/tracto_phantom-c4ce7ee03ce3f71a: crates/phantom/src/lib.rs crates/phantom/src/datasets.rs crates/phantom/src/field.rs crates/phantom/src/geometry.rs crates/phantom/src/gradients.rs crates/phantom/src/noise.rs crates/phantom/src/signal.rs

crates/phantom/src/lib.rs:
crates/phantom/src/datasets.rs:
crates/phantom/src/field.rs:
crates/phantom/src/geometry.rs:
crates/phantom/src/gradients.rs:
crates/phantom/src/noise.rs:
crates/phantom/src/signal.rs:
