/root/repo/target/debug/deps/pipeline_integration-c29b40c56f61d31e.d: crates/core/../../tests/pipeline_integration.rs

/root/repo/target/debug/deps/pipeline_integration-c29b40c56f61d31e: crates/core/../../tests/pipeline_integration.rs

crates/core/../../tests/pipeline_integration.rs:
