/root/repo/target/debug/deps/proptests-b67b81e5ecf14123.d: crates/mcmc/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b67b81e5ecf14123: crates/mcmc/tests/proptests.rs

crates/mcmc/tests/proptests.rs:
