/root/repo/target/debug/deps/criterion-c1d3278b9918d361.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c1d3278b9918d361.rlib: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c1d3278b9918d361.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
