/root/repo/target/debug/deps/tracto_mcmc-d910d3679acecb9e.d: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

/root/repo/target/debug/deps/tracto_mcmc-d910d3679acecb9e: crates/mcmc/src/lib.rs crates/mcmc/src/chain.rs crates/mcmc/src/diagnostics.rs crates/mcmc/src/gibbs.rs crates/mcmc/src/mh.rs crates/mcmc/src/pointest.rs crates/mcmc/src/voxelwise.rs

crates/mcmc/src/lib.rs:
crates/mcmc/src/chain.rs:
crates/mcmc/src/diagnostics.rs:
crates/mcmc/src/gibbs.rs:
crates/mcmc/src/mh.rs:
crates/mcmc/src/pointest.rs:
crates/mcmc/src/voxelwise.rs:
