/root/repo/target/debug/deps/rayon-1ccb8d0054f85711.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1ccb8d0054f85711.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1ccb8d0054f85711.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
