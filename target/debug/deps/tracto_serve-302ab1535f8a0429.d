/root/repo/target/debug/deps/tracto_serve-302ab1535f8a0429.d: crates/serve/src/lib.rs

/root/repo/target/debug/deps/tracto_serve-302ab1535f8a0429: crates/serve/src/lib.rs

crates/serve/src/lib.rs:
