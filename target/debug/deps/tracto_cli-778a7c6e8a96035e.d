/root/repo/target/debug/deps/tracto_cli-778a7c6e8a96035e.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

/root/repo/target/debug/deps/libtracto_cli-778a7c6e8a96035e.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

/root/repo/target/debug/deps/libtracto_cli-778a7c6e8a96035e.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands/mod.rs crates/cli/src/commands/estimate.rs crates/cli/src/commands/info.rs crates/cli/src/commands/phantom.rs crates/cli/src/commands/render.rs crates/cli/src/commands/track.rs crates/cli/src/store.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands/mod.rs:
crates/cli/src/commands/estimate.rs:
crates/cli/src/commands/info.rs:
crates/cli/src/commands/phantom.rs:
crates/cli/src/commands/render.rs:
crates/cli/src/commands/track.rs:
crates/cli/src/store.rs:
