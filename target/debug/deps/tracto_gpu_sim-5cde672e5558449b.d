/root/repo/target/debug/deps/tracto_gpu_sim-5cde672e5558449b.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

/root/repo/target/debug/deps/libtracto_gpu_sim-5cde672e5558449b.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

/root/repo/target/debug/deps/libtracto_gpu_sim-5cde672e5558449b.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/kernel.rs crates/gpu-sim/src/ledger.rs crates/gpu-sim/src/multi.rs crates/gpu-sim/src/overlap.rs crates/gpu-sim/src/schedule.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/kernel.rs:
crates/gpu-sim/src/ledger.rs:
crates/gpu-sim/src/multi.rs:
crates/gpu-sim/src/overlap.rs:
crates/gpu-sim/src/schedule.rs:
