/root/repo/target/debug/deps/tracto_bench-f00b2e1dc1661723.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtracto_bench-f00b2e1dc1661723.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtracto_bench-f00b2e1dc1661723.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
