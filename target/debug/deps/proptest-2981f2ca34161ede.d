/root/repo/target/debug/deps/proptest-2981f2ca34161ede.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2981f2ca34161ede.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2981f2ca34161ede.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
