/root/repo/target/debug/deps/gpu_sim_integration-508198ce8ce4e1f9.d: crates/core/../../tests/gpu_sim_integration.rs

/root/repo/target/debug/deps/gpu_sim_integration-508198ce8ce4e1f9: crates/core/../../tests/gpu_sim_integration.rs

crates/core/../../tests/gpu_sim_integration.rs:
