/root/repo/target/debug/deps/bytes-9723cb7c66e9206a.d: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9723cb7c66e9206a.rlib: shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-9723cb7c66e9206a.rmeta: shims/bytes/src/lib.rs

shims/bytes/src/lib.rs:
