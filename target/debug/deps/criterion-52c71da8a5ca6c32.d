/root/repo/target/debug/deps/criterion-52c71da8a5ca6c32.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-52c71da8a5ca6c32: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
