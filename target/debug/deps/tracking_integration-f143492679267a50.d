/root/repo/target/debug/deps/tracking_integration-f143492679267a50.d: crates/core/../../tests/tracking_integration.rs

/root/repo/target/debug/deps/tracking_integration-f143492679267a50: crates/core/../../tests/tracking_integration.rs

crates/core/../../tests/tracking_integration.rs:
