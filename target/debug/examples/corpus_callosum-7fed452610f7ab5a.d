/root/repo/target/debug/examples/corpus_callosum-7fed452610f7ab5a.d: crates/core/../../examples/corpus_callosum.rs

/root/repo/target/debug/examples/corpus_callosum-7fed452610f7ab5a: crates/core/../../examples/corpus_callosum.rs

crates/core/../../examples/corpus_callosum.rs:
