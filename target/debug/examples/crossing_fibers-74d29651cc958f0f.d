/root/repo/target/debug/examples/crossing_fibers-74d29651cc958f0f.d: crates/core/../../examples/crossing_fibers.rs

/root/repo/target/debug/examples/crossing_fibers-74d29651cc958f0f: crates/core/../../examples/crossing_fibers.rs

crates/core/../../examples/crossing_fibers.rs:
