/root/repo/target/debug/examples/connectivity_matrix-f6042ef58f3b8477.d: crates/core/../../examples/connectivity_matrix.rs

/root/repo/target/debug/examples/connectivity_matrix-f6042ef58f3b8477: crates/core/../../examples/connectivity_matrix.rs

crates/core/../../examples/connectivity_matrix.rs:
