/root/repo/target/debug/examples/deterministic_vs_probabilistic-3f1289e8bcca17c8.d: crates/core/../../examples/deterministic_vs_probabilistic.rs

/root/repo/target/debug/examples/deterministic_vs_probabilistic-3f1289e8bcca17c8: crates/core/../../examples/deterministic_vs_probabilistic.rs

crates/core/../../examples/deterministic_vs_probabilistic.rs:
