/root/repo/target/debug/examples/segmentation_tuning-cfe5f4d30dee18ee.d: crates/core/../../examples/segmentation_tuning.rs

/root/repo/target/debug/examples/segmentation_tuning-cfe5f4d30dee18ee: crates/core/../../examples/segmentation_tuning.rs

crates/core/../../examples/segmentation_tuning.rs:
