/root/repo/target/debug/examples/quickstart-1a062f3aca6b9843.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1a062f3aca6b9843: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
