/root/repo/target/debug/librayon.rlib: /root/repo/shims/rayon/src/lib.rs
