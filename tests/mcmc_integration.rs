//! Integration tests of the MCMC estimator against phantom ground truth:
//! direction recovery, crossing resolution, and uncertainty behaviour.

use tracto::prelude::*;

fn angle_between(a: Vec3, b: Vec3) -> f64 {
    a.dot(b).abs().clamp(0.0, 1.0).acos()
}

/// Posterior-mean dominant direction at a voxel.
fn mean_dir(samples: &SampleVolumes, c: Ijk) -> Vec3 {
    samples.mean_principal_direction(c)
}

#[test]
fn recovers_bundle_directions_across_the_volume() {
    let ds = datasets::single_bundle(Dim3::new(12, 8, 8), Some(30.0), 5);
    let fiber = ds.truth.fiber_mask();
    let est = VoxelEstimator::new(
        &ds.acq,
        &ds.dwi,
        &fiber,
        PriorConfig::default(),
        ChainConfig::fast_test(),
        17,
    );
    let samples = est.run_parallel();
    let mut ok = 0;
    let mut total = 0;
    for c in fiber.coords() {
        let truth = ds.truth.at(c).sticks()[0].0;
        let got = mean_dir(&samples, c);
        total += 1;
        if angle_between(truth, got) < 20f64.to_radians() {
            ok += 1;
        }
    }
    assert!(total > 30, "phantom too small: {total} fiber voxels");
    assert!(
        ok as f64 / total as f64 > 0.9,
        "only {ok}/{total} voxels within 20° of truth"
    );
}

#[test]
fn resolves_ninety_degree_crossing() {
    let dims = Dim3::new(14, 14, 5);
    let ds = datasets::crossing(dims, 90.0, Some(30.0), 8);
    let center = Ijk::new(6, 6, 2);
    assert_eq!(ds.truth.at(center).count, 2);
    let mask = Mask::from_fn(dims, |c| c == center);
    let est = VoxelEstimator::new(
        &ds.acq,
        &ds.dwi,
        &mask,
        PriorConfig::default(),
        ChainConfig::paper_default(),
        3,
    );
    let samples = est.run_parallel();
    // Mean directions of both sticks.
    let n = samples.num_samples();
    let r1 = samples.sticks_at(center, 0)[0].0;
    let r2 = samples.sticks_at(center, 0)[1].0;
    let mut m1 = Vec3::ZERO;
    let mut m2 = Vec3::ZERO;
    for s in 0..n {
        let st = samples.sticks_at(center, s);
        m1 += st[0].0.aligned_with(r1);
        m2 += st[1].0.aligned_with(r2);
    }
    let m1 = m1.normalized();
    let m2 = m2.normalized();
    let t1 = ds.truth.at(center).sticks()[0].0;
    let t2 = ds.truth.at(center).sticks()[1].0;
    let assign_a = angle_between(m1, t1).max(angle_between(m2, t2));
    let assign_b = angle_between(m1, t2).max(angle_between(m2, t1));
    let worst = assign_a.min(assign_b);
    assert!(
        worst < 25f64.to_radians(),
        "crossing recovery error {:.1}°",
        worst.to_degrees()
    );
}

#[test]
fn noise_widens_posterior_dispersion() {
    // Angular spread of direction samples must grow with noise.
    let dims = Dim3::new(10, 6, 6);
    let c = Ijk::new(5, 2, 2);
    let spread = |snr: Option<f64>| {
        let ds = datasets::single_bundle(dims, snr, 4);
        let mask = Mask::from_fn(dims, |x| x == c);
        let est = VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            ChainConfig::paper_default(),
            21,
        );
        let samples = est.run_parallel();
        let mean = samples.mean_principal_direction(c);
        let n = samples.num_samples();
        (0..n)
            .map(|s| angle_between(samples.sticks_at(c, s)[0].0, mean))
            .sum::<f64>()
            / n as f64
    };
    let clean = spread(None);
    let noisy = spread(Some(10.0));
    assert!(
        noisy > clean,
        "posterior angular spread: clean {:.3} rad vs noisy {:.3} rad",
        clean,
        noisy
    );
}

#[test]
fn isotropic_voxels_get_low_fractions() {
    // A voxel with no fiber population should yield small sampled f1.
    let dims = Dim3::new(10, 8, 8);
    let ds = datasets::single_bundle(dims, Some(30.0), 6);
    let off_bundle = Ijk::new(5, 0, 0);
    assert_eq!(ds.truth.at(off_bundle).count, 0);
    let mask = Mask::from_fn(dims, |c| c == off_bundle);
    let est = VoxelEstimator::new(
        &ds.acq,
        &ds.dwi,
        &mask,
        PriorConfig::default(),
        ChainConfig::paper_default(),
        13,
    );
    let samples = est.run_parallel();
    let mean_f1 = samples.mean_f1(off_bundle);
    assert!(mean_f1 < 0.25, "isotropic voxel mean f1 = {mean_f1}");
}

#[test]
fn gpu_mcmc_identical_to_cpu() {
    let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(25.0), 7);
    let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 3 && c.j >= 2 && c.j <= 3);
    let config = ChainConfig::fast_test();
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let gpu_out = tracto::run_mcmc_gpu(
        &mut gpu,
        &ds.acq,
        &ds.dwi,
        &mask,
        PriorConfig::default(),
        config,
        123,
    );
    let cpu = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, PriorConfig::default(), config, 123)
        .run_parallel();
    assert_eq!(gpu_out.samples.f1, cpu.f1);
    assert_eq!(gpu_out.samples.f2, cpu.f2);
    assert_eq!(gpu_out.samples.th1, cpu.th1);
    assert_eq!(gpu_out.samples.ph1, cpu.ph1);
    assert_eq!(gpu_out.samples.th2, cpu.th2);
    assert_eq!(gpu_out.samples.ph2, cpu.ph2);
}

#[test]
fn random_number_budget_matches_paper_claim() {
    // Paper: NumVoxels × NumLoops × NumParameters × 3 random numbers; with
    // their example parameters this exceeds 20 GB, motivating on-device
    // generation.
    let config = ChainConfig {
        num_burnin: 500,
        num_samples: 250,
        sample_interval: 2,
        ..ChainConfig::paper_default()
    };
    let per_voxel = config.random_numbers_needed(9);
    assert_eq!(per_voxel, 1000 * 9 * 3);
    let bytes_total = per_voxel * 200_000 * 4;
    assert!(bytes_total as f64 > 20e9);
}

#[test]
fn rician_likelihood_estimates_on_rician_data() {
    // Extension beyond the paper: swap the Gaussian likelihood for the
    // exact Rician one on Rician-noised data; direction recovery must hold
    // and the posterior must actually differ from the Gaussian version.
    use tracto::diffusion::NoiseLikelihood;
    let ds = datasets::single_bundle(Dim3::new(8, 6, 6), Some(8.0), 9); // low SNR
    let c = Ijk::new(4, 2, 2);
    let mask = Mask::from_fn(ds.dwi.dims(), |x| x == c);
    let run = |likelihood| {
        let prior = PriorConfig {
            likelihood,
            ..Default::default()
        };
        VoxelEstimator::new(
            &ds.acq,
            &ds.dwi,
            &mask,
            prior,
            ChainConfig::paper_default(),
            31,
        )
        .run_parallel()
    };
    let gauss = run(NoiseLikelihood::Gaussian);
    let rice = run(NoiseLikelihood::Rician);
    let truth = ds.truth.at(c).sticks()[0].0;
    assert!(
        rice.mean_principal_direction(c).dot(truth).abs() > 0.85,
        "Rician-likelihood posterior must still find the fiber"
    );
    assert_ne!(gauss.th1, rice.th1, "likelihood choice must matter");
}

#[test]
fn single_stick_model_matches_gpu_and_misses_crossings() {
    // The paper's model-selection choice ("we let N = 2 to avoid over
    // fitting") exercised: with max_sticks = 1 the estimator reduces to the
    // compartment model — cheaper, identical across backends, but blind to
    // the second population at a crossing.
    let dims = Dim3::new(14, 14, 5);
    let ds = datasets::crossing(dims, 90.0, Some(30.0), 8);
    let c = Ijk::new(6, 6, 2);
    let mask = Mask::from_fn(dims, |x| x == c);
    let prior = PriorConfig {
        max_sticks: 1,
        ..Default::default()
    };
    let config = ChainConfig::paper_default();
    let cpu = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, prior, config, 3).run_parallel();
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let gpu_out = tracto::run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 3);
    assert_eq!(
        cpu.th1, gpu_out.samples.th1,
        "backends agree under N = 1 too"
    );
    // f2 identically zero across all samples.
    for s in 0..cpu.num_samples() {
        assert_eq!(cpu.sticks_at(c, s)[1].1, 0.0);
    }
    // N = 2 finds substantial f2 at the same voxel.
    let full = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, PriorConfig::default(), config, 3)
        .run_parallel();
    let mean_f2: f64 = (0..full.num_samples())
        .map(|s| full.sticks_at(c, s)[1].1)
        .sum::<f64>()
        / full.num_samples() as f64;
    assert!(
        mean_f2 > 0.15,
        "N = 2 should capture the crossing: f2 {mean_f2}"
    );
}
