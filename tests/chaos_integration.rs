//! Chaos integration: deterministic fault injection must never change
//! results, only timing.
//!
//! The seed is taken from `TRACTO_CHAOS_SEED` (default 1) so CI can sweep a
//! matrix of schedules over the same assertions: any seeded fault plan that
//! leaves at least one device alive yields posterior samples bit-identical
//! to a fault-free run, and every injected fault shows up as a structured
//! trace event.

use std::sync::Arc;
use tracto::diffusion::PriorConfig;
use tracto::mcmc::{ChainConfig, CheckpointPolicy};
use tracto::phantom::datasets;
use tracto::run_mcmc_multi;
use tracto_gpu_sim::{DeviceConfig, DeviceHealth, FaultPlan, MultiGpu};
use tracto_trace::{RingSink, Tracer};
use tracto_volume::{Dim3, Mask};

fn chaos_seed() -> u64 {
    std::env::var("TRACTO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn small_device() -> DeviceConfig {
    DeviceConfig {
        wavefront_size: 4,
        num_compute_units: 2,
        waves_per_cu: 2,
        ..DeviceConfig::radeon_5870()
    }
}

struct ChaosRun {
    report: tracto::McmcGpuReport,
    faults: u64,
    failovers: u64,
    alive: usize,
    ring: Arc<RingSink>,
}

fn estimate(devices: usize, plan: Option<&FaultPlan>) -> ChaosRun {
    let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
    let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
    let ring = Arc::new(RingSink::new(4096));
    let mut multi = MultiGpu::new(small_device(), devices);
    multi.set_tracer(&Tracer::shared(ring.clone()));
    if let Some(p) = plan {
        multi.set_fault_plan(p);
    }
    let report = run_mcmc_multi(
        &mut multi,
        &ds.acq,
        &ds.dwi,
        &mask,
        PriorConfig::default(),
        ChainConfig::fast_test(),
        77,
        CheckpointPolicy::every(3),
    )
    .expect("seeded plans leave at least one device alive");
    ChaosRun {
        report,
        faults: multi.faults_injected(),
        failovers: multi.failovers(),
        alive: multi.alive_devices(),
        ring,
    }
}

#[test]
fn seeded_fault_plan_leaves_posterior_samples_bit_identical() {
    let devices = 4;
    let plan = FaultPlan::seeded(chaos_seed(), devices as u32);
    assert!(!plan.events.is_empty(), "seeded plans are never empty");

    let clean = estimate(devices, None);
    let chaos = estimate(devices, Some(&plan));

    assert!(chaos.faults >= 1, "the schedule must actually fire");
    assert!(chaos.alive >= 1, "seeded plans never kill the whole pool");
    assert_eq!(clean.report.samples.f1, chaos.report.samples.f1);
    assert_eq!(clean.report.samples.f2, chaos.report.samples.f2);
    assert_eq!(clean.report.samples.th1, chaos.report.samples.th1);
    assert_eq!(clean.report.samples.ph1, chaos.report.samples.ph1);
    assert_eq!(clean.report.samples.th2, chaos.report.samples.th2);
    assert_eq!(clean.report.samples.ph2, chaos.report.samples.ph2);
    assert_eq!(clean.report.voxels, chaos.report.voxels);
    // Recovery costs simulated time, never simulated work: the faulted run
    // executes exactly the same useful iterations.
    assert_eq!(
        clean.report.ledger.useful_iterations,
        chaos.report.ledger.useful_iterations
    );
}

#[test]
fn every_injected_fault_is_a_structured_trace_event() {
    let devices = 3;
    let plan = FaultPlan::seeded(chaos_seed().wrapping_add(1), devices as u32);
    let chaos = estimate(devices, Some(&plan));

    let fault_events = chaos.ring.count("gpu.fault");
    assert_eq!(
        fault_events as u64, chaos.faults,
        "one gpu.fault event per injected fault"
    );
    assert_eq!(
        chaos.ring.count("gpu.failover") as u64,
        chaos.failovers,
        "one gpu.failover event per device loss survived"
    );
    for ev in chaos.ring.named("gpu.fault") {
        assert!(ev.field("device").is_some(), "fault events name the device");
        assert!(ev.field("kind").is_some(), "fault events name the kind");
    }
}

#[test]
fn seeded_plans_are_deterministic_and_recoverable() {
    for seed in [chaos_seed(), chaos_seed() + 7, 0, u64::MAX] {
        for devices in [1u32, 2, 4, 8] {
            let a = FaultPlan::seeded(seed, devices);
            let b = FaultPlan::seeded(seed, devices);
            assert_eq!(a.events, b.events, "seed {seed} devices {devices}");
            assert!(!a.events.is_empty());
            // Recoverable by construction: strictly fewer losses than
            // devices, and no allocation faults (those abort a launch
            // sequence rather than being absorbed by failover).
            let losses = a
                .events
                .iter()
                .filter(|e| e.kind == tracto_gpu_sim::FaultKind::DeviceLost)
                .count();
            assert!(losses < devices.max(1) as usize);
            assert!(!a
                .events
                .iter()
                .any(|e| e.kind == tracto_gpu_sim::FaultKind::AllocFail));
        }
    }
}

#[test]
fn pool_health_reflects_the_schedule_after_the_run() {
    let devices = 3;
    let plan = FaultPlan::parse("fault 2 1 device-lost\nfault 0 0 degrade").unwrap();
    let chaos = estimate(devices, Some(&plan));
    assert_eq!(chaos.failovers, 1);
    assert_eq!(chaos.alive, devices - 1);
    // Health is queryable per device after the fact.
    let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
    let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
    let mut multi = MultiGpu::new(small_device(), devices);
    multi.set_fault_plan(&plan);
    run_mcmc_multi(
        &mut multi,
        &ds.acq,
        &ds.dwi,
        &mask,
        PriorConfig::default(),
        ChainConfig::fast_test(),
        77,
        CheckpointPolicy::every(3),
    )
    .unwrap();
    let health = multi.health();
    assert_eq!(health[2], DeviceHealth::Failed);
    assert_eq!(health[0], DeviceHealth::Degraded);
    assert_eq!(health[1], DeviceHealth::Healthy);
}
