//! Reduced-scale versions of the paper's headline experimental claims, so
//! `cargo test` guards the shapes the full bench harness reproduces.

use tracto::prelude::*;
use tracto::stats::ecdf::Ecdf;
use tracto::stats::expfit::ExponentialFit;
use tracto::synthetic::samples_from_truth;
use tracto::tracking2::{CpuTracker, GpuTracker, RecordMode, SeedOrdering};

struct Experiment {
    samples: SampleVolumes,
    seeds: Vec<Vec3>,
}

fn experiment() -> Experiment {
    // A long single bundle tracked at fine step length produces the paper's
    // workload structure: most seeds are off-fiber and stop immediately,
    // fiber seeds run for hundreds of steps, and the angular dispersion of
    // the posterior samples makes lengths noisy across samples.
    let ds = datasets::single_bundle(Dim3::new(64, 16, 16), None, 5);
    let samples = samples_from_truth(&ds.truth, 25, 0.22, 0.05, 55);
    let seeds = seeds_from_mask(&Mask::full(ds.dwi.dims()));
    Experiment { samples, seeds }
}

/// Larger workload for the timing-shape tests (Tables II and IV): the full
/// dataset-1 anatomy, whose arcs and crossings mix long and dead lanes
/// within wavefronts; half the paper's grid, 25 sample volumes.
fn experiment_large() -> Experiment {
    let ds = DatasetSpec::paper_dataset1()
        .scaled(0.75)
        .light_protocol()
        .noiseless()
        .build();
    let samples = samples_from_truth(&ds.truth, 10, 0.10, 0.04, 99);
    let seeds = seeds_from_mask(&ds.wm_mask);
    Experiment { samples, seeds }
}

fn params() -> TrackingParams {
    TrackingParams {
        step_length: 0.1,
        angular_threshold: 0.9,
        max_steps: 2000,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    }
}

fn gpu_run(
    exp: &Experiment,
    strategy: SegmentationStrategy,
) -> tracto::tracking2::GpuTrackingReport {
    GpuTracker {
        samples: &exp.samples,
        params: params(),
        seeds: exp.seeds.clone(),
        mask: None,
        strategy,
        ordering: SeedOrdering::Natural,
        jitter: 0.5,
        run_seed: 5,
        record_visits: false,
    }
    .run(&mut Gpu::new(DeviceConfig::radeon_5870()))
}

#[test]
fn table2_shape_gpu_beats_modeled_cpu_by_tens() {
    // Table II's conclusion: with the increasing-interval strategy, the GPU
    // runs tens of times faster than the serial CPU. CPU time is modeled
    // from the paper's own throughput (289.6 s / 113.8 M steps ≈ 2.54 µs
    // per tracking step on the Phenom X4).
    let exp = experiment_large();
    let report = gpu_run(&exp, SegmentationStrategy::paper_table2());
    let cpu_model_s = report.total_steps as f64 * 2.54e-6;
    let speedup = cpu_model_s / report.ledger.total_s();
    assert!(
        (10.0..200.0).contains(&speedup),
        "speedup {speedup:.1}x out of the plausible band (paper: 43–55x)"
    );
}

#[test]
fn table4_shape_increasing_interval_wins() {
    let exp = experiment_large();
    let rows: Vec<(String, f64)> = [
        SegmentationStrategy::every_step(),
        SegmentationStrategy::Uniform(10),
        SegmentationStrategy::Uniform(50),
        SegmentationStrategy::Single,
        SegmentationStrategy::paper_b(),
        SegmentationStrategy::paper_c(),
    ]
    .into_iter()
    .map(|s| {
        let label = s.label();
        let t = gpu_run(&exp, s).ledger.total_s();
        (label, t)
    })
    .collect();
    let best = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    assert!(
        best.0 == "B"
            || best.0 == "C"
            || best.0.starts_with("A_5")
            || best.0 == "A_10"
            || best.0 == "A_50",
        "unexpected winner {rows:?}"
    );
    // The paper's two extremes must both lose to B.
    let get = |name: &str| rows.iter().find(|(n, _)| n == name).unwrap().1;
    assert!(get("B") < get("A_1"));
    assert!(get("B") < get("A_MaxStep"));
}

#[test]
fn fig5_shape_lengths_exponential() {
    let exp = experiment();
    let out = CpuTracker {
        samples: &exp.samples,
        params: params(),
        seeds: exp.seeds.clone(),
        mask: None,
        jitter: 0.5,
        run_seed: 5,
        bidirectional: false,
    }
    .run_parallel(RecordMode::LengthsOnly);
    let lengths: Vec<f64> = out
        .all_lengths()
        .into_iter()
        .filter(|&l| l > 0)
        .map(f64::from)
        .collect();
    let fit = ExponentialFit::fit(&lengths);
    assert!(fit.ks_statistic < 0.15, "KS {:.3}", fit.ks_statistic);
    // CCDF decays by orders of magnitude over the support (straight
    // semi-log line = geometric decade spacing).
    let ecdf = Ecdf::new(lengths);
    let p_short = ecdf.ccdf(ecdf.mean());
    let p_long = ecdf.ccdf(4.0 * ecdf.mean());
    assert!(
        p_short > 5.0 * p_long.max(1e-6),
        "tail not decaying: {p_short} vs {p_long}"
    );
}

#[test]
fn fig4_shape_sorting_fails_across_samples() {
    use tracto::stats::loadbalance::{charged_iterations, neighbor_mean_abs_diff};
    let exp = experiment();
    let sorted = GpuTracker {
        samples: &exp.samples,
        params: params(),
        seeds: exp.seeds.clone(),
        mask: None,
        strategy: SegmentationStrategy::Single,
        ordering: SeedOrdering::SortedByPilot,
        jitter: 0.5,
        run_seed: 5,
        record_visits: false,
    }
    .run(&mut Gpu::new(DeviceConfig::radeon_5870()));

    // (a) within the pilot, sorting is smooth; (b) applied to another
    // sample, neighbor variance comes back (Fig. 4c).
    let loads_sample1 = sorted.thread_loads(1);
    let mut resorted = loads_sample1.clone();
    resorted.sort_unstable_by(|a, b| b.cmp(a));
    let cross = neighbor_mean_abs_diff(&loads_sample1);
    let ideal = neighbor_mean_abs_diff(&resorted);
    assert!(
        cross > 3.0 * ideal.max(0.05),
        "cross {cross:.2} vs ideal {ideal:.2}"
    );

    // (c) consequently the charged work barely improves vs natural order —
    // "this method does not bring any notable improvement at all".
    let natural = gpu_run(&exp, SegmentationStrategy::Single);
    let charged_sorted: u64 = (1..sorted.lengths_by_sample.len())
        .map(|s| charged_iterations(&sorted.thread_loads(s), 64))
        .sum();
    let charged_natural: u64 = (1..natural.lengths_by_sample.len())
        .map(|s| charged_iterations(&natural.thread_loads(s), 64))
        .sum();
    let improvement = 1.0 - charged_sorted as f64 / charged_natural as f64;
    assert!(
        improvement < 0.35,
        "stale sorting should not fix imbalance: improvement {improvement:.2}"
    );
}

#[test]
fn fig6_shape_utilization_ordering() {
    let exp = experiment();
    let util = |s: SegmentationStrategy| gpu_run(&exp, s).ledger.simd_utilization();
    let single = util(SegmentationStrategy::Single);
    let b = util(SegmentationStrategy::paper_b());
    let every = util(SegmentationStrategy::every_step());
    assert!(single < b, "single {single:.3} vs B {b:.3}");
    assert!(b <= every + 1e-9, "A_1 has no lockstep waste");
    assert!(
        every > 0.95,
        "per-step launches are near-perfectly balanced: {every:.3}"
    );
}

#[test]
fn table3_shape_mcmc_utilization_and_transfer() {
    // MCMC lanes are balanced (utilization 1) and its speedup is therefore
    // strategy-independent — the structural reason Table III needs no
    // segmentation analysis.
    let ds = DatasetSpec::paper_dataset1()
        .scaled(0.12)
        .light_protocol()
        .build();
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let report = tracto::run_mcmc_gpu(
        &mut gpu,
        &ds.acq,
        &ds.dwi,
        &ds.wm_mask,
        PriorConfig::default(),
        ChainConfig::fast_test(),
        9,
    );
    assert!((report.ledger.simd_utilization() - 1.0).abs() < 1e-9);
    assert_eq!(report.ledger.launches, 1);
    // Modeled CPU from the paper's own throughput: 1383 s for 205k voxels ×
    // 600 loops ⇒ ≈11.2 µs per MH loop.
    let loops = ChainConfig::fast_test().num_loops() as u64 * report.voxels as u64;
    let cpu_model_s = loops as f64 * 11.2e-6;
    let speedup = cpu_model_s / report.ledger.total_s();
    assert!(
        (5.0..120.0).contains(&speedup),
        "MCMC speedup {speedup:.1}x implausible (paper: ~34x)"
    );
}
