//! End-to-end pipeline integration: dataset → MCMC → tracking →
//! connectivity, across backends.

use tracto::prelude::*;

fn dataset() -> Dataset {
    DatasetSpec::paper_dataset1()
        .scaled(0.14)
        .light_protocol()
        .build()
}

#[test]
fn full_pipeline_runs_on_all_backends() {
    let ds = dataset();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let cpu = pipeline.run(&ds, Backend::CpuParallel);
    let gpu = pipeline.run(&ds, Backend::GpuSim(DeviceConfig::radeon_5870()));

    // The paper's Fig. 11/12 claim, strengthened: results identical.
    assert_eq!(cpu.samples.f1, gpu.samples.f1);
    assert_eq!(cpu.samples.th2, gpu.samples.th2);
    assert_eq!(
        cpu.tracking.lengths_by_sample,
        gpu.tracking.lengths_by_sample
    );

    // GPU backend reports simulated timing with all three components.
    let ledger = gpu.tracking_ledger.expect("tracking ledger");
    assert!(ledger.kernel_s > 0.0);
    assert!(ledger.transfer_s > 0.0);
    assert!(ledger.launches > 0);
    let mcmc = gpu.mcmc_ledger.expect("mcmc ledger");
    assert!(
        (mcmc.simd_utilization() - 1.0).abs() < 1e-9,
        "MCMC lanes are balanced"
    );
}

#[test]
fn pipeline_deterministic_across_runs() {
    let ds = dataset();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let a = pipeline.run(&ds, Backend::CpuParallel);
    let b = pipeline.run(&ds, Backend::CpuParallel);
    assert_eq!(a.samples.ph1, b.samples.ph1);
    assert_eq!(a.tracking.total_steps, b.tracking.total_steps);
}

#[test]
fn connectivity_concentrates_on_anatomy() {
    let ds = dataset();
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let out = pipeline.run(&ds, Backend::CpuParallel);
    let conn = out.tracking.connectivity.expect("connectivity");
    let dims = ds.dwi.dims();

    // Average connection probability over fiber voxels must dominate the
    // average over non-fiber white matter.
    let fiber = ds.truth.fiber_mask();
    let mut fiber_p = 0.0;
    let mut fiber_n = 0;
    let mut bg_p = 0.0;
    let mut bg_n = 0;
    for c in dims.iter() {
        let p = conn.probability(c);
        if fiber.contains(c) {
            fiber_p += p;
            fiber_n += 1;
        } else if ds.wm_mask.contains(c) {
            bg_p += p;
            bg_n += 1;
        }
    }
    let fiber_mean = fiber_p / fiber_n.max(1) as f64;
    let bg_mean = bg_p / bg_n.max(1) as f64;
    assert!(
        fiber_mean > 5.0 * bg_mean,
        "fiber voxels {fiber_mean:.4} vs background {bg_mean:.4}"
    );
}

#[test]
fn paper_config_values() {
    let cfg = PipelineConfig::paper_default();
    assert_eq!(cfg.chain.num_burnin, 500);
    assert_eq!(cfg.chain.num_samples, 50);
    assert_eq!(cfg.chain.sample_interval, 2);
    assert_eq!(cfg.tracking.step_length, 0.1);
    assert_eq!(cfg.tracking.angular_threshold, 0.9);
    assert_eq!(
        cfg.strategy.budgets(1888),
        vec![1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
    );
}

#[test]
fn different_seeds_different_results() {
    let ds = dataset();
    let mut cfg_a = PipelineConfig::fast();
    cfg_a.seed = 1;
    let mut cfg_b = PipelineConfig::fast();
    cfg_b.seed = 2;
    let a = Pipeline::new(cfg_a).run(&ds, Backend::CpuParallel);
    let b = Pipeline::new(cfg_b).run(&ds, Backend::CpuParallel);
    assert_ne!(a.samples.th1, b.samples.th1, "MCMC must depend on the seed");
}
