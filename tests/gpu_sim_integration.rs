//! Device-model integration: the Table IV cost structure on controlled
//! synthetic loads, schedule traces, and the overlap extension.

use tracto::gpu_sim::overlap::{interleave_identical, schedule_streams, SegmentCost};
use tracto::gpu_sim::schedule::EventKind;
use tracto::gpu_sim::{DeviceConfig, Gpu, LaneStatus, SimKernel};
use tracto::rng::{dist, HybridTaus};
use tracto::stats::loadbalance::{charged_iterations, rectangle_model, useful_iterations};
use tracto::tracking::SegmentationStrategy;

/// Countdown kernel: lane = remaining iterations.
struct Countdown;
impl SimKernel for Countdown {
    type Lane = u32;
    fn step(&self, lane: &mut u32) -> LaneStatus {
        if *lane > 1 {
            *lane -= 1;
            LaneStatus::Continue
        } else {
            *lane = 0;
            LaneStatus::Finished
        }
    }
}

/// Exponentially distributed synthetic loads (the paper's Fig. 5 regime).
fn exponential_loads(n: usize, mean: f64, seed: u64) -> Vec<u32> {
    let mut rng = HybridTaus::new(seed);
    (0..n)
        .map(|_| dist::exponential(&mut rng, 1.0 / mean).ceil() as u32 + 1)
        .collect()
}

/// Run a segmented countdown through the simulator, with host compaction
/// between launches, mimicking the tracking driver.
fn run_strategy(
    loads: &[u32],
    strategy: &SegmentationStrategy,
    device: DeviceConfig,
) -> tracto::gpu_sim::TimingLedger {
    let max = *loads.iter().max().unwrap();
    let mut gpu = Gpu::new(device);
    let mut lanes: Vec<u32> = loads.to_vec();
    gpu.transfer_to_device(lanes.len() as u64 * 32);
    for &budget in &strategy.budgets(max) {
        if lanes.is_empty() {
            break;
        }
        let stats = gpu.launch(&Countdown, &mut lanes, budget);
        gpu.transfer_to_host(lanes.len() as u64 * 32);
        gpu.host_reduction(lanes.len() as u64);
        let mut next = Vec::with_capacity(stats.unfinished());
        for (lane, fin) in lanes.into_iter().zip(&stats.finished) {
            if !fin {
                next.push(lane);
            }
        }
        lanes = next;
        if !lanes.is_empty() {
            gpu.transfer_to_device(lanes.len() as u64 * 32);
        }
    }
    *gpu.ledger()
}

/// Paper-shaped loads: most seeds are background (immediate stop), a
/// minority follow fibers with exponentially distributed lengths — the
/// mixture that makes wavefronts badly imbalanced.
fn paper_shaped_loads(n: usize, fiber_fraction: f64, mean_fiber: f64, seed: u64) -> Vec<u32> {
    let mut rng = HybridTaus::new(seed);
    (0..n)
        .map(|_| {
            if dist::bernoulli(&mut rng, fiber_fraction) {
                dist::exponential(&mut rng, 1.0 / mean_fiber).ceil() as u32 + 1
            } else {
                1
            }
        })
        .collect()
}

#[test]
fn table_iv_u_curve_on_exponential_loads() {
    // 256k lanes, 10% on-fiber with mean length 110 (the dataset-1
    // statistics: 2.28M steps per sample over 205k seeds): the k-sweep must
    // be U-shaped with the extremes slow and the increasing-interval
    // strategy at or near the bottom.
    let loads = paper_shaped_loads(262_144, 0.1, 110.0, 42);
    let device = DeviceConfig::radeon_5870();
    let total = |s: SegmentationStrategy| run_strategy(&loads, &s, device.clone()).total_s();

    let a1 = total(SegmentationStrategy::every_step());
    let a5 = total(SegmentationStrategy::Uniform(5));
    let a20 = total(SegmentationStrategy::Uniform(20));
    let single = total(SegmentationStrategy::Single);
    let b = total(SegmentationStrategy::paper_b());

    assert!(
        a1 > a5,
        "A_1 {a1:.3} must be slower than A_5 {a5:.3} (transfer overhead)"
    );
    assert!(b < a1, "B {b:.3} must beat A_1 {a1:.3}");
    assert!(b < single, "B {b:.3} must beat A_MaxStep {single:.3}");
    assert!(
        b <= a20 * 1.3,
        "B {b:.3} should be near the best uniform {a20:.3}"
    );
}

#[test]
fn wavefront_size_ablation_narrow_warps_waste_less() {
    let loads = exponential_loads(16_384, 10.0, 7);
    let wide = charged_iterations(&loads, 64);
    let narrow = charged_iterations(&loads, 32);
    assert!(narrow < wide, "32-lane warps must charge fewer iterations");
    assert_eq!(
        useful_iterations(&loads),
        loads.iter().map(|&l| l as u64).sum::<u64>()
    );
}

#[test]
fn rectangle_model_matches_simulator_utilization_trend() {
    // The Fig. 6 analytical model and the executed simulator must rank
    // strategies identically.
    let loads = exponential_loads(8_192, 15.0, 3);
    let max = *loads.iter().max().unwrap();
    let strategies = [
        SegmentationStrategy::Single,
        SegmentationStrategy::Uniform(10),
        SegmentationStrategy::paper_b(),
    ];
    let mut model_util = Vec::new();
    let mut sim_util = Vec::new();
    for s in &strategies {
        model_util.push(rectangle_model(&loads, &s.budgets(max)).utilization());
        let ledger = run_strategy(&loads, s, DeviceConfig::radeon_5870());
        sim_util.push(ledger.simd_utilization());
    }
    // Single worst in both orderings.
    assert!(model_util[0] < model_util[1] && model_util[0] < model_util[2]);
    assert!(sim_util[0] < sim_util[1] && sim_util[0] < sim_util[2]);
}

#[test]
fn schedule_trace_structure() {
    let loads = exponential_loads(512, 8.0, 5);
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let mut lanes = loads.clone();
    gpu.transfer_to_device(1024);
    gpu.launch(&Countdown, &mut lanes, 1_000);
    gpu.transfer_to_host(1024);
    gpu.host_reduction(512);
    let trace = gpu.trace();
    let kinds: Vec<EventKind> = trace.events().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::TransferH2D,
            EventKind::Kernel,
            EventKind::TransferD2H,
            EventKind::Reduction
        ]
    );
    // Events tile the timeline contiguously.
    let mut t = 0.0;
    for e in trace.events() {
        assert!((e.start_s - t).abs() < 1e-12);
        t += e.duration_s;
    }
    assert!((trace.makespan_s() - t).abs() < 1e-12);
    let ascii = trace.render_ascii(60);
    assert_eq!(ascii.lines().count(), 4);
}

#[test]
fn overlap_extension_saves_on_balanced_streams() {
    // Fig. 8: interleaving two samples overlaps GPU kernels with host
    // reductions.
    let segments: Vec<SegmentCost> = (0..8)
        .map(|i| SegmentCost {
            kernel_s: 0.1 + 0.01 * i as f64,
            host_s: 0.08,
        })
        .collect();
    let two = interleave_identical(&segments, 2);
    assert!(two.overlapped_s < two.sequential_s);
    assert!(two.saving() > 0.2, "saving {:.2}", two.saving());
    // More streams cannot hurt.
    let four = interleave_identical(&segments, 4);
    let eff2 = two.overlapped_s / 2.0;
    let eff4 = four.overlapped_s / 4.0;
    assert!(
        eff4 <= eff2 * 1.05,
        "per-stream time should not degrade: {eff4} vs {eff2}"
    );
}

#[test]
fn overlap_respects_dependency_chains() {
    // A stream with one giant kernel serializes everything behind it on the
    // GPU resource.
    let a = vec![SegmentCost {
        kernel_s: 10.0,
        host_s: 0.1,
    }];
    let b = vec![
        SegmentCost {
            kernel_s: 0.1,
            host_s: 0.1
        };
        5
    ];
    let r = schedule_streams(&[a, b]);
    assert!(r.overlapped_s >= 10.0, "GPU-bound floor");
    assert!(r.overlapped_s <= r.sequential_s);
}

#[test]
fn mcmc_like_balanced_loads_have_full_utilization() {
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let mut lanes = vec![600u32; 4096];
    gpu.launch(&Countdown, &mut lanes, 600);
    assert!((gpu.ledger().simd_utilization() - 1.0).abs() < 1e-12);
}

#[test]
fn device_memory_accounting() {
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    // The full dataset-2 sample volume (six fields × 60×102×102 × f32)
    // fits comfortably; sixty of them do not.
    let one_volume = 6 * 60 * 102 * 102 * 4u64;
    assert!(gpu.device_alloc(one_volume).is_ok());
    assert_eq!(gpu.allocated_bytes(), one_volume);
    let mut failures = 0;
    for _ in 0..100 {
        if gpu.device_alloc(one_volume).is_err() {
            failures += 1;
        }
    }
    assert!(
        failures > 0,
        "1 GB device must refuse ~70 resident sample volumes"
    );
    gpu.device_free(one_volume * 80); // saturating
    assert_eq!(gpu.allocated_bytes(), 0);
}

#[test]
fn reset_does_not_leak_allocations_into_timing() {
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    gpu.device_alloc(1024).unwrap();
    gpu.transfer_to_device(1024);
    gpu.reset();
    assert_eq!(gpu.ledger().bytes_h2d, 0);
}
