//! Integration tests of probabilistic streamlining at moderate scale using
//! synthetic posterior samples: distribution shape, strategy invariance,
//! and CPU/GPU agreement.

use tracto::prelude::*;
use tracto::stats::expfit::{semilog_fit, ExponentialFit};
use tracto::synthetic::samples_from_truth;
use tracto::tracking2::{CpuTracker, GpuTracker, RecordMode, SeedOrdering};

/// A moderately sized workload with strong orientation dispersion: one long
/// bundle tracked at fine step length. Most seeds sit off-fiber and stop
/// immediately; fiber lengths are governed by the per-step curvature-stop
/// hazard — the memoryless mechanism behind the paper's Fig. 5.
fn workload() -> (Dataset, SampleVolumes, Vec<Vec3>) {
    let ds = datasets::single_bundle(Dim3::new(64, 16, 16), None, 5);
    let samples = samples_from_truth(&ds.truth, 20, 0.22, 0.05, 77);
    let seeds = seeds_from_mask(&Mask::full(ds.dwi.dims()));
    (ds, samples, seeds)
}

/// A larger anatomy-mixed workload where imbalance waste dominates segment
/// overheads (the Table IV regime).
fn workload_large() -> (Dataset, SampleVolumes, Vec<Vec3>) {
    let ds = DatasetSpec::paper_dataset1()
        .scaled(0.75)
        .light_protocol()
        .noiseless()
        .build();
    let samples = samples_from_truth(&ds.truth, 10, 0.10, 0.04, 99);
    let seeds = seeds_from_mask(&ds.wm_mask);
    (ds, samples, seeds)
}

fn params() -> TrackingParams {
    TrackingParams {
        step_length: 0.1,
        angular_threshold: 0.9,
        max_steps: 2000,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    }
}

#[test]
fn fiber_lengths_are_exponentially_distributed() {
    // The paper's central empirical finding (Fig. 5 / Eq. 4).
    let (_ds, samples, seeds) = workload();
    let tracker = CpuTracker {
        samples: &samples,
        params: params(),
        seeds,
        mask: None,
        jitter: 0.5,
        run_seed: 3,
        bidirectional: false,
    };
    let out = tracker.run_parallel(RecordMode::LengthsOnly);
    // Fit the positive lengths (seeds that tracked at all).
    let lengths: Vec<f64> = out
        .all_lengths()
        .into_iter()
        .filter(|&l| l > 0)
        .map(|l| l as f64)
        .collect();
    assert!(
        lengths.len() > 2000,
        "need a populated length set: {}",
        lengths.len()
    );
    let fit = ExponentialFit::fit(&lengths);
    // The KS test against a perfect exponential is extremely strict at this
    // n; the paper's own claim is the straight semi-log line, so assert a
    // strongly linear semi-log density plus a sane KS distance.
    let line = semilog_fit(&lengths, 25);
    assert!(line.slope < 0.0, "density must decay");
    assert!(
        line.r_squared > 0.85,
        "semi-log r² {:.3} (slope {:.4}) — not exponential-shaped",
        line.r_squared,
        line.slope
    );
    assert!(
        fit.ks_statistic < 0.15,
        "KS {:.3} too far from exponential",
        fit.ks_statistic
    );
}

#[test]
fn all_strategies_identical_results_different_costs() {
    let (_ds, samples, seeds) = workload();
    let strategies = [
        SegmentationStrategy::Single,
        SegmentationStrategy::every_step(),
        SegmentationStrategy::Uniform(20),
        SegmentationStrategy::paper_b(),
        SegmentationStrategy::paper_c(),
    ];
    let mut reference: Option<(Vec<Vec<u32>>, u64)> = None;
    let mut totals = Vec::new();
    for strategy in strategies {
        let tracker = GpuTracker {
            samples: &samples,
            params: params(),
            seeds: seeds.clone(),
            mask: None,
            strategy,
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            run_seed: 3,
            record_visits: false,
        };
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        let report = tracker.run(&mut gpu);
        match &reference {
            None => reference = Some((report.lengths_by_sample.clone(), report.total_steps)),
            Some((lens, steps)) => {
                assert_eq!(&report.lengths_by_sample, lens);
                assert_eq!(report.total_steps, *steps);
            }
        }
        totals.push(report.ledger.total_s());
    }
    // Costs must differ across strategies (the whole point of Table IV).
    let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = totals.iter().cloned().fold(0.0f64, f64::max);
    assert!(max / min > 1.2, "strategies indistinguishable: {totals:?}");
}

#[test]
fn increasing_interval_beats_both_extremes_at_scale() {
    // The Table IV headline: B beats A_1 (transfer-bound) and A_MaxStep
    // (imbalance-bound) once the workload is large enough.
    let (_ds, samples, seeds) = workload_large();
    let run = |strategy: SegmentationStrategy| {
        let tracker = GpuTracker {
            samples: &samples,
            params: params(),
            seeds: seeds.clone(),
            mask: None,
            strategy,
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            run_seed: 3,
            record_visits: false,
        };
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        tracker.run(&mut gpu).ledger
    };
    let every = run(SegmentationStrategy::every_step());
    let single = run(SegmentationStrategy::Single);
    let b = run(SegmentationStrategy::paper_b());
    assert!(
        b.total_s() < every.total_s(),
        "B {:.3}s must beat per-step reduction {:.3}s",
        b.total_s(),
        every.total_s()
    );
    assert!(
        b.total_s() < single.total_s(),
        "B {:.3}s must beat the single launch {:.3}s",
        b.total_s(),
        single.total_s()
    );
    // And the mechanisms are the expected ones:
    assert!(
        every.transfer_s > single.transfer_s,
        "A_1 is transfer-dominated"
    );
    assert!(
        single.simd_utilization() < b.simd_utilization(),
        "A_MaxStep wastes SIMD cycles"
    );
}

#[test]
fn cpu_and_gpu_trackers_agree_at_scale() {
    let (_ds, samples, seeds) = workload();
    let cpu = CpuTracker {
        samples: &samples,
        params: params(),
        seeds: seeds.clone(),
        mask: None,
        jitter: 0.5,
        run_seed: 3,
        bidirectional: false,
    }
    .run_parallel(RecordMode::LengthsOnly);
    let gpu = GpuTracker {
        samples: &samples,
        params: params(),
        seeds,
        mask: None,
        strategy: SegmentationStrategy::paper_table2(),
        ordering: SeedOrdering::Natural,
        jitter: 0.5,
        run_seed: 3,
        record_visits: false,
    }
    .run(&mut Gpu::new(DeviceConfig::radeon_5870()));
    assert_eq!(cpu.lengths_by_sample, gpu.lengths_by_sample);
    assert_eq!(cpu.total_steps, gpu.total_steps);
}

#[test]
fn sorted_pilot_does_not_predict_other_samples() {
    // Fig. 4's negative result: ordering seeds by one sample's lengths
    // leaves high neighbor variance in other samples.
    let (_ds, samples, seeds) = workload();
    let tracker = GpuTracker {
        samples: &samples,
        params: params(),
        seeds,
        mask: None,
        strategy: SegmentationStrategy::Single,
        ordering: SeedOrdering::SortedByPilot,
        jitter: 0.5,
        run_seed: 3,
        record_visits: false,
    };
    let report = tracker.run(&mut Gpu::new(DeviceConfig::radeon_5870()));
    use tracto::stats::loadbalance::neighbor_mean_abs_diff;
    // Within the pilot sample, its own sorted order is perfectly smooth.
    let pilot = &report.lengths_by_sample[0];
    let order1 = &report.submission_orders[1];
    let pilot_in_sorted_order: Vec<u32> = order1.iter().map(|&i| pilot[i as usize]).collect();
    let sample1_in_sorted_order = report.thread_loads(1);
    let self_smooth = neighbor_mean_abs_diff(&pilot_in_sorted_order);
    let cross_smooth = neighbor_mean_abs_diff(&sample1_in_sorted_order);
    assert!(
        cross_smooth > 2.0 * self_smooth,
        "sorting should fail to transfer: self {self_smooth:.2} vs cross {cross_smooth:.2}"
    );
}

#[test]
fn longest_fiber_under_max_steps_cap() {
    let (_ds, samples, seeds) = workload();
    let mut p = params();
    p.max_steps = 300;
    let tracker = CpuTracker {
        samples: &samples,
        params: p,
        seeds,
        mask: None,
        jitter: 0.5,
        run_seed: 4,
        bidirectional: false,
    };
    let out = tracker.run_parallel(RecordMode::LengthsOnly);
    assert!(out.longest() <= 300);
}

#[test]
fn kissing_bundles_not_confused_with_crossing() {
    // Two bundles that touch but do not cross: orientation maintenance
    // must keep streamlines on their own arc, so upper-arc seeds connect
    // west↔east along the top and (almost) never exit through the lower
    // arc's arms — the connectivity difference that distinguishes kissing
    // from crossing.
    let dims = Dim3::new(28, 28, 7);
    let ds = tracto::phantom::datasets::kissing(dims, None, 6);
    let samples = samples_from_truth(&ds.truth, 10, 0.08, 0.03, 21);

    // Seed on the upper arc, a few voxels west of the kiss.
    let mut seeds = Vec::new();
    for c in ds.truth.fiber_mask().coords() {
        if c.j > dims.ny / 2 && c.i >= 5 && c.i <= 7 {
            seeds.push(Vec3::new(c.i as f64, c.j as f64, c.k as f64));
        }
    }
    assert!(!seeds.is_empty(), "upper-arc seeds exist");
    let tracker = CpuTracker {
        samples: &samples,
        params: TrackingParams {
            step_length: 0.2,
            angular_threshold: 0.85,
            max_steps: 1500,
            min_fraction: 0.05,
            interp: InterpMode::Nearest,
        },
        seeds,
        mask: None,
        jitter: 0.3,
        run_seed: 7,
        bidirectional: false,
    };
    let out = tracker.run_parallel(RecordMode::Streamlines { min_steps: 10 });
    let mut stayed_upper = 0;
    let mut switched_lower = 0;
    for s in &out.streamlines {
        let end = s.points.last().unwrap();
        // Ends in the lower half, away from the kiss zone → switched arcs.
        if end.y < (dims.ny / 2) as f64 - 3.0 {
            switched_lower += 1;
        } else {
            stayed_upper += 1;
        }
    }
    assert!(
        stayed_upper > 4 * switched_lower.max(1),
        "orientation maintenance failed: {stayed_upper} stayed vs {switched_lower} switched"
    );
}

#[test]
fn policy_masks_shape_connectivity() {
    use tracto::tracking::policy::{track_with_policy, TrackingPolicy};
    use tracto::tracking::SampleFieldView;
    // Straight bundle; an exclusion wall mid-way must zero out east-side
    // connectivity while a waypoint selects only streamlines that got far.
    let ds = tracto::phantom::datasets::single_bundle(Dim3::new(24, 10, 10), None, 4);
    let samples = samples_from_truth(&ds.truth, 6, 0.06, 0.02, 12);
    let dims = ds.dwi.dims();
    let wall = Mask::from_fn(dims, |c| c.i == 14);
    let far_east = Mask::from_fn(dims, |c| c.i >= 20);
    let seeds: Vec<Vec3> = (0..6)
        .map(|k| Vec3::new(2.0, 4.0 + (k % 2) as f64, 4.0 + (k / 2) as f64))
        .collect();

    let mut reached_with_wall = 0u32;
    let mut reached_without = 0u32;
    let mut accepted_by_waypoint = 0u32;
    for sample in 0..samples.num_samples() {
        let field = SampleFieldView::new(&samples, sample);
        for (i, &seed) in seeds.iter().enumerate() {
            let p = TrackingParams {
                step_length: 0.25,
                angular_threshold: 0.8,
                max_steps: 400,
                min_fraction: 0.05,
                interp: InterpMode::Nearest,
            };
            let blocked = TrackingPolicy {
                exclusion: Some(&wall),
                ..Default::default()
            };
            let open = TrackingPolicy::default();
            let wp = [far_east.clone()];
            let gated = TrackingPolicy {
                waypoints: &wp,
                ..Default::default()
            };
            let reach = |o: &tracto::tracking::policy::TrackOutcome| {
                o.streamline()
                    .points
                    .last()
                    .map(|e| e.x >= 20.0)
                    .unwrap_or(false)
            };
            let run = |pol: &TrackingPolicy| {
                track_with_policy(&field, i as u32, seed, Vec3::X, &p, pol, true)
            };
            let b = run(&blocked);
            if b.accepted() && reach(&b) {
                reached_with_wall += 1;
            }
            let o = run(&open);
            if reach(&o) {
                reached_without += 1;
            }
            if run(&gated).accepted() {
                accepted_by_waypoint += 1;
            }
        }
    }
    assert_eq!(
        reached_with_wall, 0,
        "exclusion wall must block the east side"
    );
    assert!(
        reached_without > 10,
        "open tracking crosses: {reached_without}"
    );
    assert!(
        accepted_by_waypoint >= reached_without - reached_without.min(2),
        "waypoint acceptance ≈ open reach count: {accepted_by_waypoint} vs {reached_without}"
    );
}
