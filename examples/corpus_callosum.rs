//! Reconstruct the corpus-callosum-like arc of dataset 2 and export the
//! long fibers — the reproduction of the paper's biological results
//! (Figs. 9, 11, 12), including the CPU-vs-GPU identity check.
//!
//! ```sh
//! cargo run --release --example corpus_callosum
//! ```
//!
//! Writes `target/corpus_callosum_fibers.csv` and `.obj` with every
//! reconstructed fiber longer than the length floor (the paper renders
//! "fibers whose length > 100").

use std::fs::File;
use std::io::BufWriter;
use tracto::prelude::*;
use tracto::tracking::cluster::quick_bundles;
use tracto::tracking::export;
use tracto::tracking2::{CpuTracker, GpuTracker, RecordMode, SeedOrdering};

fn main() {
    // Dataset 2 geometry at reduced scale so the example runs in seconds.
    let dataset = DatasetSpec::paper_dataset2()
        .scaled(0.22)
        .light_protocol()
        .build();
    println!(
        "dataset2 (scaled): dims {:?}, {} white-matter voxels",
        dataset.dwi.dims(),
        dataset.valid_voxel_count()
    );

    // Step 1: estimate orientation posteriors over the fiber-bearing region
    // (dilated by using the WM mask restricted to the truth's fiber mask —
    // the arc and its crossings).
    let fiber_mask = dataset.truth.fiber_mask();
    let config = PipelineConfig::fast();
    let estimator = VoxelEstimator::new(
        &dataset.acq,
        &dataset.dwi,
        &fiber_mask,
        config.prior,
        config.chain,
        config.seed,
    );
    println!("running MCMC over {} voxels…", estimator.workload());
    let samples = estimator.run_parallel();

    // Step 2 on the simulated GPU, recording visited voxels, seeded on the
    // arc.
    let seeds = seeds_from_mask(&fiber_mask);
    let params = TrackingParams {
        step_length: 0.2,
        angular_threshold: 0.8,
        max_steps: 1000,
        ..TrackingParams::paper_default()
    };
    let gpu_tracker = GpuTracker {
        samples: &samples,
        params,
        seeds: seeds.clone(),
        mask: None,
        strategy: SegmentationStrategy::paper_table2(),
        ordering: SeedOrdering::Natural,
        jitter: 0.5,
        run_seed: config.seed,
        record_visits: false,
    };
    let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
    let mut gpu_tracker = gpu_tracker;
    gpu_tracker.record_visits = true;
    let gpu_report = gpu_tracker.run(&mut gpu);
    println!(
        "GPU tracking: {} streamlines/sample × {} samples, longest {} steps, simulated {:.2} s",
        seeds.len(),
        samples.num_samples(),
        gpu_report.longest(),
        gpu_report.ledger.total_s()
    );

    // The paper's Fig. 11/12 check: "CPU and GPU results are substantially
    // the same" — here they are identical.
    let cpu_tracker = CpuTracker {
        samples: &samples,
        params,
        seeds,
        mask: None,
        jitter: 0.5,
        run_seed: config.seed,
        bidirectional: false,
    };
    let cpu_out = cpu_tracker.run_parallel(RecordMode::Streamlines { min_steps: 100 });
    assert_eq!(
        cpu_out.lengths_by_sample, gpu_report.lengths_by_sample,
        "CPU and GPU fiber lengths must agree exactly"
    );
    println!("CPU ≡ GPU: identical fiber lengths across all samples.");

    // Export the long fibers (the Fig. 11/12 selection).
    let long_fibers = &cpu_out.streamlines;
    let summary = export::summarize(long_fibers);
    println!(
        "fibers with ≥100 steps: {} (mean {:.0} steps, max {})",
        summary.count, summary.mean_steps, summary.max_steps
    );
    std::fs::create_dir_all("target").expect("create target dir");
    let mut csv = BufWriter::new(File::create("target/corpus_callosum_fibers.csv").unwrap());
    export::write_csv(&mut csv, long_fibers).unwrap();
    let mut obj = BufWriter::new(File::create("target/corpus_callosum_fibers.obj").unwrap());
    export::write_obj(&mut obj, long_fibers).unwrap();
    println!("wrote target/corpus_callosum_fibers.csv and .obj");

    // A terminal rendering of the arc (the paper's Fig. 9): MIP of the
    // connectivity map in the x-z plane, where the corpus-callosum-like
    // bundle appears as an arch.
    if let Some(conn) = &gpu_report.connectivity {
        println!("\nconnectivity MIP (x-z plane — the arc):");
        print!(
            "{}",
            tracto::volume::render::mip_ascii(
                &conn.probability_volume(),
                tracto::volume::render::Axis::Y
            )
        );
    }

    // Bundle structure: cluster the long fibers (QuickBundles-style) and
    // report the dominant bundles, as the paper's figures group them.
    let polylines: Vec<Vec<tracto::volume::Vec3>> =
        long_fibers.iter().map(|s| s.points.clone()).collect();
    let bundles = quick_bundles(&polylines, 3.0);
    println!("bundles (MDF threshold 3.0 voxels): {}", bundles.len());
    for (i, b) in bundles.iter().take(3).enumerate() {
        let mid = b.centroid[b.centroid.len() / 2];
        println!(
            "  bundle {i}: {} fibers, centroid mid-point ({:.1},{:.1},{:.1})",
            b.len(),
            mid.x,
            mid.y,
            mid.z
        );
    }
    if let Some(first) = bundles.first() {
        assert!(
            first.len() >= long_fibers.len() / 4,
            "a dominant bundle should emerge"
        );
    }

    // Anatomy check: long fibers should arch across the x extent, like the
    // corpus callosum connecting the hemispheres.
    if let Some(widest) = long_fibers.iter().max_by(|a, b| {
        let span = |s: &tracto::tracking::deterministic::Streamline| {
            let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - xs.iter().copied().fold(f64::INFINITY, f64::min)
        };
        span(a).partial_cmp(&span(b)).unwrap()
    }) {
        let xs: Vec<f64> = widest.points.iter().map(|p| p.x).collect();
        let span = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "widest fiber spans {:.1} of {} voxels along x (inter-hemispheric arc)",
            span,
            dataset.dwi.dims().nx
        );
    }
}
