//! Quickstart: the whole pipeline on a small single-bundle phantom.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic DWI scan of one straight fiber bundle, estimates the
//! voxelwise fiber-orientation posteriors by Metropolis–Hastings MCMC
//! (Step 1), runs probabilistic streamlining on the simulated GPU (Step 2),
//! and prints the timing breakdown and a connectivity check.

use tracto::prelude::*;

fn main() {
    // 1. A synthetic scan: 16×10×10 voxels, one bundle along x, Rician
    //    noise at SNR 25.
    let dataset = datasets::single_bundle(Dim3::new(16, 10, 10), Some(25.0), 7);
    println!(
        "dataset: {} voxels, {} DWI measurements, {} fiber voxels",
        dataset.dwi.dims().len(),
        dataset.acq.len(),
        dataset.truth.fiber_voxel_count()
    );

    // 2. Run both steps on the simulated Radeon 5870.
    let pipeline = Pipeline::new(PipelineConfig::fast());
    let outcome = pipeline.run(&dataset, Backend::GpuSim(DeviceConfig::radeon_5870()));

    let mcmc = outcome
        .mcmc_ledger
        .expect("GPU backend records MCMC timing");
    let track = outcome
        .tracking_ledger
        .expect("GPU backend records tracking timing");
    println!("\nStep 1 (MCMC sampling)");
    println!("  simulated kernel time   {:>8.3} s", mcmc.kernel_s);
    println!("  simulated transfer time {:>8.3} s", mcmc.transfer_s);
    println!(
        "  SIMD utilization        {:>8.1} %",
        mcmc.simd_utilization() * 100.0
    );
    println!(
        "  wall clock              {:>8.3} s",
        outcome.mcmc_wall.as_secs_f64()
    );

    println!("\nStep 2 (probabilistic streamlining)");
    println!("  simulated kernel time   {:>8.3} s", track.kernel_s);
    println!("  simulated reduction     {:>8.3} s", track.reduction_s);
    println!("  simulated transfer      {:>8.3} s", track.transfer_s);
    println!(
        "  SIMD utilization        {:>8.1} %",
        track.simd_utilization() * 100.0
    );
    println!(
        "  total steps tracked     {:>8}",
        outcome.tracking.total_steps
    );
    println!(
        "  longest fiber           {:>8} steps",
        outcome.tracking.longest()
    );

    // 3. Connectivity sanity: voxels downstream along the bundle should be
    //    reached by streamlines seeded on it.
    let conn = outcome
        .tracking
        .connectivity
        .expect("connectivity recorded");
    let mid = Ijk::new(8, 5, 5);
    let off = Ijk::new(8, 1, 1);
    println!("\nconnectivity");
    println!(
        "  P(seed → bundle core voxel {:?})  = {:.3}",
        mid,
        conn.probability(mid)
    );
    println!(
        "  P(seed → off-bundle voxel {:?}) = {:.3}",
        off,
        conn.probability(off)
    );
    assert!(
        conn.probability(mid) > conn.probability(off),
        "bundle voxels must be better connected than background"
    );

    // A terminal rendering of the connectivity map (maximum-intensity
    // projection along z — the bundle should appear as a horizontal band).
    println!("\nconnectivity MIP (x-y plane):");
    print!(
        "{}",
        tracto::volume::render::mip_ascii(
            &conn.probability_volume(),
            tracto::volume::render::Axis::Z
        )
    );
    println!("\nok: probabilistic tractography follows the bundle.");
}
