//! Deterministic single-tensor tracking vs probabilistic two-stick
//! tracking at a fiber crossing — the paper's introductory motivation made
//! runnable: deterministic methods "may be disturbed by the presence of
//! fiber crossings or bifurcations … and do not provide the confidence in
//! the estimated fiber paths".
//!
//! ```sh
//! cargo run --release --example deterministic_vs_probabilistic
//! ```

use tracto::prelude::*;
use tracto::tracking::tensorline::{track_tensorline, TensorField};
use tracto::tracking2::{CpuTracker, RecordMode};

fn main() {
    // A 90° crossing with realistic noise.
    let dims = Dim3::new(24, 24, 7);
    let dataset = datasets::crossing(dims, 90.0, Some(25.0), 17);
    let cx = (dims.nx - 1) as f64 / 2.0;
    let cy = (dims.ny - 1) as f64 / 2.0;
    let cz = (dims.nz - 1) as f64 / 2.0;

    // Seeds on the west arm of the x bundle, before the crossing.
    let seeds: Vec<Vec3> = (0..3).map(|i| Vec3::new(2.0 + i as f64, cy, cz)).collect();

    // ---- Deterministic tensor-line baseline.
    println!("fitting tensors over {} voxels…", dims.len());
    let tensor_field = TensorField::fit(&dataset.acq, &dataset.dwi);
    let det_params = TrackingParams {
        step_length: 0.2,
        angular_threshold: 0.8,
        max_steps: 600,
        min_fraction: 0.12, // classical FA floor
        interp: InterpMode::Nearest,
    };
    let mut det_crossed = 0;
    let mut det_total = 0;
    for (i, &seed) in seeds.iter().enumerate() {
        if let Some(s) = track_tensorline(&tensor_field, i as u32, seed, &det_params, None, true) {
            det_total += 1;
            let end = s.points.last().copied().unwrap_or(seed);
            let crossed = end.x > cx + 4.0;
            println!(
                "  tensor-line from x={:.0}: {} steps, ended at ({:.1},{:.1}) — {}",
                seed.x,
                s.steps,
                end.x,
                end.y,
                if crossed {
                    "crossed"
                } else {
                    "stopped/deflected at the crossing"
                }
            );
            if crossed {
                det_crossed += 1;
            }
        }
    }

    // ---- Probabilistic two-stick tracking.
    let fiber_mask = dataset.truth.fiber_mask();
    println!("\nrunning MCMC over {} fiber voxels…", fiber_mask.count());
    let cfg = PipelineConfig::fast();
    let samples = VoxelEstimator::new(
        &dataset.acq,
        &dataset.dwi,
        &fiber_mask,
        cfg.prior,
        cfg.chain,
        cfg.seed,
    )
    .run_parallel();
    let prob_params = TrackingParams {
        step_length: 0.2,
        angular_threshold: 0.8,
        max_steps: 600,
        min_fraction: 0.05,
        interp: InterpMode::Nearest,
    };
    let tracker = CpuTracker {
        samples: &samples,
        params: prob_params,
        seeds: seeds.clone(),
        mask: None,
        jitter: 0.3,
        run_seed: 5,
        bidirectional: false,
    };
    let out = tracker.run_parallel(RecordMode::Streamlines { min_steps: 0 });
    let mut prob_crossed = 0;
    let mut prob_total = 0;
    for s in &out.streamlines {
        if let Some(end) = s.points.last() {
            prob_total += 1;
            if end.x > cx + 4.0 {
                prob_crossed += 1;
            }
        }
    }
    let prob_rate = prob_crossed as f64 / prob_total.max(1) as f64;
    println!(
        "probabilistic: {}/{} streamlines crossed ({} samples × {} seeds) → P(cross) ≈ {:.2}",
        prob_crossed,
        prob_total,
        samples.num_samples(),
        seeds.len(),
        prob_rate
    );

    // The probabilistic tracker both *maintains orientation through* the
    // crossing and *quantifies* the confidence; the tensor baseline gives a
    // single answer per seed with no uncertainty.
    println!("\ndeterministic crossings: {det_crossed}/{det_total} (single answer, no confidence)");
    println!("probabilistic crossing probability: {prob_rate:.2} (a connectivity estimate)");
    assert!(
        prob_rate > 0.5,
        "probabilistic tracking should usually traverse the crossing"
    );
    println!("\nok: the probabilistic multi-fiber pipeline quantifies what the");
    println!("deterministic baseline can only guess at a crossing.");
}
