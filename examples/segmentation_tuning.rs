//! Segmentation-strategy tuning — an interactive-scale version of the
//! paper's Table IV: compare `A_k`, `B`, and `C` on a real tracking
//! workload and print the kernel / reduction / transfer breakdown.
//!
//! ```sh
//! cargo run --release --example segmentation_tuning
//! ```

use tracto::prelude::*;
use tracto::tracking2::{GpuTracker, SeedOrdering};

fn main() {
    // A moderate phantom so every strategy runs in a few seconds.
    let dataset = DatasetSpec::paper_dataset1()
        .scaled(0.25)
        .light_protocol()
        .build();
    let fiber_mask = dataset.truth.fiber_mask();
    let config = PipelineConfig::fast();
    println!("estimating posteriors over {} voxels…", fiber_mask.count());
    let samples = VoxelEstimator::new(
        &dataset.acq,
        &dataset.dwi,
        &fiber_mask,
        config.prior,
        config.chain,
        config.seed,
    )
    .run_parallel();

    let seeds = seeds_from_mask(&fiber_mask);
    let params = TrackingParams {
        step_length: 0.1,
        angular_threshold: 0.9,
        max_steps: 1000,
        ..TrackingParams::paper_default()
    };

    let strategies: Vec<SegmentationStrategy> = vec![
        SegmentationStrategy::every_step(),
        SegmentationStrategy::Uniform(5),
        SegmentationStrategy::Uniform(20),
        SegmentationStrategy::Uniform(100),
        SegmentationStrategy::Single,
        SegmentationStrategy::paper_b(),
        SegmentationStrategy::paper_c(),
    ];

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>10} {:>8} {:>7}",
        "Strategy", "Kernel(s)", "Reduce(s)", "Xfer(s)", "Total(s)", "Launch", "Util%"
    );
    let mut best: Option<(String, f64)> = None;
    let mut reference_steps: Option<u64> = None;
    for strategy in strategies {
        let tracker = GpuTracker {
            samples: &samples,
            params,
            seeds: seeds.clone(),
            mask: None,
            strategy: strategy.clone(),
            ordering: SeedOrdering::Natural,
            jitter: 0.5,
            run_seed: config.seed,
            record_visits: false,
        };
        let mut gpu = Gpu::new(DeviceConfig::radeon_5870());
        let report = tracker.run(&mut gpu);
        let l = report.ledger;
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>8} {:>6.1}%",
            strategy.label(),
            l.kernel_s,
            l.reduction_s,
            l.transfer_s,
            l.total_s(),
            l.launches,
            l.simd_utilization() * 100.0
        );
        // Correctness: every strategy computes the identical tracking result.
        match reference_steps {
            None => reference_steps = Some(report.total_steps),
            Some(expected) => assert_eq!(
                report.total_steps, expected,
                "strategies must not change results"
            ),
        }
        if best.as_ref().map(|(_, t)| l.total_s() < *t).unwrap_or(true) {
            best = Some((strategy.label(), l.total_s()));
        }
    }
    let (name, total) = best.unwrap();
    println!("\nbest strategy: {name} at {total:.3} simulated s");
    println!("(the paper's Table IV finds the increasing-interval strategies B/C fastest)");
}
