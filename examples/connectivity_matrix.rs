//! Region-to-region connectivity — the paper's output stage: "the
//! connectivity matrix P, in which P_ij represents the probability that
//! there exists a connection from i to j" (aggregated to regions of
//! interest; the voxel-level matrix at paper scale is ~160 GB).
//!
//! ```sh
//! cargo run --release --example connectivity_matrix
//! ```
//!
//! Uses the crossing phantom: seeds in the west arm of the x bundle should
//! connect east (same bundle) but not north/south (the crossing bundle),
//! because tracking maintains orientation through crossings.

use tracto::prelude::*;
use tracto::tracking::connectivity::RegionConnectivity;
use tracto::tracking2::{CpuTracker, RecordMode};

fn main() {
    let dims = Dim3::new(20, 20, 7);
    let dataset = datasets::crossing(dims, 90.0, Some(30.0), 23);
    let fiber_mask = dataset.truth.fiber_mask();
    let cfg = PipelineConfig::fast();

    println!("estimating posteriors over {} voxels…", fiber_mask.count());
    let samples = VoxelEstimator::new(
        &dataset.acq,
        &dataset.dwi,
        &fiber_mask,
        cfg.prior,
        cfg.chain,
        cfg.seed,
    )
    .run_parallel();

    // Four arm regions around the crossing center.
    let cx = dims.nx / 2;
    let cy = dims.ny / 2;
    let arm = 4usize;
    let west = Mask::from_fn(dims, |c| c.i < arm && fiber_mask.contains(c));
    let east = Mask::from_fn(dims, |c| c.i >= dims.nx - arm && fiber_mask.contains(c));
    let south = Mask::from_fn(dims, |c| c.j < arm && fiber_mask.contains(c));
    let north = Mask::from_fn(dims, |c| c.j >= dims.ny - arm && fiber_mask.contains(c));
    let names = ["west", "east", "south", "north"];
    let regions = vec![west, east, south, north];
    for (n, r) in names.iter().zip(&regions) {
        println!("region {n}: {} voxels", r.count());
        assert!(r.count() > 0, "region {n} must contain fiber voxels");
    }

    // Track from every region, recording full streamlines so each can be
    // attributed to its seed region.
    let params = TrackingParams {
        step_length: 0.25,
        angular_threshold: 0.85,
        max_steps: 800,
        ..TrackingParams::paper_default()
    };
    let mut matrix = RegionConnectivity::new(regions.len());
    for (region_idx, region) in regions.iter().enumerate() {
        let tracker = CpuTracker {
            samples: &samples,
            params,
            seeds: seeds_from_mask(region),
            mask: None,
            jitter: 0.4,
            run_seed: cfg.seed + region_idx as u64,
            bidirectional: true,
        };
        let out = tracker.run_parallel(RecordMode::Streamlines { min_steps: 0 });
        for s in &out.streamlines {
            let visited =
                tracto::tracking::ConnectivityAccumulator::voxels_of_path(dims, &s.points);
            matrix.add_streamline(region_idx, &visited, &regions);
        }
    }

    println!("\nP(i → j): fraction of streamlines from region i crossing region j");
    print!("{:>8}", "");
    for n in names {
        print!("{n:>8}");
    }
    println!();
    for (i, ni) in names.iter().enumerate() {
        print!("{ni:>8}");
        for j in 0..names.len() {
            print!("{:>8.3}", matrix.probability(i, j));
        }
        println!();
    }

    // The x-bundle connects west↔east far better than west↔north/south.
    let same_bundle = matrix.probability(0, 1);
    let cross_bundle = matrix.probability(0, 2).max(matrix.probability(0, 3));
    println!(
        "\nwest→east {:.3} vs west→(north|south) {:.3}",
        same_bundle, cross_bundle
    );
    assert!(
        same_bundle > cross_bundle,
        "orientation maintenance must keep streamlines on their bundle"
    );
    println!("ok: streamlines maintain orientation through the crossing (cx={cx}, cy={cy}).");
}
