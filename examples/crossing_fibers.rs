//! Crossing-fiber recovery — the motivating case for probabilistic,
//! multi-fiber tractography (paper Section I: deterministic methods "may be
//! disturbed by the presence of fiber crossings or bifurcations").
//!
//! ```sh
//! cargo run --release --example crossing_fibers
//! ```
//!
//! Builds a 90° two-bundle crossing phantom, then contrasts:
//! 1. the classical single-tensor fit at the crossing voxel (which cannot
//!    represent two populations — its principal direction is ambiguous and
//!    its FA collapses), and
//! 2. the ball-and-two-sticks posterior sampled by MCMC, which recovers
//!    both bundle directions.

use tracto::diffusion::TensorFit;
use tracto::prelude::*;

fn angle_deg(a: Vec3, b: Vec3) -> f64 {
    a.dot(b).abs().clamp(0.0, 1.0).acos().to_degrees()
}

fn main() {
    let dims = Dim3::new(18, 18, 7);
    let dataset = datasets::crossing(dims, 90.0, Some(30.0), 11);
    let center = Ijk::new(dims.nx / 2 - 1, dims.ny / 2 - 1, dims.nz / 2);
    let truth = dataset.truth.at(center);
    assert_eq!(truth.count, 2, "phantom center must be a crossing voxel");
    let t0 = truth.sticks()[0].0;
    let t1 = truth.sticks()[1].0;
    println!("ground truth at {center:?}:");
    println!(
        "  stick 1 {:?} (f={:.2})",
        t0.to_f32_array(),
        truth.sticks()[0].1
    );
    println!(
        "  stick 2 {:?} (f={:.2})",
        t1.to_f32_array(),
        truth.sticks()[1].1
    );

    // --- Classical tensor model at the crossing.
    let signal: Vec<f64> = dataset
        .dwi
        .voxel(center)
        .iter()
        .map(|&v| v as f64)
        .collect();
    let fit = TensorFit::fit(&dataset.acq, &signal).expect("tensor fit");
    let fa = fit.tensor.fractional_anisotropy();
    let pd = fit.tensor.principal_direction();
    println!("\nsingle tensor model:");
    println!("  FA = {fa:.3} (collapses at crossings)");
    println!(
        "  principal direction {:?} — {:.0}° / {:.0}° from the two true sticks",
        pd.to_f32_array(),
        angle_deg(pd, t0),
        angle_deg(pd, t1)
    );

    // --- Ball-and-two-sticks posterior via MCMC on just the center voxel.
    let mask = Mask::from_fn(dims, |c| c == center);
    let estimator = VoxelEstimator::new(
        &dataset.acq,
        &dataset.dwi,
        &mask,
        PriorConfig::default(),
        ChainConfig::paper_default(),
        99,
    );
    let samples = estimator.run_parallel();
    // Posterior-mean directions per stick (sign-aligned within each stick).
    let n = samples.num_samples();
    let ref1 = samples.sticks_at(center, 0)[0].0;
    let ref2 = samples.sticks_at(center, 0)[1].0;
    let mut m1 = Vec3::ZERO;
    let mut m2 = Vec3::ZERO;
    let mut f1 = 0.0;
    let mut f2 = 0.0;
    for s in 0..n {
        let sticks = samples.sticks_at(center, s);
        m1 += sticks[0].0.aligned_with(ref1);
        m2 += sticks[1].0.aligned_with(ref2);
        f1 += sticks[0].1;
        f2 += sticks[1].1;
    }
    let m1 = m1.normalized();
    let m2 = m2.normalized();
    f1 /= n as f64;
    f2 /= n as f64;

    println!("\nball-and-two-sticks posterior ({n} samples):");
    println!("  stick 1 mean {:?}, f̄₁={f1:.2}", m1.to_f32_array());
    println!("  stick 2 mean {:?}, f̄₂={f2:.2}", m2.to_f32_array());

    // Match recovered sticks to ground truth (order-free assignment).
    let (e11, e12) = (angle_deg(m1, t0), angle_deg(m1, t1));
    let (e21, e22) = (angle_deg(m2, t0), angle_deg(m2, t1));
    let (err_a, err_b) = if e11 + e22 <= e12 + e21 {
        (e11, e22)
    } else {
        (e12, e21)
    };
    println!("  angular error vs truth: {err_a:.1}° and {err_b:.1}°");
    assert!(
        err_a < 20.0 && err_b < 20.0,
        "both crossing populations must be recovered (errors {err_a:.1}°, {err_b:.1}°)"
    );
    println!("\nok: the two-stick model resolves the crossing that the tensor model cannot.");
}
