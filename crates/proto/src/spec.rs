//! The unified wire-level job description.
//!
//! A [`JobSpec`] names everything the service needs to run a job from
//! scratch in another process: the dataset (as a deterministic phantom
//! recipe, not raw volumes — phantom generation is seeded, so both sides
//! agree bit-for-bit), the MCMC schedule, the tracking parameters, and the
//! scheduling envelope (deadline, priority, retry budget, cache policy).

use crate::json_util::{obj_f64, obj_opt_f64, obj_opt_u64, obj_str, obj_u32, obj_u64, JsonWriter};
use tracto_trace::json::Json;
use tracto_trace::{TractoError, TractoResult};

/// Scheduling priority. Higher priorities are admitted into batches first;
/// within a priority class the batch worker keeps its earliest-deadline
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Behind everything else.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Ahead of normal and low traffic.
    High,
}

impl Priority {
    /// Canonical wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> TractoResult<Self> {
        match s {
            "low" => Ok(Priority::Low),
            "normal" => Ok(Priority::Normal),
            "high" => Ok(Priority::High),
            other => Err(TractoError::config(format!(
                "unknown priority `{other}` (low|normal|high)"
            ))),
        }
    }
}

/// How a job interacts with the sample cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Read hits and write fresh results back (the default).
    #[default]
    ReadWrite,
    /// Read hits but never write (e.g. probe jobs that should not evict).
    ReadOnly,
    /// Ignore the cache entirely: always re-estimate, store nothing.
    Bypass,
}

impl CachePolicy {
    /// Canonical wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            CachePolicy::ReadWrite => "read-write",
            CachePolicy::ReadOnly => "read-only",
            CachePolicy::Bypass => "bypass",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> TractoResult<Self> {
        match s {
            "read-write" | "rw" => Ok(CachePolicy::ReadWrite),
            "read-only" | "ro" => Ok(CachePolicy::ReadOnly),
            "bypass" => Ok(CachePolicy::Bypass),
            other => Err(TractoError::config(format!(
                "unknown cache policy `{other}` (read-write|read-only|bypass)"
            ))),
        }
    }
}

/// The tracking modality a job requests — which direction getter drives
/// Step 2. Absent on the wire for the default (`mcmc`), so v1–v3 peers and
/// their byte-identical encodings are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modality {
    /// Posterior-sample streamlining (the paper's pipeline; the default).
    #[default]
    Mcmc,
    /// Deterministic single-tensor baseline (skips MCMC entirely).
    Tensorline,
    /// Closed-form fast tier over the posterior mean.
    Analytic,
}

impl Modality {
    /// Canonical wire name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Modality::Mcmc => "mcmc",
            Modality::Tensorline => "tensorline",
            Modality::Analytic => "analytic",
        }
    }

    /// Parse a wire/CLI name.
    pub fn parse(s: &str) -> TractoResult<Self> {
        match s {
            "mcmc" => Ok(Modality::Mcmc),
            "tensorline" => Ok(Modality::Tensorline),
            "analytic" => Ok(Modality::Analytic),
            other => Err(TractoError::config(format!(
                "unknown modality `{other}` (mcmc|tensorline|analytic)"
            ))),
        }
    }
}

/// A dataset reference that crosses the wire: either a deterministic
/// phantom recipe (`(kind, scale, seed, snr)` fully determine the
/// generated volumes, so the recipe doubles as a memoization key
/// server-side) or, since protocol v2, a pointer to a previously uploaded
/// volume blob (`kind = "upload"`, content hash in `upload`).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Phantom family: `1` | `2` (the paper's datasets) | `single` |
    /// `crossing` — or `upload` for an uploaded volume.
    pub kind: String,
    /// Grid scale in `(0, 1]` (ignored for uploads).
    pub scale: f64,
    /// Generation seed (ignored for uploads).
    pub seed: u64,
    /// Rician noise SNR; `None` generates a noiseless dataset (ignored
    /// for uploads).
    pub snr: Option<f64>,
    /// Content hash (16 hex digits) of an uploaded volume blob; set if
    /// and only if `kind == "upload"`. v1 peers never see this field.
    pub upload: Option<String>,
}

impl DatasetSpec {
    /// A spec with the script defaults (scale 0.25, seed 7, SNR 25).
    pub fn new(kind: impl Into<String>) -> Self {
        DatasetSpec {
            kind: kind.into(),
            scale: 0.25,
            seed: 7,
            snr: Some(25.0),
            upload: None,
        }
    }

    /// A reference to an uploaded volume blob by content hash (v2 only).
    pub fn uploaded(hash: impl Into<String>) -> Self {
        DatasetSpec {
            kind: "upload".into(),
            scale: 1.0,
            seed: 0,
            snr: None,
            upload: Some(hash.into()),
        }
    }

    /// Canonical string form, used as the server's memoization key.
    pub fn canonical(&self) -> String {
        if let Some(hash) = &self.upload {
            return format!("upload:{hash}");
        }
        match self.snr {
            Some(snr) => format!("{}:{}:{}:{}", self.kind, self.scale, self.seed, snr),
            None => format!("{}:{}:{}:none", self.kind, self.scale, self.seed),
        }
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin();
        w.str_field("kind", &self.kind);
        w.f64_field("scale", self.scale);
        w.u64_field("seed", self.seed);
        match self.snr {
            Some(snr) => w.f64_field("snr", snr),
            None => w.null_field("snr"),
        }
        // Only uploads carry the hash, so v1 specs encode byte-identically
        // to what a v1 peer would produce.
        if let Some(hash) = &self.upload {
            w.str_field("upload", hash);
        }
        w.end();
    }

    fn from_json(v: &Json) -> TractoResult<Self> {
        let kind = obj_str(v, "kind")?;
        let upload =
            match v.get("upload") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_str().map(str::to_owned).ok_or_else(|| {
                    TractoError::protocol("dataset field `upload` is not a string")
                })?),
            };
        if (kind == "upload") != upload.is_some() {
            return Err(TractoError::protocol(
                "dataset kind `upload` requires the `upload` hash field (and vice versa)",
            ));
        }
        Ok(DatasetSpec {
            kind,
            scale: obj_f64(v, "scale")?,
            seed: obj_u64(v, "seed")?,
            snr: obj_opt_f64(v, "snr")?,
            upload,
        })
    }
}

/// The MCMC schedule knobs carried on the wire (protocol v1 exposes the
/// same knobs as the `serve` script; the adaptation scheme is always the
/// paper default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSpec {
    /// Burn-in loops.
    pub burnin: u32,
    /// Recorded samples.
    pub samples: u32,
    /// Loops between samples.
    pub interval: u32,
}

impl Default for ChainSpec {
    fn default() -> Self {
        ChainSpec {
            burnin: 300,
            samples: 25,
            interval: 2,
        }
    }
}

/// Step-2 tracking knobs carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackSpec {
    /// Step length in voxel units.
    pub step: f64,
    /// Angular threshold (minimum successive-direction dot product).
    pub threshold: f64,
    /// Maximum steps per streamline.
    pub max_steps: u32,
}

impl Default for TrackSpec {
    fn default() -> Self {
        TrackSpec {
            step: 0.1,
            threshold: 0.9,
            max_steps: 400,
        }
    }
}

/// What kind of work the job does.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Step 1 only: estimate posteriors and warm the sample cache.
    Estimate,
    /// The full pipeline: Step 1 via the cache, Step 2 batched.
    Track(TrackSpec),
}

/// The one job-submission payload: everything [`Submit`] carries.
///
/// [`Submit`]: crate::Request::Submit
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The dataset recipe.
    pub dataset: DatasetSpec,
    /// Estimate or track (with tracking knobs).
    pub kind: JobKind,
    /// MCMC schedule.
    pub chain: ChainSpec,
    /// Master seed for estimation and tracking.
    pub seed: u64,
    /// Give up if the job has not started tracking within this budget.
    pub deadline_ms: Option<u64>,
    /// Batch-admission priority.
    pub priority: Priority,
    /// Per-job override of the service retry budget.
    pub retry_budget: Option<u32>,
    /// Sample-cache interaction.
    pub cache: CachePolicy,
    /// Which direction getter drives Step 2. Additive and optional on the
    /// wire (absent means the default), so v1–v3 peers are untouched and
    /// no protocol version bump is needed.
    pub modality: Modality,
    /// Optional stop-mask threshold: a percentile (0–100) of the dataset's
    /// mean-DWI volume. The server derives the stop mask from the
    /// materialized dataset, so only the scalar crosses the wire.
    pub stop_percentile: Option<f64>,
    /// Accounting tenant for rate limits and fair admission. Additive and
    /// optional on the wire (absent means [`DEFAULT_TENANT`]), so v1–v3
    /// peers are untouched and no protocol version bump is needed.
    pub tenant: String,
}

/// The tenant a spec belongs to when it names none. Never emitted on the
/// wire, so default specs stay byte-identical to v3 output.
pub const DEFAULT_TENANT: &str = "default";

impl JobSpec {
    /// An estimation job with default chain/scheduling knobs.
    pub fn estimate(dataset: DatasetSpec) -> Self {
        JobSpec {
            dataset,
            kind: JobKind::Estimate,
            chain: ChainSpec::default(),
            seed: 42,
            deadline_ms: None,
            priority: Priority::Normal,
            retry_budget: None,
            cache: CachePolicy::ReadWrite,
            modality: Modality::Mcmc,
            stop_percentile: None,
            tenant: DEFAULT_TENANT.to_string(),
        }
    }

    /// A tracking job with default knobs.
    pub fn track(dataset: DatasetSpec) -> Self {
        JobSpec {
            kind: JobKind::Track(TrackSpec::default()),
            ..Self::estimate(dataset)
        }
    }

    /// Serialize to a standalone JSON string (one line, no trailing
    /// newline) — the durable form used by the service's job journal.
    pub fn to_json_string(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Parse a standalone JSON string produced by [`Self::to_json_string`].
    pub fn from_json_str(s: &str) -> TractoResult<Self> {
        let v = tracto_trace::json::parse(s)?;
        Self::from_json(&v)
    }

    /// Decode from an already-parsed JSON value, e.g. one field of a
    /// larger journal record.
    pub fn from_json_value(v: &Json) -> TractoResult<Self> {
        Self::from_json(v)
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        w.begin();
        w.raw_field("dataset", |w| self.dataset.write_json(w));
        match &self.kind {
            JobKind::Estimate => w.str_field("job", "estimate"),
            JobKind::Track(t) => {
                w.str_field("job", "track");
                w.f64_field("step", t.step);
                w.f64_field("threshold", t.threshold);
                w.u64_field("max_steps", u64::from(t.max_steps));
            }
        }
        w.u64_field("burnin", u64::from(self.chain.burnin));
        w.u64_field("samples", u64::from(self.chain.samples));
        w.u64_field("interval", u64::from(self.chain.interval));
        w.u64_field("seed", self.seed);
        if let Some(ms) = self.deadline_ms {
            w.u64_field("deadline_ms", ms);
        }
        w.str_field("priority", self.priority.as_str());
        if let Some(n) = self.retry_budget {
            w.u64_field("retry_budget", u64::from(n));
        }
        w.str_field("cache", self.cache.as_str());
        // Post-v3 fields append after `cache` and only when non-default,
        // so default specs encode byte-identically to v3 output.
        if self.modality != Modality::Mcmc {
            w.str_field("modality", self.modality.as_str());
        }
        if let Some(pct) = self.stop_percentile {
            w.f64_field("stop_percentile", pct);
        }
        if self.tenant != DEFAULT_TENANT {
            w.str_field("tenant", &self.tenant);
        }
        w.end();
    }

    pub(crate) fn from_json(v: &Json) -> TractoResult<Self> {
        let dataset = DatasetSpec::from_json(
            v.get("dataset")
                .ok_or_else(|| TractoError::protocol("job spec missing `dataset`"))?,
        )?;
        let kind = match obj_str(v, "job")?.as_str() {
            "estimate" => JobKind::Estimate,
            "track" => JobKind::Track(TrackSpec {
                step: obj_f64(v, "step")?,
                threshold: obj_f64(v, "threshold")?,
                max_steps: obj_u32(v, "max_steps")?,
            }),
            other => {
                return Err(TractoError::protocol(format!(
                    "unknown job kind `{other}` (estimate|track)"
                )))
            }
        };
        Ok(JobSpec {
            dataset,
            kind,
            chain: ChainSpec {
                burnin: obj_u32(v, "burnin")?,
                samples: obj_u32(v, "samples")?,
                interval: obj_u32(v, "interval")?,
            },
            seed: obj_u64(v, "seed")?,
            deadline_ms: obj_opt_u64(v, "deadline_ms")?,
            priority: Priority::parse(&obj_str(v, "priority")?)?,
            retry_budget: obj_opt_u64(v, "retry_budget")?.map(|n| n as u32),
            cache: CachePolicy::parse(&obj_str(v, "cache")?)?,
            modality: match v.get("modality") {
                None | Some(Json::Null) => Modality::Mcmc,
                Some(j) => Modality::parse(j.as_str().ok_or_else(|| {
                    TractoError::protocol("job field `modality` is not a string")
                })?)?,
            },
            stop_percentile: obj_opt_f64(v, "stop_percentile")?,
            tenant: match v.get("tenant") {
                None | Some(Json::Null) => DEFAULT_TENANT.to_string(),
                Some(j) => j
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| TractoError::protocol("job field `tenant` is not a string"))?,
            },
        })
    }
}

/// The fleet placement key of a job: an FNV-1a hash over exactly the
/// inputs that determine its Step-1 sample-cache entry — the dataset
/// recipe's canonical form, the chain schedule, and the seed. Two specs
/// with equal placement keys resolve to the same cached MCMC samples on
/// whichever host ran either of them first, so a consistent-hash router
/// keyed on this value sends repeat work to the host whose cache is
/// already warm. Tracking knobs, deadlines, and priorities deliberately
/// do not participate: they change the job, not its cache residency.
pub fn placement_key(spec: &JobSpec) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix_bytes = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    mix_bytes(spec.dataset.canonical().as_bytes());
    mix_bytes(&spec.chain.burnin.to_le_bytes());
    mix_bytes(&spec.chain.samples.to_le_bytes());
    mix_bytes(&spec.chain.interval.to_le_bytes());
    mix_bytes(&spec.seed.to_le_bytes());
    h
}

/// FNV-1a digest of a raw byte blob: the content hash that names an
/// uploaded volume on the wire (16-hex form) and on disk. Stable across
/// platforms.
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// FNV-1a digest of a per-sample length table, the compact form of "these
/// two tracking runs are bit-identical". Stable across platforms.
pub fn lengths_digest(lengths: &[Vec<u32>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x1_0000_01b3);
    };
    mix(lengths.len() as u64);
    for row in lengths {
        mix(row.len() as u64);
        for &l in row {
            mix(u64::from(l));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &JobSpec) -> JobSpec {
        let mut w = JsonWriter::new();
        spec.write_json(&mut w);
        let text = w.finish();
        let v = tracto_trace::json::parse(&text).expect("valid JSON");
        JobSpec::from_json(&v).expect("decodes")
    }

    #[test]
    fn track_spec_round_trips() {
        let mut spec = JobSpec::track(DatasetSpec::new("crossing"));
        spec.chain = ChainSpec {
            burnin: 30,
            samples: 2,
            interval: 1,
        };
        spec.seed = 9;
        spec.deadline_ms = Some(1500);
        spec.priority = Priority::High;
        spec.retry_budget = Some(3);
        spec.cache = CachePolicy::Bypass;
        spec.dataset.snr = None;
        assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn estimate_spec_round_trips() {
        let spec = JobSpec::estimate(DatasetSpec::new("1"));
        assert_eq!(roundtrip(&spec), spec);
    }

    #[test]
    fn json_string_helpers_round_trip_on_one_line() {
        let mut spec = JobSpec::track(DatasetSpec::new("2"));
        spec.retry_budget = Some(1);
        let text = spec.to_json_string();
        assert!(!text.contains('\n'), "journal records must be one line");
        assert_eq!(JobSpec::from_json_str(&text).unwrap(), spec);
        assert!(JobSpec::from_json_str("{\"job\":12}").is_err());
    }

    #[test]
    fn priority_and_cache_parse_reject_unknown() {
        assert!(Priority::parse("urgent").is_err());
        assert!(CachePolicy::parse("write-back").is_err());
        assert_eq!(Priority::parse("high").unwrap(), Priority::High);
        assert_eq!(CachePolicy::parse("ro").unwrap(), CachePolicy::ReadOnly);
    }

    #[test]
    fn digest_separates_shapes() {
        let a = vec![vec![1, 2, 3], vec![4]];
        let b = vec![vec![1, 2], vec![3, 4]];
        let c = vec![vec![1, 2, 3], vec![4]];
        assert_ne!(lengths_digest(&a), lengths_digest(&b));
        assert_eq!(lengths_digest(&a), lengths_digest(&c));
        assert_ne!(lengths_digest(&a), lengths_digest(&[]));
    }

    #[test]
    fn uploaded_spec_round_trips_and_keys_by_hash() {
        let spec = JobSpec::track(DatasetSpec::uploaded("0123456789abcdef"));
        assert_eq!(roundtrip(&spec), spec);
        assert_eq!(spec.dataset.canonical(), "upload:0123456789abcdef");
        // A phantom recipe never emits the upload field.
        assert!(!JobSpec::track(DatasetSpec::new("single"))
            .to_json_string()
            .contains("upload"));
        // Kind and hash must agree.
        let mut bad = DatasetSpec::new("single");
        bad.upload = Some("0123456789abcdef".into());
        let text = JobSpec::track(bad).to_json_string();
        assert!(JobSpec::from_json_str(&text).is_err());
    }

    #[test]
    fn placement_key_follows_cache_identity() {
        let base = JobSpec::track(DatasetSpec::new("single"));
        // Equal cache inputs → equal key, even across job kinds and
        // scheduling envelopes.
        let mut estimate = JobSpec::estimate(DatasetSpec::new("single"));
        estimate.deadline_ms = Some(100);
        estimate.priority = Priority::High;
        assert_eq!(placement_key(&base), placement_key(&estimate));
        let mut other_step = base.clone();
        if let JobKind::Track(t) = &mut other_step.kind {
            t.max_steps = 999;
        }
        assert_eq!(placement_key(&base), placement_key(&other_step));
        // Any cache input change moves the key.
        let mut other_seed = base.clone();
        other_seed.seed = 43;
        assert_ne!(placement_key(&base), placement_key(&other_seed));
        let mut other_chain = base.clone();
        other_chain.chain.samples += 1;
        assert_ne!(placement_key(&base), placement_key(&other_chain));
        let mut other_ds = base.clone();
        other_ds.dataset.seed = 8;
        assert_ne!(placement_key(&base), placement_key(&other_ds));
    }

    #[test]
    fn modality_round_trips_and_defaults_stay_v3_compatible() {
        // Non-default modality and stop percentile survive the wire.
        let mut spec = JobSpec::track(DatasetSpec::new("single"));
        spec.modality = Modality::Analytic;
        spec.stop_percentile = Some(60.0);
        assert_eq!(roundtrip(&spec), spec);
        // Default specs never emit the new fields: a v3 peer sees the
        // exact bytes it always did, and a v3 frame (no modality key)
        // decodes to the default modality.
        let text = JobSpec::track(DatasetSpec::new("single")).to_json_string();
        assert!(!text.contains("modality"));
        assert!(!text.contains("stop_percentile"));
        let decoded = JobSpec::from_json_str(&text).unwrap();
        assert_eq!(decoded.modality, Modality::Mcmc);
        assert_eq!(decoded.stop_percentile, None);
        assert!(Modality::parse("deep-learned").is_err());
    }

    #[test]
    fn placement_key_ignores_modality() {
        // Modality changes the job, not its Step-1 cache residency, so it
        // must not move the placement key.
        let base = JobSpec::track(DatasetSpec::new("single"));
        let mut analytic = base.clone();
        analytic.modality = Modality::Analytic;
        analytic.stop_percentile = Some(50.0);
        assert_eq!(placement_key(&base), placement_key(&analytic));
    }

    #[test]
    fn tenant_round_trips_and_default_stays_v3_compatible() {
        // A named tenant survives the wire.
        let mut spec = JobSpec::track(DatasetSpec::new("single"));
        spec.tenant = "hospital-a".to_string();
        assert_eq!(roundtrip(&spec), spec);
        // The default tenant is never emitted: a v3 peer sees the exact
        // bytes it always did, and a v3 frame (no tenant key) decodes to
        // the default tenant.
        let text = JobSpec::track(DatasetSpec::new("single")).to_json_string();
        assert!(!text.contains("tenant"));
        let decoded = JobSpec::from_json_str(&text).unwrap();
        assert_eq!(decoded.tenant, DEFAULT_TENANT);
    }

    #[test]
    fn placement_key_ignores_tenant() {
        // Tenancy is a scheduling envelope, not a cache input: the same
        // work from two tenants must land on the same warm cache.
        let base = JobSpec::track(DatasetSpec::new("single"));
        let mut other = base.clone();
        other.tenant = "hospital-b".to_string();
        assert_eq!(placement_key(&base), placement_key(&other));
    }

    #[test]
    fn canonical_key_distinguishes_noise() {
        let mut a = DatasetSpec::new("single");
        let mut b = a.clone();
        b.snr = None;
        assert_ne!(a.canonical(), b.canonical());
        a.seed = 8;
        assert!(a.canonical().contains("single"));
    }
}
