//! Shared helpers for hand-rolled JSON encoding/decoding of wire messages.
//!
//! Encoding builds strings directly (reusing `tracto_trace::json::escape_into`
//! for string literals); decoding reads `tracto_trace::json::Json` trees.
//! Wire numbers are IEEE doubles, so integer fields are exact up to 2^53 —
//! fields that need the full `u64` range (digests) travel as hex strings.

use std::fmt::Write as _;
use tracto_trace::json::{escape_into, Json};
use tracto_trace::{TractoError, TractoResult};

/// Incremental writer for nested JSON objects. Tracks per-depth comma
/// state so callers only name fields.
pub(crate) struct JsonWriter {
    out: String,
    first: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> Self {
        JsonWriter {
            out: String::with_capacity(128),
            first: Vec::new(),
        }
    }

    /// Open an object (top-level, or the value of a pending `raw_field`).
    pub(crate) fn begin(&mut self) {
        self.out.push('{');
        self.first.push(true);
    }

    /// Close the innermost object.
    pub(crate) fn end(&mut self) {
        self.out.push('}');
        self.first.pop();
    }

    pub(crate) fn finish(self) -> String {
        debug_assert!(self.first.is_empty(), "unbalanced begin/end");
        self.out
    }

    fn key(&mut self, name: &str) {
        if let Some(first) = self.first.last_mut() {
            if !*first {
                self.out.push(',');
            }
            *first = false;
        }
        escape_into(&mut self.out, name);
        self.out.push(':');
    }

    pub(crate) fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        escape_into(&mut self.out, value);
    }

    pub(crate) fn u64_field(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.out, "{value}");
    }

    pub(crate) fn f64_field(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    pub(crate) fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
    }

    pub(crate) fn null_field(&mut self, name: &str) {
        self.key(name);
        self.out.push_str("null");
    }

    /// A field whose value is a nested object written by `f` (which must
    /// call `begin()`/`end()` itself).
    pub(crate) fn raw_field(&mut self, name: &str, f: impl FnOnce(&mut JsonWriter)) {
        self.key(name);
        f(self);
    }

    /// A field whose value is an array of `len` elements; `f` writes each
    /// element (a bare value via [`str_value`](Self::str_value) or an
    /// object via `begin()`/`end()`), and the writer inserts the commas.
    pub(crate) fn array_field(
        &mut self,
        name: &str,
        len: usize,
        mut f: impl FnMut(&mut JsonWriter, usize),
    ) {
        self.key(name);
        self.out.push('[');
        for i in 0..len {
            if i > 0 {
                self.out.push(',');
            }
            f(self, i);
        }
        self.out.push(']');
    }

    /// Append one bare string value (an [`array_field`](Self::array_field)
    /// element, not a keyed field).
    pub(crate) fn str_value(&mut self, value: &str) {
        escape_into(&mut self.out, value);
    }
}

fn field<'a>(v: &'a Json, key: &str) -> TractoResult<&'a Json> {
    v.get(key)
        .ok_or_else(|| TractoError::protocol(format!("message missing field `{key}`")))
}

pub(crate) fn obj_str(v: &Json, key: &str) -> TractoResult<String> {
    field(v, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| TractoError::protocol(format!("field `{key}` is not a string")))
}

pub(crate) fn obj_f64(v: &Json, key: &str) -> TractoResult<f64> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| TractoError::protocol(format!("field `{key}` is not a number")))
}

pub(crate) fn obj_u64(v: &Json, key: &str) -> TractoResult<u64> {
    let n = obj_f64(v, key)?;
    if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9.007_199_254_740_992e15 {
        Ok(n as u64)
    } else {
        Err(TractoError::protocol(format!(
            "field `{key}` is not a non-negative integer"
        )))
    }
}

pub(crate) fn obj_u32(v: &Json, key: &str) -> TractoResult<u32> {
    let n = obj_u64(v, key)?;
    u32::try_from(n)
        .map_err(|_| TractoError::protocol(format!("field `{key}` exceeds the u32 range")))
}

pub(crate) fn obj_bool(v: &Json, key: &str) -> TractoResult<bool> {
    match field(v, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(TractoError::protocol(format!(
            "field `{key}` is not a boolean"
        ))),
    }
}

/// `None` when the field is absent or `null`.
pub(crate) fn obj_opt_f64(v: &Json, key: &str) -> TractoResult<Option<f64>> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_f64()
            .map(Some)
            .ok_or_else(|| TractoError::protocol(format!("field `{key}` is not a number"))),
    }
}

/// `None` when the field is absent or `null`.
pub(crate) fn obj_opt_u64(v: &Json, key: &str) -> TractoResult<Option<u64>> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => obj_u64(v, key).map(Some),
    }
}

/// `None` when the field is absent or `null`.
pub(crate) fn obj_opt_str(v: &Json, key: &str) -> TractoResult<Option<String>> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| TractoError::protocol(format!("field `{key}` is not a string"))),
    }
}

/// The elements of an array-valued field.
pub(crate) fn obj_array<'a>(v: &'a Json, key: &str) -> TractoResult<&'a [Json]> {
    match field(v, key)? {
        Json::Array(items) => Ok(items),
        _ => Err(TractoError::protocol(format!(
            "field `{key}` is not an array"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::json::parse;
    use tracto_trace::ErrorKind;

    #[test]
    fn writer_produces_parseable_nesting() {
        let mut w = JsonWriter::new();
        w.begin();
        w.str_field("type", "hello \"quoted\"");
        w.u64_field("n", 42);
        w.raw_field("inner", |w| {
            w.begin();
            w.bool_field("flag", true);
            w.null_field("nothing");
            w.end();
        });
        w.f64_field("x", 2.5);
        w.end();
        let v = parse(&w.finish()).expect("valid JSON");
        assert_eq!(obj_str(&v, "type").unwrap(), "hello \"quoted\"");
        assert_eq!(obj_u64(&v, "n").unwrap(), 42);
        assert!(obj_bool(v.get("inner").unwrap(), "flag").unwrap());
        assert_eq!(
            obj_opt_f64(v.get("inner").unwrap(), "nothing").unwrap(),
            None
        );
        assert_eq!(obj_f64(&v, "x").unwrap(), 2.5);
    }

    #[test]
    fn accessors_return_protocol_errors() {
        let v = parse(r#"{"s":"x","n":-1,"f":2.5,"b":true}"#).unwrap();
        assert_eq!(
            obj_str(&v, "missing").unwrap_err().kind(),
            ErrorKind::Protocol
        );
        assert_eq!(obj_str(&v, "n").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(obj_u64(&v, "n").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(obj_u64(&v, "f").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(obj_u32(&v, "s").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(obj_bool(&v, "s").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(
            obj_opt_u64(&v, "f").unwrap_err().kind(),
            ErrorKind::Protocol
        );
        assert!(obj_bool(&v, "b").unwrap());
    }

    #[test]
    fn u32_range_is_enforced() {
        let v = parse(r#"{"big":4294967296}"#).unwrap();
        assert_eq!(obj_u32(&v, "big").unwrap_err().kind(), ErrorKind::Protocol);
        assert_eq!(obj_u64(&v, "big").unwrap(), 4_294_967_296);
    }
}
