//! Minimal standard-alphabet base64 (RFC 4648, with padding) for upload
//! chunk payloads. Frame payloads are UTF-8 JSON, so raw volume bytes must
//! travel as text; base64 costs 4/3 overhead, which the chunk-size cap
//! already accounts for.

use tracto_trace::{TractoError, TractoResult};

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard base64 with `=` padding.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

fn decode_sym(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some(u32::from(c - b'A')),
        b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decode standard base64. Rejects bad lengths, stray characters, and
/// misplaced padding with typed [protocol errors](TractoError::Protocol).
pub fn decode(text: &str) -> TractoResult<Vec<u8>> {
    let bytes = text.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(TractoError::protocol(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        )));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let last = i + 1 == bytes.len() / 4;
        let pad = quad.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) || (pad >= 1 && quad[3] != b'=') {
            return Err(TractoError::protocol("misplaced base64 padding"));
        }
        if pad == 2 && quad[2] != b'=' {
            return Err(TractoError::protocol("misplaced base64 padding"));
        }
        let mut triple: u32 = 0;
        for &c in &quad[..4 - pad] {
            triple = (triple << 6)
                | decode_sym(c).ok_or_else(|| {
                    TractoError::protocol(format!("invalid base64 character `{}`", c as char))
                })?;
        }
        triple <<= 6 * pad as u32;
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::ErrorKind;

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn round_trips_all_byte_values() {
        for len in 0..32 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
        let all: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&all)).unwrap(), all);
    }

    #[test]
    fn hostile_input_is_a_typed_error() {
        for bad in [
            "Zg=",
            "Z===",
            "Zg==Zg==",
            "=g==",
            "Z g=",
            "Zm9v!A==",
            "académie",
        ] {
            let err = decode(bad).expect_err(bad);
            assert_eq!(err.kind(), ErrorKind::Protocol, "{bad}");
        }
    }
}
