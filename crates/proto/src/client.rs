//! The remote client: a blocking connection that speaks the protocol and
//! exposes the same submit/status/cancel/await verbs as the in-process
//! service, plus the v2 extensions (event subscriptions and chunked
//! volume uploads) when the server negotiates v2.

use std::collections::VecDeque;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

use crate::b64;
use crate::endpoint::Endpoint;
use crate::frame::{write_frame, FrameBuf};
use crate::spec::{content_digest, JobSpec};
use crate::wire::{Event, FleetWire, JobState, MetricsWire, Request, Response};
use crate::{PROTOCOL_VERSION, PROTOCOL_VERSION_MIN};
use tracto_trace::{TractoError, TractoResult};

/// Raw bytes sent per `upload_chunk` (1 MiB — comfortably under
/// [`UPLOAD_CHUNK_MAX`](crate::UPLOAD_CHUNK_MAX) after base64 expansion).
const UPLOAD_CLIENT_CHUNK: usize = 1 << 20;

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected client. One request is in flight at a time (the protocol is
/// strict request/response), so methods take `&mut self`. Pushed
/// [`Event`]s may interleave with responses on a v2 connection; they are
/// buffered internally and drained by [`next_event`](Self::next_event).
pub struct RemoteService {
    stream: Stream,
    frames: FrameBuf,
    events: VecDeque<Event>,
    /// The negotiated protocol version from the handshake.
    pub server_version: u32,
    /// The server's identification string from the handshake.
    pub server_name: String,
    /// The server's fleet member name from the handshake, when it runs as
    /// a fleet member (`serve --member`).
    pub server_member: Option<String>,
}

/// Outcome of a [`RemoteService::ping`] liveness probe. Both variants mean
/// the peer is up and speaking the protocol; they differ in whether it
/// understands heartbeats.
#[derive(Debug, Clone, PartialEq)]
pub enum PingReply {
    /// The server answered `pong`; `member` is its fleet name (empty on a
    /// standalone server).
    Heartbeat {
        /// The fleet member name from the pong (possibly empty).
        member: String,
    },
    /// The server is alive but predates the `ping` verb (it answered with
    /// its in-band `unknown request type` protocol error) — a v1/v2 peer
    /// with no heartbeat support.
    NoHeartbeat,
}

impl RemoteService {
    /// Connect to `endpoint` and negotiate the protocol version. Offers
    /// [`PROTOCOL_VERSION`] and accepts whatever the server answers down
    /// to [`PROTOCOL_VERSION_MIN`]; a pre-negotiation (v1) server that
    /// *refuses* the offer with its version-mismatch error is retried
    /// once speaking v1, so old servers keep working — v2-only verbs then
    /// fail with a typed error instead.
    pub fn connect(endpoint: &Endpoint, client_name: &str) -> TractoResult<Self> {
        match Self::connect_with_version(endpoint, client_name, PROTOCOL_VERSION) {
            Ok(client) => Ok(client),
            Err(err) if is_version_refusal(&err) => {
                Self::connect_with_version(endpoint, client_name, PROTOCOL_VERSION_MIN)
            }
            Err(err) => Err(err),
        }
    }

    fn connect_with_version(
        endpoint: &Endpoint,
        client_name: &str,
        version: u32,
    ) -> TractoResult<Self> {
        let stream = match endpoint {
            Endpoint::Unix(path) => Stream::Unix(
                UnixStream::connect(path)
                    .map_err(|e| TractoError::io(format!("connect {}", path.display()), e))?,
            ),
            Endpoint::Tcp(addr) => Stream::Tcp(
                TcpStream::connect(addr)
                    .map_err(|e| TractoError::io(format!("connect tcp:{addr}"), e))?,
            ),
        };
        let mut client = RemoteService {
            stream,
            frames: FrameBuf::new(),
            events: VecDeque::new(),
            server_version: 0,
            server_name: String::new(),
            server_member: None,
        };
        let reply = client.call(&Request::Hello {
            version,
            client: client_name.to_string(),
        })?;
        match reply {
            Response::Hello {
                version: server,
                server: name,
                member,
            } => {
                if server < PROTOCOL_VERSION_MIN || server > version {
                    return Err(TractoError::protocol(format!(
                        "server negotiated protocol v{server}, client offered v{version}"
                    )));
                }
                client.server_version = server;
                client.server_name = name;
                client.server_member = member;
                Ok(client)
            }
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Connect like [`connect`](Self::connect), retrying transient
    /// transport failures with exponential backoff — the client-side half
    /// of crash recovery: a server being restarted (or still replaying its
    /// journal) refuses connections for a moment, and `submit`/`status`/
    /// `await` should ride that out rather than fail.
    ///
    /// Only [`Io`](tracto_trace::ErrorKind::Io) errors are retried; a
    /// protocol or version mismatch will not fix itself by waiting. After
    /// `retries` extra attempts the last error is returned unchanged, so
    /// exhaustion still reads as a typed Io error.
    ///
    /// Each sleep carries ±25 % jitter: when a host dies, its clients all
    /// observe the failure at the same instant, and without jitter their
    /// identical exponential schedules would hammer the takeover standby
    /// in synchronized waves.
    pub fn connect_with_retry(
        endpoint: &Endpoint,
        client_name: &str,
        retries: u32,
        backoff: std::time::Duration,
    ) -> TractoResult<Self> {
        let mut wait = backoff;
        let mut attempt = 0;
        let mut salt = jitter_seed();
        loop {
            match Self::connect(endpoint, client_name) {
                Ok(client) => return Ok(client),
                Err(err) if attempt < retries && err.kind() == tracto_trace::ErrorKind::Io => {
                    attempt += 1;
                    std::thread::sleep(jittered(wait, &mut salt));
                    wait = wait.saturating_mul(2);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Read raw bytes into the frame buffer and return the next decoded
    /// response, or `Ok(None)` on a clean close between frames.
    fn recv_response(&mut self) -> TractoResult<Option<Response>> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return Response::decode(&payload).map(Some);
            }
            let mut buf = [0u8; 8192];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return if self.frames.pending() == 0 {
                        Ok(None)
                    } else {
                        Err(TractoError::protocol("stream ended inside a frame"))
                    }
                }
                Ok(n) => self.frames.extend(&buf[..n]),
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(e) => return Err(TractoError::io("read frame", e)),
            }
        }
    }

    /// Send one request and read its response, buffering any pushed
    /// events that arrive in between. [`Response::Error`] is returned
    /// as-is so callers can inspect it; transport and decode failures are
    /// typed errors.
    pub fn call(&mut self, request: &Request) -> TractoResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        loop {
            match self.recv_response()? {
                Some(Response::Event(ev)) => self.events.push_back(ev),
                Some(response) => return Ok(response),
                None => {
                    return Err(TractoError::protocol(
                        "server closed the connection before responding",
                    ))
                }
            }
        }
    }

    /// Submit a job, returning its server-assigned id.
    pub fn submit(&mut self, spec: JobSpec) -> TractoResult<u64> {
        match self.call(&Request::Submit(Box::new(spec)))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected("submitted", &other)),
        }
    }

    /// Submit like [`submit`](Self::submit), backing off and retrying when
    /// the server sheds the job with a typed `capacity` error — the
    /// client-side half of load shedding. The server's rejection carries a
    /// `retry_after_ms=N` hint (its own estimate of when the backlog
    /// drains); when present that wait is honored instead of the local
    /// exponential schedule, jittered ±25 % so a shed burst does not
    /// return as a synchronized retry wave. Only `capacity` rejections are
    /// retried: anything else (including transport failures, which
    /// [`connect_with_retry`](Self::connect_with_retry) already covers at
    /// connect time) is returned unchanged.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        retries: u32,
        backoff: Duration,
    ) -> TractoResult<u64> {
        let mut wait = backoff;
        let mut attempt = 0;
        let mut salt = jitter_seed();
        loop {
            match self.submit(spec.clone()) {
                Ok(job) => return Ok(job),
                Err(err)
                    if attempt < retries && err.kind() == tracto_trace::ErrorKind::Capacity =>
                {
                    attempt += 1;
                    let hinted = capacity_retry_after(&err).unwrap_or(wait);
                    std::thread::sleep(jittered(hinted, &mut salt));
                    wait = wait.saturating_mul(2);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Poll a job's state without blocking.
    pub fn status(&mut self, job: u64) -> TractoResult<JobState> {
        match self.call(&Request::Status { job })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Block until the job finishes (or `timeout_ms` elapses) and return
    /// its state — [`JobState::Pending`] means the timeout hit.
    ///
    /// On a v2 connection this subscribes to the job and waits for its
    /// pushed terminal event — no request sits parked on a server thread
    /// and no poll loop runs anywhere. Against a v1 server it falls back
    /// to the blocking `await` request.
    pub fn await_job(&mut self, job: u64, timeout_ms: Option<u64>) -> TractoResult<JobState> {
        if self.server_version < 2 {
            return match self.call(&Request::Await { job, timeout_ms })? {
                Response::Status { state, .. } => Ok(state),
                other => Err(unexpected("status", &other)),
            };
        }
        self.subscribe(Some(job))?;
        let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        loop {
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(JobState::Pending);
                    }
                    Some(left)
                }
            };
            match self.next_event(remaining)? {
                Some(ev) if ev.job == job && ev.is_terminal() => return Ok(ev.state),
                Some(_) => {}
                None => return Ok(JobState::Pending),
            }
        }
    }

    /// Request cancellation; `true` means the cancel won the race.
    pub fn cancel(&mut self, job: u64) -> TractoResult<bool> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { cancelled, .. } => Ok(cancelled),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    /// Fetch a metrics snapshot.
    pub fn metrics(&mut self) -> TractoResult<MetricsWire> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Block until the server has no jobs in flight.
    pub fn drain(&mut self) -> TractoResult<()> {
        match self.call(&Request::Drain)? {
            Response::Drained => Ok(()),
            other => Err(unexpected("drained", &other)),
        }
    }

    /// Ask the serving process to drain and exit.
    pub fn shutdown(&mut self) -> TractoResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }

    /// Liveness probe. Distinguishes a server that answers `pong` (with
    /// its fleet member name) from an older one that is alive but has no
    /// heartbeat support — see [`PingReply`]. Transport failures stay
    /// typed Io errors, so callers can tell "down" from "old".
    pub fn ping(&mut self) -> TractoResult<PingReply> {
        match self.call(&Request::Ping)? {
            Response::Pong { member } => Ok(PingReply::Heartbeat { member }),
            Response::Error { kind, message }
                if kind == "protocol" && message.contains("unknown request type") =>
            {
                Ok(PingReply::NoHeartbeat)
            }
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Stream replicated journal records to this host (the standby side
    /// of fleet replication). Returns the next sequence number the
    /// replica expects; a `next` below `first_seq + records.len()` means
    /// the replica detected a gap and the caller must re-sync with
    /// `reset`.
    pub fn replicate(
        &mut self,
        source: &str,
        first_seq: u64,
        reset: bool,
        records: Vec<String>,
    ) -> TractoResult<u64> {
        match self.call(&Request::Replicate {
            source: source.to_string(),
            first_seq,
            reset,
            records,
        })? {
            Response::ReplAck { next } => Ok(next),
            other => Err(unexpected("repl_ack", &other)),
        }
    }

    /// Tell this host to adopt the replicated journal of dead member
    /// `source`: replay it and re-enqueue its unfinished jobs. Returns
    /// `(original_id, adopted_id)` pairs.
    pub fn takeover(&mut self, source: &str) -> TractoResult<Vec<(u64, u64)>> {
        match self.call(&Request::Takeover {
            source: source.to_string(),
        })? {
            Response::TookOver { jobs } => Ok(jobs),
            other => Err(unexpected("took_over", &other)),
        }
    }

    /// Fetch the fleet topology snapshot from a coordinator.
    pub fn fleet_status(&mut self) -> TractoResult<FleetWire> {
        match self.call(&Request::FleetStatus)? {
            Response::Fleet(fleet) => Ok(*fleet),
            other => Err(unexpected("fleet", &other)),
        }
    }

    /// Ask a coordinator which member `spec` routes to, without
    /// submitting it.
    pub fn route(&mut self, spec: JobSpec) -> TractoResult<String> {
        match self.call(&Request::Route(Box::new(spec)))? {
            Response::Routed { member } => Ok(member),
            other => Err(unexpected("routed", &other)),
        }
    }

    fn require_v2(&self, what: &str) -> TractoResult<()> {
        if self.server_version >= 2 {
            Ok(())
        } else {
            Err(TractoError::protocol(format!(
                "{what} requires protocol v2; server `{}` speaks v{}",
                self.server_name, self.server_version
            )))
        }
    }

    /// Subscribe this connection to pushed job events: one job's, or all
    /// jobs' when `job` is `None` (v2 only). Subscribing to a job that is
    /// already terminal pushes its terminal event immediately.
    pub fn subscribe(&mut self, job: Option<u64>) -> TractoResult<()> {
        self.require_v2("subscribe")?;
        match self.call(&Request::Subscribe { job })? {
            Response::Subscribed { .. } => Ok(()),
            other => Err(unexpected("subscribed", &other)),
        }
    }

    /// Return the next pushed event: a buffered one if any, otherwise
    /// block reading the stream up to `timeout` (`None` waits
    /// indefinitely). `Ok(None)` means the timeout elapsed.
    pub fn next_event(&mut self, timeout: Option<Duration>) -> TractoResult<Option<Event>> {
        let result = self.next_event_inner(timeout);
        // Leave the stream blocking for subsequent request/response calls.
        let _ = self.stream.set_read_timeout(None);
        result
    }

    fn next_event_inner(&mut self, timeout: Option<Duration>) -> TractoResult<Option<Event>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(ev) = self.events.pop_front() {
                return Ok(Some(ev));
            }
            if let Some(payload) = self.frames.next_frame()? {
                match Response::decode(&payload)? {
                    Response::Event(ev) => return Ok(Some(ev)),
                    other => {
                        return Err(TractoError::protocol(format!(
                            "unsolicited response while waiting for events: {other:?}"
                        )))
                    }
                }
            }
            let remaining = match deadline {
                None => None,
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Ok(None);
                    }
                    Some(left)
                }
            };
            self.stream
                .set_read_timeout(remaining)
                .map_err(|e| TractoError::io("set read timeout", e))?;
            let mut buf = [0u8; 8192];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(TractoError::protocol(
                        "server closed the connection while streaming events",
                    ))
                }
                Ok(n) => self.frames.extend(&buf[..n]),
                Err(e) if e.kind() == IoKind::Interrupted => {}
                Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {
                    return Ok(None)
                }
                Err(e) => return Err(TractoError::io("read event", e)),
            }
        }
    }

    /// Upload a volume blob in chunks (v2 only), returning its 16-hex
    /// content hash for use in
    /// [`DatasetSpec::uploaded`](crate::DatasetSpec::uploaded). Resumes
    /// from the server's staged offset and skips entirely when the server
    /// already holds the committed blob.
    pub fn upload(&mut self, bytes: &[u8]) -> TractoResult<String> {
        self.require_v2("upload")?;
        let hash = format!("{:016x}", content_digest(bytes));
        let offset = match self.call(&Request::UploadBegin {
            hash: hash.clone(),
            len: bytes.len() as u64,
        })? {
            Response::UploadReady { complete: true, .. } => return Ok(hash),
            Response::UploadReady { offset, .. } => offset as usize,
            other => return Err(unexpected("upload_ready", &other)),
        };
        let mut sent = offset.min(bytes.len());
        while sent < bytes.len() {
            let end = (sent + UPLOAD_CLIENT_CHUNK).min(bytes.len());
            match self.call(&Request::UploadChunk {
                hash: hash.clone(),
                offset: sent as u64,
                data: b64::encode(&bytes[sent..end]),
            })? {
                Response::UploadAck { received } => sent = received as usize,
                other => return Err(unexpected("upload_ack", &other)),
            }
        }
        match self.call(&Request::UploadCommit { hash: hash.clone() })? {
            Response::UploadDone { .. } => Ok(hash),
            other => Err(unexpected("upload_done", &other)),
        }
    }
}

/// A per-process-and-thread seed for backoff jitter. No RNG crate in the
/// workspace, so mix wall-clock nanos with the pid — distinct clients
/// land on distinct streams, which is all de-synchronization needs.
fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    (u64::from(nanos) << 20 | u64::from(std::process::id())).max(1)
}

/// Scale `wait` by a factor drawn uniformly from `[0.75, 1.25)`, advancing
/// `salt` as an xorshift state.
fn jittered(wait: Duration, salt: &mut u64) -> Duration {
    *salt ^= *salt << 13;
    *salt ^= *salt >> 7;
    *salt ^= *salt << 17;
    let unit = (*salt >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    wait.mul_f64(0.75 + 0.5 * unit)
}

/// Whether `err` is a v1 server's refusal of a newer `hello` — the signal
/// to reconnect speaking v1.
fn is_version_refusal(err: &TractoError) -> bool {
    err.kind() == tracto_trace::ErrorKind::Protocol && {
        let text = err.to_string();
        text.contains("version") && text.contains("mismatch")
    }
}

/// Map a reply that wasn't the expected variant to a typed error. Server
/// [`Response::Error`]s are re-typed where the kind survives the wire
/// (`cancelled`, `deadline`, `config`, `capacity`); anything else is a
/// protocol error.
fn unexpected(wanted: &str, got: &Response) -> TractoError {
    match got {
        Response::Error { kind, message } => match kind.as_str() {
            "cancelled" => TractoError::Cancelled,
            "deadline" => TractoError::Deadline,
            "config" => TractoError::config(message.clone()),
            "capacity" => parse_capacity(message),
            _ => TractoError::protocol(format!("server error ({kind}): {message}")),
        },
        other => TractoError::protocol(format!("expected a `{wanted}` response, got {other:?}")),
    }
}

/// Re-type a server `capacity` rejection into [`TractoError::Capacity`],
/// recovering `required`/`available` when the message is the standard
/// Display form (`{resource} exhausted: {required} required, {available}
/// available`). A message in any other shape keeps its full text as the
/// resource — the kind is what retry logic dispatches on.
fn parse_capacity(message: &str) -> TractoError {
    if let Some((resource, rest)) = message.split_once(" exhausted: ") {
        let fields: Vec<&str> = rest.split(&[' ', ','][..]).collect();
        if let [req, "required", "", avail, "available"] = fields[..] {
            if let (Ok(required), Ok(available)) = (req.parse(), avail.parse()) {
                return TractoError::capacity(resource, required, available);
            }
        }
    }
    TractoError::Capacity {
        resource: message.to_string(),
        required: 0,
        available: 0,
    }
}

/// Extract the server's `retry_after_ms=N` hint from a capacity
/// rejection, if it sent one.
pub fn capacity_retry_after(err: &TractoError) -> Option<Duration> {
    let text = err.to_string();
    let start = text.find("retry_after_ms=")? + "retry_after_ms=".len();
    let digits: String = text[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse::<u64>().ok().map(Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};
    use tracto_trace::ErrorKind;

    #[test]
    fn connect_with_retry_exhaustion_is_a_typed_io_error_after_backoff() {
        let endpoint = Endpoint::Unix("/nonexistent/tracto-retry-test.sock".into());
        let start = Instant::now();
        let err = RemoteService::connect_with_retry(&endpoint, "t", 2, Duration::from_millis(5))
            .err()
            .expect("nothing listens there");
        assert_eq!(err.kind(), ErrorKind::Io, "exhaustion keeps the Io type");
        // Two retries back off 5 ms then 10 ms nominal; with ±25 % jitter
        // the worst-case minimum is 0.75 × 15 ms.
        assert!(
            start.elapsed() >= Duration::from_millis(11),
            "retries must actually wait"
        );
    }

    #[test]
    fn jitter_stays_within_a_quarter_band() {
        let base = Duration::from_millis(100);
        let mut salt = jitter_seed();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..256 {
            let j = jittered(base, &mut salt);
            assert!(
                j >= Duration::from_millis(75) && j < Duration::from_millis(125),
                "jittered value {j:?} outside ±25% of {base:?}"
            );
            distinct.insert(j.as_nanos());
        }
        assert!(distinct.len() > 200, "jitter must actually vary per sleep");
    }

    #[test]
    fn ping_reply_distinguishes_old_servers() {
        // The client-side half of the "v1, no heartbeat" contract: the
        // in-band error an old server sends for an unknown verb is a
        // liveness signal, not a failure.
        let old = Response::Error {
            kind: "protocol".into(),
            message: "unknown request type `ping`".into(),
        };
        match old {
            Response::Error { kind, message }
                if kind == "protocol" && message.contains("unknown request type") => {}
            other => panic!("wording drifted: {other:?}"),
        }
    }

    #[test]
    fn connect_with_zero_retries_fails_fast() {
        let endpoint = Endpoint::Unix("/nonexistent/tracto-retry-test.sock".into());
        let start = Instant::now();
        let err = RemoteService::connect_with_retry(&endpoint, "t", 0, Duration::from_secs(30))
            .err()
            .expect("nothing listens there");
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "zero retries must not sleep"
        );
    }

    #[test]
    fn capacity_rejections_re_type_and_carry_the_retry_hint() {
        // The exact shape a shedding server sends: error_kind maps the
        // Capacity cause to kind `capacity` and message is its Display.
        let server_side = TractoError::capacity("admission backlog (retry_after_ms=250)", 900, 400);
        let err = unexpected(
            "submitted",
            &Response::Error {
                kind: "capacity".into(),
                message: server_side.to_string(),
            },
        );
        assert_eq!(err.kind(), ErrorKind::Capacity);
        assert_eq!(err.to_string(), server_side.to_string());
        assert_eq!(
            capacity_retry_after(&err),
            Some(Duration::from_millis(250)),
            "the retry-after hint survives the wire"
        );
        // A capacity message in a non-standard shape keeps its kind (what
        // retry dispatches on) even though the fields cannot be recovered.
        let odd = unexpected(
            "submitted",
            &Response::Error {
                kind: "capacity".into(),
                message: "try later".into(),
            },
        );
        assert_eq!(odd.kind(), ErrorKind::Capacity);
        assert_eq!(capacity_retry_after(&odd), None);
        // Non-capacity errors never produce a hint.
        assert_eq!(capacity_retry_after(&TractoError::Deadline), None);
    }

    #[test]
    fn version_refusal_detection_matches_the_v1_server_wording() {
        // The exact phrasing a v1 server sends back for a v2 hello.
        let refusal = unexpected(
            "hello",
            &Response::Error {
                kind: "protocol".into(),
                message: "protocol version mismatch: server speaks 1, client sent 2".into(),
            },
        );
        assert!(is_version_refusal(&refusal));
        let other = TractoError::protocol("server closed the connection before responding");
        assert!(!is_version_refusal(&other));
        let io = TractoError::io(
            "connect",
            std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no"),
        );
        assert!(!is_version_refusal(&io));
    }
}
