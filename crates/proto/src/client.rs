//! The remote client: a blocking connection that speaks the protocol and
//! exposes the same submit/status/cancel/await verbs as the in-process
//! service.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use crate::endpoint::Endpoint;
use crate::frame::{read_frame, write_frame};
use crate::spec::JobSpec;
use crate::wire::{JobState, MetricsWire, Request, Response};
use crate::PROTOCOL_VERSION;
use tracto_trace::{TractoError, TractoResult};

enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected client. One request is in flight at a time (the protocol is
/// strict request/response), so methods take `&mut self`.
pub struct RemoteService {
    stream: Stream,
    /// The server's protocol version from the handshake.
    pub server_version: u32,
    /// The server's identification string from the handshake.
    pub server_name: String,
}

impl RemoteService {
    /// Connect to `endpoint` and perform the `hello` handshake. Fails with
    /// a typed [protocol error](TractoError::Protocol) on a version
    /// mismatch.
    pub fn connect(endpoint: &Endpoint, client_name: &str) -> TractoResult<Self> {
        let stream = match endpoint {
            Endpoint::Unix(path) => Stream::Unix(
                UnixStream::connect(path)
                    .map_err(|e| TractoError::io(format!("connect {}", path.display()), e))?,
            ),
            Endpoint::Tcp(addr) => Stream::Tcp(
                TcpStream::connect(addr)
                    .map_err(|e| TractoError::io(format!("connect tcp:{addr}"), e))?,
            ),
        };
        let mut client = RemoteService {
            stream,
            server_version: 0,
            server_name: String::new(),
        };
        let reply = client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: client_name.to_string(),
        })?;
        match reply {
            Response::Hello { version, server } => {
                if version != PROTOCOL_VERSION {
                    return Err(TractoError::protocol(format!(
                        "server speaks protocol v{version}, client speaks v{PROTOCOL_VERSION}"
                    )));
                }
                client.server_version = version;
                client.server_name = server;
                Ok(client)
            }
            other => Err(unexpected("hello", &other)),
        }
    }

    /// Connect like [`connect`](Self::connect), retrying transient
    /// transport failures with exponential backoff — the client-side half
    /// of crash recovery: a server being restarted (or still replaying its
    /// journal) refuses connections for a moment, and `submit`/`status`/
    /// `await` should ride that out rather than fail.
    ///
    /// Only [`Io`](tracto_trace::ErrorKind::Io) errors are retried; a
    /// protocol or version mismatch will not fix itself by waiting. After
    /// `retries` extra attempts the last error is returned unchanged, so
    /// exhaustion still reads as a typed Io error.
    pub fn connect_with_retry(
        endpoint: &Endpoint,
        client_name: &str,
        retries: u32,
        backoff: std::time::Duration,
    ) -> TractoResult<Self> {
        let mut wait = backoff;
        let mut attempt = 0;
        loop {
            match Self::connect(endpoint, client_name) {
                Ok(client) => return Ok(client),
                Err(err) if attempt < retries && err.kind() == tracto_trace::ErrorKind::Io => {
                    attempt += 1;
                    std::thread::sleep(wait);
                    wait = wait.saturating_mul(2);
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Send one request and read its response. [`Response::Error`] is
    /// returned as-is so callers can inspect it; transport and decode
    /// failures are typed errors.
    pub fn call(&mut self, request: &Request) -> TractoResult<Response> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            None => Err(TractoError::protocol(
                "server closed the connection before responding",
            )),
        }
    }

    /// Submit a job, returning its server-assigned id.
    pub fn submit(&mut self, spec: JobSpec) -> TractoResult<u64> {
        match self.call(&Request::Submit(Box::new(spec)))? {
            Response::Submitted { job } => Ok(job),
            other => Err(unexpected("submitted", &other)),
        }
    }

    /// Poll a job's state without blocking.
    pub fn status(&mut self, job: u64) -> TractoResult<JobState> {
        match self.call(&Request::Status { job })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Block until the job finishes (or `timeout_ms` elapses server-side)
    /// and return its state — [`JobState::Pending`] means the timeout hit.
    pub fn await_job(&mut self, job: u64, timeout_ms: Option<u64>) -> TractoResult<JobState> {
        match self.call(&Request::Await { job, timeout_ms })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Request cancellation; `true` means the cancel won the race.
    pub fn cancel(&mut self, job: u64) -> TractoResult<bool> {
        match self.call(&Request::Cancel { job })? {
            Response::Cancelled { cancelled, .. } => Ok(cancelled),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    /// Fetch a metrics snapshot.
    pub fn metrics(&mut self) -> TractoResult<MetricsWire> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(*m),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Block until the server has no jobs in flight.
    pub fn drain(&mut self) -> TractoResult<()> {
        match self.call(&Request::Drain)? {
            Response::Drained => Ok(()),
            other => Err(unexpected("drained", &other)),
        }
    }

    /// Ask the serving process to drain and exit.
    pub fn shutdown(&mut self) -> TractoResult<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

/// Map a reply that wasn't the expected variant to a typed error. Server
/// [`Response::Error`]s are re-typed where the kind survives the wire
/// (`cancelled`, `deadline`, `config`); anything else is a protocol error.
fn unexpected(wanted: &str, got: &Response) -> TractoError {
    match got {
        Response::Error { kind, message } => match kind.as_str() {
            "cancelled" => TractoError::Cancelled,
            "deadline" => TractoError::Deadline,
            "config" => TractoError::config(message.clone()),
            _ => TractoError::protocol(format!("server error ({kind}): {message}")),
        },
        other => TractoError::protocol(format!("expected a `{wanted}` response, got {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};
    use tracto_trace::ErrorKind;

    #[test]
    fn connect_with_retry_exhaustion_is_a_typed_io_error_after_backoff() {
        let endpoint = Endpoint::Unix("/nonexistent/tracto-retry-test.sock".into());
        let start = Instant::now();
        let err = RemoteService::connect_with_retry(&endpoint, "t", 2, Duration::from_millis(5))
            .err()
            .expect("nothing listens there");
        assert_eq!(err.kind(), ErrorKind::Io, "exhaustion keeps the Io type");
        // Two retries back off 5 ms then 10 ms before giving up.
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "retries must actually wait"
        );
    }

    #[test]
    fn connect_with_zero_retries_fails_fast() {
        let endpoint = Endpoint::Unix("/nonexistent/tracto-retry-test.sock".into());
        let start = Instant::now();
        let err = RemoteService::connect_with_retry(&endpoint, "t", 0, Duration::from_secs(30))
            .err()
            .expect("nothing listens there");
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "zero retries must not sleep"
        );
    }
}
