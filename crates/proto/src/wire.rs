//! Protocol messages: the JSON payloads carried inside frames.
//!
//! Every message is an object with a `"type"` tag. The first message on a
//! connection must be `hello` in each direction; after a successful
//! handshake any request may follow. A request the server cannot decode is
//! answered with an `error` response — frame boundaries stay intact, so
//! the connection survives; only *framing* violations tear it down.

use crate::json_util::{
    obj_array, obj_bool, obj_opt_str, obj_opt_u64, obj_str, obj_u32, obj_u64, JsonWriter,
};
use crate::spec::JobSpec;
use tracto_trace::json::{parse, Json};
use tracto_trace::{TractoError, TractoResult};

/// Upper bound on the *raw* byte length of one `upload_chunk` payload
/// (4 MiB). Base64 expansion keeps the encoded frame well under
/// [`MAX_FRAME_BYTES`](crate::MAX_FRAME_BYTES); a server refuses larger
/// chunks before decoding them.
pub const UPLOAD_CHUNK_MAX: u64 = 4 << 20;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake; must be the first request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
        version: u32,
        /// Free-form client identification, for trace spans.
        client: String,
    },
    /// Submit a job; answered with [`Response::Submitted`].
    Submit(Box<JobSpec>),
    /// Poll a job's state without blocking.
    Status {
        /// Server-assigned job id from [`Response::Submitted`].
        job: u64,
    },
    /// Request cancellation; answered with [`Response::Cancelled`].
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Block until the job finishes (or `timeout_ms` elapses), then answer
    /// with its [`Response::Status`].
    Await {
        /// Job id.
        job: u64,
        /// Give up waiting after this long; `None` waits indefinitely.
        timeout_ms: Option<u64>,
    },
    /// Fetch a service metrics snapshot.
    Metrics,
    /// Block until all in-flight jobs finish.
    Drain,
    /// Ask the serving process to drain and exit.
    Shutdown,
    /// (v2) Subscribe this connection to pushed [`Response::Event`]s:
    /// every job's lifecycle transitions, or one job's. Answered with
    /// [`Response::Subscribed`]; if the named job is already terminal its
    /// terminal event is pushed immediately after, so subscribing after
    /// `submit` can never miss the end of a fast job.
    Subscribe {
        /// Restrict the subscription to one job id; `None` streams all.
        job: Option<u64>,
    },
    /// (v2) Open (or resume) a chunked volume upload. Answered with
    /// [`Response::UploadReady`] carrying the offset to continue from.
    UploadBegin {
        /// FNV-1a content hash of the complete blob, 16 hex digits.
        hash: String,
        /// Total blob length in bytes.
        len: u64,
    },
    /// (v2) Append one chunk to an open upload; answered with
    /// [`Response::UploadAck`].
    UploadChunk {
        /// Hash from [`Request::UploadBegin`].
        hash: String,
        /// Byte offset of this chunk (must equal the staged length).
        offset: u64,
        /// Base64-encoded chunk bytes, at most [`UPLOAD_CHUNK_MAX`] raw.
        data: String,
    },
    /// (v2) Verify the staged bytes against the declared hash and publish
    /// the blob for job submission; answered with
    /// [`Response::UploadDone`].
    UploadCommit {
        /// Hash from [`Request::UploadBegin`].
        hash: String,
    },
    /// (v3) Liveness probe; answered with [`Response::Pong`]. Not
    /// version-gated: a pre-v3 server answers with an in-band
    /// `unknown request type` protocol error, which is itself a liveness
    /// signal — the peer is up but has no heartbeat support.
    Ping,
    /// (v3) Append replicated job-journal records to this host's replica
    /// of `source`'s journal; answered with [`Response::ReplAck`].
    /// Records are raw journal lines streamed in order: `first_seq` names
    /// the sequence number of `records[0]`, and a gap (a `first_seq`
    /// beyond the replica's length) is refused so the source re-syncs.
    Replicate {
        /// The replicating member's name (one replica file per source).
        source: String,
        /// Sequence number (0-based replica line index) of `records[0]`.
        first_seq: u64,
        /// Discard any existing replica of `source` first — sent on
        /// (re)connect so the stream always starts from a known prefix.
        reset: bool,
        /// Raw journal lines, in append order.
        records: Vec<String>,
    },
    /// (v3) Declare `source` dead: replay its replicated journal and
    /// re-enqueue its unfinished jobs on this host; answered with
    /// [`Response::TookOver`].
    Takeover {
        /// The dead member whose replica to adopt.
        source: String,
    },
    /// (v3) Fleet topology snapshot (answered by a coordinator); answered
    /// with [`Response::Fleet`].
    FleetStatus,
    /// (v3) Ask a coordinator which member the spec's placement hash
    /// routes to, without submitting; answered with [`Response::Routed`].
    Route(Box<JobSpec>),
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement.
    Hello {
        /// The server's [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
        version: u32,
        /// Free-form server identification.
        server: String,
        /// (v3) The server's fleet member name, when it runs with one
        /// (`serve --member`). Absent on the wire before v3 and on
        /// standalone servers; decoding tolerates both.
        member: Option<String>,
    },
    /// The job was accepted and assigned an id.
    Submitted {
        /// Id for subsequent `status`/`cancel`/`await` requests.
        job: u64,
    },
    /// A job's current (or, for `await`, final) state.
    Status {
        /// Job id.
        job: u64,
        /// The state.
        state: JobState,
    },
    /// Cancellation outcome.
    Cancelled {
        /// Job id.
        job: u64,
        /// `true` if the cancel arrived in time to stop fulfilment.
        cancelled: bool,
    },
    /// A metrics snapshot.
    Metrics(Box<MetricsWire>),
    /// All in-flight jobs have finished.
    Drained,
    /// The server accepted a shutdown request and is draining.
    ShuttingDown,
    /// The request failed; `kind` matches
    /// [`ErrorKind`](tracto_trace::ErrorKind) display names.
    Error {
        /// Error discriminant name (`protocol`, `config`, ...).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// (v2) The subscription is active.
    Subscribed {
        /// The job filter that was installed (`None` = all jobs).
        job: Option<u64>,
    },
    /// (v2) A pushed job-lifecycle event. Unlike every other response this
    /// one is *unsolicited*: it may arrive between a request and its
    /// response, and clients must buffer it (see
    /// [`RemoteService::next_event`](crate::RemoteService::next_event)).
    Event(Event),
    /// (v2) Upload opened; continue from `offset` (`complete` means the
    /// blob was already committed under this hash — nothing to send).
    UploadReady {
        /// Bytes already staged (or the full length when `complete`).
        offset: u64,
        /// The hash is already committed; skip straight to submission.
        complete: bool,
    },
    /// (v2) Chunk accepted.
    UploadAck {
        /// Total bytes staged after this chunk.
        received: u64,
    },
    /// (v2) Upload verified and committed.
    UploadDone {
        /// The committed content hash.
        hash: String,
        /// Total blob length.
        bytes: u64,
    },
    /// (v3) Liveness probe answer.
    Pong {
        /// The answering host's fleet member name (empty when it has
        /// none).
        member: String,
    },
    /// (v3) Replicated records were durably appended.
    ReplAck {
        /// The next sequence number the replica expects (replica length).
        next: u64,
    },
    /// (v3) Takeover finished: the replica was replayed and its
    /// unfinished jobs re-enqueued on the answering host.
    TookOver {
        /// `(original_id, adopted_id)` pairs for every re-enqueued job;
        /// the coordinator uses them to remap live bindings.
        jobs: Vec<(u64, u64)>,
    },
    /// (v3) Fleet topology snapshot.
    Fleet(Box<FleetWire>),
    /// (v3) Where a spec's placement hash routes.
    Routed {
        /// The member name the consistent hash selects.
        member: String,
    },
}

/// One fleet member as reported by `fleet_status`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberWire {
    /// The member's name.
    pub name: String,
    /// The endpoint the coordinator dials it on.
    pub endpoint: String,
    /// Whether the heartbeat monitor currently considers it alive.
    pub alive: bool,
    /// Jobs the coordinator has routed to it.
    pub jobs_routed: u64,
    /// Consecutive heartbeat misses (resets on a successful ping).
    pub heartbeat_misses: u64,
}

/// The fleet topology snapshot carried by [`Response::Fleet`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetWire {
    /// Members in hash-ring order of registration.
    pub members: Vec<MemberWire>,
    /// Completed takeovers since the coordinator started.
    pub takeovers: u64,
    /// Total jobs routed since the coordinator started.
    pub jobs_routed: u64,
}

impl std::fmt::Display for FleetWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet: {} member(s), {} job(s) routed, {} takeover(s)",
            self.members.len(),
            self.jobs_routed,
            self.takeovers
        )?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "  {} @ {} — {}, {} job(s), {} missed heartbeat(s)",
                m.name,
                m.endpoint,
                if m.alive { "alive" } else { "dead" },
                m.jobs_routed,
                m.heartbeat_misses
            )?;
        }
        Ok(())
    }
}

/// A pushed job-lifecycle transition (protocol v2). `kind` is one of
/// `admitted` | `checkpointed` | `completed` | `cancelled` | `failed`; the
/// last three are terminal and carry the job's final [`JobState`], so a
/// subscriber needs no follow-up `status` poll.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Server-side push sequence number (per connection, monotonic).
    pub seq: u64,
    /// The job this transition belongs to.
    pub job: u64,
    /// Transition name.
    pub kind: String,
    /// The job's state as of this transition (`Pending` for non-terminal
    /// kinds).
    pub state: JobState,
}

impl Event {
    /// Whether this transition ended the job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(self.kind.as_str(), "completed" | "cancelled" | "failed")
    }
}

/// A job's lifecycle state as reported on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Queued or running.
    Pending,
    /// Finished successfully.
    Done(Outcome),
    /// Finished with an error.
    Failed {
        /// Error discriminant name.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

/// What a finished job produced. Tracking results travel as a summary plus
/// an FNV-1a digest of the full per-sample length table
/// ([`lengths_digest`](crate::lengths_digest)), which is how two runs are
/// compared bit-for-bit without shipping every streamline.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// An estimation job's result.
    Estimate {
        /// Voxels estimated.
        voxels: u64,
        /// Whether the samples came from the cache.
        cache_hit: bool,
    },
    /// A tracking job's result.
    Track {
        /// Total tracking steps across all lanes.
        total_steps: u64,
        /// Streamlines produced.
        streamlines: u64,
        /// FNV-1a digest of `lengths_by_sample`.
        lengths_digest: u64,
        /// Whether estimation was served from the cache.
        cache_hit: bool,
        /// Jobs sharing the batch that tracked this one.
        batch_jobs: u64,
        /// Lanes in that batch.
        batch_lanes: u64,
    },
}

/// A flattened service metrics snapshot (the wire form of serve's
/// `MetricsSnapshot`).
#[derive(Debug, Clone, PartialEq, Default)]
#[allow(missing_docs)] // field names mirror serve::MetricsSnapshot
pub struct MetricsWire {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub deadline_exceeded: u64,
    pub in_flight: u64,
    pub batches: u64,
    pub batch_jobs: u64,
    pub mean_batch_occupancy: f64,
    pub lanes_tracked: u64,
    pub launches: u64,
    pub mean_wavefront_utilization: f64,
    pub estimations_run: u64,
    pub faults_injected: u64,
    pub device_retries: u64,
    pub job_retries: u64,
    pub failovers: u64,
    pub devices_alive: u64,
    pub devices_total: u64,
    pub tracking_sim_s: f64,
    pub overlap_saved_sim_s: f64,
    pub stream_occupancy: f64,
    pub estimation_sim_s: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_bytes: u64,
    pub cache_entries: u64,
    pub remote_jobs: u64,
    pub deadline_hits: u64,
    pub sheds: u64,
    pub demotions: u64,
    pub rate_limited: u64,
    pub tenants: Vec<TenantWire>,
}

/// Per-tenant counters inside a [`MetricsWire`] snapshot. Additive: old
/// servers never send the `tenants` array and old clients ignore it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantWire {
    /// Tenant name (`default` for unlabelled traffic).
    pub name: String,
    /// Jobs this tenant submitted.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs refused by the overload ladder (shed or rate-limited).
    pub shed: u64,
}

impl MetricsWire {
    fn u64_fields(&self) -> [(&'static str, u64); 22] {
        [
            ("submitted", self.submitted),
            ("completed", self.completed),
            ("failed", self.failed),
            ("cancelled", self.cancelled),
            ("deadline_exceeded", self.deadline_exceeded),
            ("in_flight", self.in_flight),
            ("batches", self.batches),
            ("batch_jobs", self.batch_jobs),
            ("lanes_tracked", self.lanes_tracked),
            ("launches", self.launches),
            ("estimations_run", self.estimations_run),
            ("faults_injected", self.faults_injected),
            ("device_retries", self.device_retries),
            ("job_retries", self.job_retries),
            ("failovers", self.failovers),
            ("devices_alive", self.devices_alive),
            ("devices_total", self.devices_total),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("cache_evictions", self.cache_evictions),
            ("cache_bytes", self.cache_bytes),
            ("cache_entries", self.cache_entries),
        ]
    }

    fn write_json(&self, w: &mut JsonWriter) {
        w.begin();
        for (name, value) in self.u64_fields() {
            w.u64_field(name, value);
        }
        w.u64_field("remote_jobs", self.remote_jobs);
        w.f64_field("mean_batch_occupancy", self.mean_batch_occupancy);
        w.f64_field(
            "mean_wavefront_utilization",
            self.mean_wavefront_utilization,
        );
        w.f64_field("tracking_sim_s", self.tracking_sim_s);
        w.f64_field("overlap_saved_sim_s", self.overlap_saved_sim_s);
        w.f64_field("stream_occupancy", self.stream_occupancy);
        w.f64_field("estimation_sim_s", self.estimation_sim_s);
        // Overload counters append at the end: pre-overload servers never
        // send them, so the decoder treats them as optional.
        w.u64_field("deadline_hits", self.deadline_hits);
        w.u64_field("sheds", self.sheds);
        w.u64_field("demotions", self.demotions);
        w.u64_field("rate_limited", self.rate_limited);
        if !self.tenants.is_empty() {
            w.array_field("tenants", self.tenants.len(), |w, i| {
                let t = &self.tenants[i];
                w.begin();
                w.str_field("name", &t.name);
                w.u64_field("submitted", t.submitted);
                w.u64_field("completed", t.completed);
                w.u64_field("shed", t.shed);
                w.end();
            });
        }
        w.end();
    }

    fn from_json(v: &Json) -> TractoResult<Self> {
        use crate::json_util::{obj_f64, obj_opt_f64};
        Ok(MetricsWire {
            submitted: obj_u64(v, "submitted")?,
            completed: obj_u64(v, "completed")?,
            failed: obj_u64(v, "failed")?,
            cancelled: obj_u64(v, "cancelled")?,
            deadline_exceeded: obj_u64(v, "deadline_exceeded")?,
            in_flight: obj_u64(v, "in_flight")?,
            batches: obj_u64(v, "batches")?,
            batch_jobs: obj_u64(v, "batch_jobs")?,
            mean_batch_occupancy: obj_f64(v, "mean_batch_occupancy")?,
            lanes_tracked: obj_u64(v, "lanes_tracked")?,
            launches: obj_u64(v, "launches")?,
            mean_wavefront_utilization: obj_f64(v, "mean_wavefront_utilization")?,
            estimations_run: obj_u64(v, "estimations_run")?,
            faults_injected: obj_u64(v, "faults_injected")?,
            device_retries: obj_u64(v, "device_retries")?,
            job_retries: obj_u64(v, "job_retries")?,
            failovers: obj_u64(v, "failovers")?,
            devices_alive: obj_u64(v, "devices_alive")?,
            devices_total: obj_u64(v, "devices_total")?,
            tracking_sim_s: obj_f64(v, "tracking_sim_s")?,
            // Absent when talking to a pre-stream server: serialized values.
            overlap_saved_sim_s: obj_opt_f64(v, "overlap_saved_sim_s")?.unwrap_or(0.0),
            stream_occupancy: obj_opt_f64(v, "stream_occupancy")?.unwrap_or(1.0),
            estimation_sim_s: obj_f64(v, "estimation_sim_s")?,
            cache_hits: obj_u64(v, "cache_hits")?,
            cache_misses: obj_u64(v, "cache_misses")?,
            cache_evictions: obj_u64(v, "cache_evictions")?,
            cache_bytes: obj_u64(v, "cache_bytes")?,
            cache_entries: obj_u64(v, "cache_entries")?,
            remote_jobs: obj_u64(v, "remote_jobs")?,
            // Absent when talking to a pre-overload server: zeros.
            deadline_hits: obj_opt_u64(v, "deadline_hits")?.unwrap_or(0),
            sheds: obj_opt_u64(v, "sheds")?.unwrap_or(0),
            demotions: obj_opt_u64(v, "demotions")?.unwrap_or(0),
            rate_limited: obj_opt_u64(v, "rate_limited")?.unwrap_or(0),
            tenants: match v.get("tenants") {
                None | Some(Json::Null) => Vec::new(),
                Some(_) => obj_array(v, "tenants")?
                    .iter()
                    .map(|t| {
                        Ok(TenantWire {
                            name: obj_str(t, "name")?,
                            submitted: obj_u64(t, "submitted")?,
                            completed: obj_u64(t, "completed")?,
                            shed: obj_u64(t, "shed")?,
                        })
                    })
                    .collect::<TractoResult<Vec<_>>>()?,
            },
        })
    }
}

impl std::fmt::Display for MetricsWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted ({} remote), {} completed, {} failed, {} cancelled, {} past deadline, {} in flight",
            self.submitted,
            self.remote_jobs,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline_exceeded,
            self.in_flight
        )?;
        writeln!(
            f,
            "batches: {} run, {} jobs, {:.2} mean occupancy, {} lanes, {} launches, {:.1}% wavefront util",
            self.batches,
            self.batch_jobs,
            self.mean_batch_occupancy,
            self.lanes_tracked,
            self.launches,
            self.mean_wavefront_utilization * 100.0
        )?;
        writeln!(
            f,
            "estimation: {} runs, cache {} hits / {} misses / {} evictions, {} entries, {} bytes",
            self.estimations_run,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.cache_entries,
            self.cache_bytes
        )?;
        writeln!(
            f,
            "faults: {} injected, {} device retries, {} job retries, {} failovers, {}/{} devices alive",
            self.faults_injected,
            self.device_retries,
            self.job_retries,
            self.failovers,
            self.devices_alive,
            self.devices_total
        )?;
        writeln!(
            f,
            "overload: {} deadline hits, {} sheds, {} demotions, {} rate limited",
            self.deadline_hits, self.sheds, self.demotions, self.rate_limited
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "tenant {}: {} submitted, {} completed, {} shed",
                t.name, t.submitted, t.completed, t.shed
            )?;
        }
        writeln!(
            f,
            "streams: {:.3}s hidden by overlap, {:.3} occupancy",
            self.overlap_saved_sim_s, self.stream_occupancy
        )?;
        write!(
            f,
            "sim time: {:.3}s tracking, {:.3}s estimation",
            self.tracking_sim_s, self.estimation_sim_s
        )
    }
}

impl Request {
    /// Serialize to the JSON payload of one frame.
    pub fn encode(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin();
        match self {
            Request::Hello { version, client } => {
                w.str_field("type", "hello");
                w.u64_field("version", u64::from(*version));
                w.str_field("client", client);
            }
            Request::Submit(spec) => {
                w.str_field("type", "submit");
                w.raw_field("spec", |w| spec.write_json(w));
            }
            Request::Status { job } => {
                w.str_field("type", "status");
                w.u64_field("job", *job);
            }
            Request::Cancel { job } => {
                w.str_field("type", "cancel");
                w.u64_field("job", *job);
            }
            Request::Await { job, timeout_ms } => {
                w.str_field("type", "await");
                w.u64_field("job", *job);
                if let Some(ms) = timeout_ms {
                    w.u64_field("timeout_ms", *ms);
                }
            }
            Request::Metrics => w.str_field("type", "metrics"),
            Request::Drain => w.str_field("type", "drain"),
            Request::Shutdown => w.str_field("type", "shutdown"),
            Request::Subscribe { job } => {
                w.str_field("type", "subscribe");
                if let Some(job) = job {
                    w.u64_field("job", *job);
                }
            }
            Request::UploadBegin { hash, len } => {
                w.str_field("type", "upload_begin");
                w.str_field("hash", hash);
                w.u64_field("len", *len);
            }
            Request::UploadChunk { hash, offset, data } => {
                w.str_field("type", "upload_chunk");
                w.str_field("hash", hash);
                w.u64_field("offset", *offset);
                w.str_field("data", data);
            }
            Request::UploadCommit { hash } => {
                w.str_field("type", "upload_commit");
                w.str_field("hash", hash);
            }
            Request::Ping => w.str_field("type", "ping"),
            Request::Replicate {
                source,
                first_seq,
                reset,
                records,
            } => {
                w.str_field("type", "replicate");
                w.str_field("source", source);
                w.u64_field("first_seq", *first_seq);
                w.bool_field("reset", *reset);
                w.array_field("records", records.len(), |w, i| w.str_value(&records[i]));
            }
            Request::Takeover { source } => {
                w.str_field("type", "takeover");
                w.str_field("source", source);
            }
            Request::FleetStatus => w.str_field("type", "fleet_status"),
            Request::Route(spec) => {
                w.str_field("type", "route");
                w.raw_field("spec", |w| spec.write_json(w));
            }
        }
        w.end();
        w.finish()
    }

    /// Decode a frame payload. Malformed JSON, a missing tag, or an unknown
    /// `type` all yield a typed [protocol error](TractoError::Protocol) the
    /// server can answer without closing the connection.
    pub fn decode(payload: &str) -> TractoResult<Self> {
        let v = parse(payload)
            .map_err(|e| TractoError::protocol(format!("request is not valid JSON: {e}")))?;
        let tag = obj_str(&v, "type")?;
        match tag.as_str() {
            "hello" => Ok(Request::Hello {
                version: obj_u32(&v, "version")?,
                client: obj_str(&v, "client")?,
            }),
            "submit" => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| TractoError::protocol("submit request missing `spec`"))?;
                Ok(Request::Submit(Box::new(JobSpec::from_json(spec)?)))
            }
            "status" => Ok(Request::Status {
                job: obj_u64(&v, "job")?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: obj_u64(&v, "job")?,
            }),
            "await" => Ok(Request::Await {
                job: obj_u64(&v, "job")?,
                timeout_ms: obj_opt_u64(&v, "timeout_ms")?,
            }),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain),
            "shutdown" => Ok(Request::Shutdown),
            "subscribe" => Ok(Request::Subscribe {
                job: obj_opt_u64(&v, "job")?,
            }),
            "upload_begin" => Ok(Request::UploadBegin {
                hash: obj_str(&v, "hash")?,
                len: obj_u64(&v, "len")?,
            }),
            "upload_chunk" => Ok(Request::UploadChunk {
                hash: obj_str(&v, "hash")?,
                offset: obj_u64(&v, "offset")?,
                data: obj_str(&v, "data")?,
            }),
            "upload_commit" => Ok(Request::UploadCommit {
                hash: obj_str(&v, "hash")?,
            }),
            "ping" => Ok(Request::Ping),
            "replicate" => {
                let mut records = Vec::new();
                for item in obj_array(&v, "records")? {
                    records.push(
                        item.as_str()
                            .ok_or_else(|| {
                                TractoError::protocol("replicate record is not a string")
                            })?
                            .to_owned(),
                    );
                }
                Ok(Request::Replicate {
                    source: obj_str(&v, "source")?,
                    first_seq: obj_u64(&v, "first_seq")?,
                    reset: obj_bool(&v, "reset")?,
                    records,
                })
            }
            "takeover" => Ok(Request::Takeover {
                source: obj_str(&v, "source")?,
            }),
            "fleet_status" => Ok(Request::FleetStatus),
            "route" => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| TractoError::protocol("route request missing `spec`"))?;
                Ok(Request::Route(Box::new(JobSpec::from_json(spec)?)))
            }
            other => Err(TractoError::protocol(format!(
                "unknown request type `{other}`"
            ))),
        }
    }
}

fn write_state(w: &mut JsonWriter, state: &JobState) {
    w.begin();
    match state {
        JobState::Pending => w.str_field("state", "pending"),
        JobState::Done(outcome) => {
            w.str_field("state", "done");
            w.raw_field("outcome", |w| {
                w.begin();
                match outcome {
                    Outcome::Estimate { voxels, cache_hit } => {
                        w.str_field("kind", "estimate");
                        w.u64_field("voxels", *voxels);
                        w.bool_field("cache_hit", *cache_hit);
                    }
                    Outcome::Track {
                        total_steps,
                        streamlines,
                        lengths_digest,
                        cache_hit,
                        batch_jobs,
                        batch_lanes,
                    } => {
                        w.str_field("kind", "track");
                        w.u64_field("total_steps", *total_steps);
                        w.u64_field("streamlines", *streamlines);
                        // Full u64 range: travels as hex, not an IEEE double.
                        w.str_field("digest", &format!("{lengths_digest:016x}"));
                        w.bool_field("cache_hit", *cache_hit);
                        w.u64_field("batch_jobs", *batch_jobs);
                        w.u64_field("batch_lanes", *batch_lanes);
                    }
                }
                w.end();
            });
        }
        JobState::Failed { kind, message } => {
            w.str_field("state", "failed");
            w.str_field("kind", kind);
            w.str_field("message", message);
        }
    }
    w.end();
}

fn read_state(v: &Json) -> TractoResult<JobState> {
    match obj_str(v, "state")?.as_str() {
        "pending" => Ok(JobState::Pending),
        "failed" => Ok(JobState::Failed {
            kind: obj_str(v, "kind")?,
            message: obj_str(v, "message")?,
        }),
        "done" => {
            let o = v
                .get("outcome")
                .ok_or_else(|| TractoError::protocol("done state missing `outcome`"))?;
            match obj_str(o, "kind")?.as_str() {
                "estimate" => Ok(JobState::Done(Outcome::Estimate {
                    voxels: obj_u64(o, "voxels")?,
                    cache_hit: obj_bool(o, "cache_hit")?,
                })),
                "track" => {
                    let hex = obj_str(o, "digest")?;
                    let lengths_digest = u64::from_str_radix(&hex, 16).map_err(|_| {
                        TractoError::protocol(format!("bad digest `{hex}` (expected hex)"))
                    })?;
                    Ok(JobState::Done(Outcome::Track {
                        total_steps: obj_u64(o, "total_steps")?,
                        streamlines: obj_u64(o, "streamlines")?,
                        lengths_digest,
                        cache_hit: obj_bool(o, "cache_hit")?,
                        batch_jobs: obj_u64(o, "batch_jobs")?,
                        batch_lanes: obj_u64(o, "batch_lanes")?,
                    }))
                }
                other => Err(TractoError::protocol(format!(
                    "unknown outcome kind `{other}`"
                ))),
            }
        }
        other => Err(TractoError::protocol(format!(
            "unknown job state `{other}`"
        ))),
    }
}

impl Response {
    /// Serialize to the JSON payload of one frame.
    pub fn encode(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin();
        match self {
            Response::Hello {
                version,
                server,
                member,
            } => {
                w.str_field("type", "hello");
                w.u64_field("version", u64::from(*version));
                w.str_field("server", server);
                if let Some(member) = member {
                    w.str_field("member", member);
                }
            }
            Response::Submitted { job } => {
                w.str_field("type", "submitted");
                w.u64_field("job", *job);
            }
            Response::Status { job, state } => {
                w.str_field("type", "status");
                w.u64_field("job", *job);
                w.raw_field("job_state", |w| write_state(w, state));
            }
            Response::Cancelled { job, cancelled } => {
                w.str_field("type", "cancelled");
                w.u64_field("job", *job);
                w.bool_field("cancelled", *cancelled);
            }
            Response::Metrics(m) => {
                w.str_field("type", "metrics");
                w.raw_field("metrics", |w| m.write_json(w));
            }
            Response::Drained => w.str_field("type", "drained"),
            Response::ShuttingDown => w.str_field("type", "shutting_down"),
            Response::Error { kind, message } => {
                w.str_field("type", "error");
                w.str_field("kind", kind);
                w.str_field("message", message);
            }
            Response::Subscribed { job } => {
                w.str_field("type", "subscribed");
                if let Some(job) = job {
                    w.u64_field("job", *job);
                }
            }
            Response::Event(ev) => {
                w.str_field("type", "event");
                w.u64_field("seq", ev.seq);
                w.u64_field("job", ev.job);
                w.str_field("kind", &ev.kind);
                w.raw_field("job_state", |w| write_state(w, &ev.state));
            }
            Response::UploadReady { offset, complete } => {
                w.str_field("type", "upload_ready");
                w.u64_field("offset", *offset);
                w.bool_field("complete", *complete);
            }
            Response::UploadAck { received } => {
                w.str_field("type", "upload_ack");
                w.u64_field("received", *received);
            }
            Response::UploadDone { hash, bytes } => {
                w.str_field("type", "upload_done");
                w.str_field("hash", hash);
                w.u64_field("bytes", *bytes);
            }
            Response::Pong { member } => {
                w.str_field("type", "pong");
                w.str_field("member", member);
            }
            Response::ReplAck { next } => {
                w.str_field("type", "repl_ack");
                w.u64_field("next", *next);
            }
            Response::TookOver { jobs } => {
                w.str_field("type", "took_over");
                w.array_field("jobs", jobs.len(), |w, i| {
                    w.begin();
                    w.u64_field("from", jobs[i].0);
                    w.u64_field("to", jobs[i].1);
                    w.end();
                });
            }
            Response::Fleet(fleet) => {
                w.str_field("type", "fleet");
                w.u64_field("takeovers", fleet.takeovers);
                w.u64_field("jobs_routed", fleet.jobs_routed);
                w.array_field("members", fleet.members.len(), |w, i| {
                    let m = &fleet.members[i];
                    w.begin();
                    w.str_field("name", &m.name);
                    w.str_field("endpoint", &m.endpoint);
                    w.bool_field("alive", m.alive);
                    w.u64_field("jobs_routed", m.jobs_routed);
                    w.u64_field("heartbeat_misses", m.heartbeat_misses);
                    w.end();
                });
            }
            Response::Routed { member } => {
                w.str_field("type", "routed");
                w.str_field("member", member);
            }
        }
        w.end();
        w.finish()
    }

    /// Decode a frame payload.
    pub fn decode(payload: &str) -> TractoResult<Self> {
        let v = parse(payload)
            .map_err(|e| TractoError::protocol(format!("response is not valid JSON: {e}")))?;
        let tag = obj_str(&v, "type")?;
        match tag.as_str() {
            "hello" => Ok(Response::Hello {
                version: obj_u32(&v, "version")?,
                server: obj_str(&v, "server")?,
                member: obj_opt_str(&v, "member")?,
            }),
            "submitted" => Ok(Response::Submitted {
                job: obj_u64(&v, "job")?,
            }),
            "status" => Ok(Response::Status {
                job: obj_u64(&v, "job")?,
                state: read_state(v.get("job_state").ok_or_else(|| {
                    TractoError::protocol("status response missing `job_state`")
                })?)?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: obj_u64(&v, "job")?,
                cancelled: obj_bool(&v, "cancelled")?,
            }),
            "metrics" => Ok(Response::Metrics(Box::new(MetricsWire::from_json(
                v.get("metrics")
                    .ok_or_else(|| TractoError::protocol("metrics response missing `metrics`"))?,
            )?))),
            "drained" => Ok(Response::Drained),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                kind: obj_str(&v, "kind")?,
                message: obj_str(&v, "message")?,
            }),
            "subscribed" => Ok(Response::Subscribed {
                job: obj_opt_u64(&v, "job")?,
            }),
            "event" => Ok(Response::Event(Event {
                seq: obj_u64(&v, "seq")?,
                job: obj_u64(&v, "job")?,
                kind: obj_str(&v, "kind")?,
                state: read_state(
                    v.get("job_state")
                        .ok_or_else(|| TractoError::protocol("event missing `job_state`"))?,
                )?,
            })),
            "upload_ready" => Ok(Response::UploadReady {
                offset: obj_u64(&v, "offset")?,
                complete: obj_bool(&v, "complete")?,
            }),
            "upload_ack" => Ok(Response::UploadAck {
                received: obj_u64(&v, "received")?,
            }),
            "upload_done" => Ok(Response::UploadDone {
                hash: obj_str(&v, "hash")?,
                bytes: obj_u64(&v, "bytes")?,
            }),
            "pong" => Ok(Response::Pong {
                member: obj_str(&v, "member")?,
            }),
            "repl_ack" => Ok(Response::ReplAck {
                next: obj_u64(&v, "next")?,
            }),
            "took_over" => {
                let mut jobs = Vec::new();
                for item in obj_array(&v, "jobs")? {
                    jobs.push((obj_u64(item, "from")?, obj_u64(item, "to")?));
                }
                Ok(Response::TookOver { jobs })
            }
            "fleet" => {
                let mut members = Vec::new();
                for item in obj_array(&v, "members")? {
                    members.push(MemberWire {
                        name: obj_str(item, "name")?,
                        endpoint: obj_str(item, "endpoint")?,
                        alive: obj_bool(item, "alive")?,
                        jobs_routed: obj_u64(item, "jobs_routed")?,
                        heartbeat_misses: obj_u64(item, "heartbeat_misses")?,
                    });
                }
                Ok(Response::Fleet(Box::new(FleetWire {
                    members,
                    takeovers: obj_u64(&v, "takeovers")?,
                    jobs_routed: obj_u64(&v, "jobs_routed")?,
                })))
            }
            "routed" => Ok(Response::Routed {
                member: obj_str(&v, "member")?,
            }),
            other => Err(TractoError::protocol(format!(
                "unknown response type `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CachePolicy, DatasetSpec, Priority};
    use tracto_trace::ErrorKind;

    fn rt_req(r: Request) {
        assert_eq!(Request::decode(&r.encode()).expect("decodes"), r);
    }

    fn rt_resp(r: Response) {
        assert_eq!(Response::decode(&r.encode()).expect("decodes"), r);
    }

    #[test]
    fn requests_round_trip() {
        rt_req(Request::Hello {
            version: 1,
            client: "cli \"quoted\"".into(),
        });
        let mut spec = JobSpec::track(DatasetSpec::new("2"));
        spec.priority = Priority::Low;
        spec.cache = CachePolicy::ReadOnly;
        spec.deadline_ms = Some(250);
        rt_req(Request::Submit(Box::new(spec)));
        rt_req(Request::Submit(Box::new(JobSpec::estimate(
            DatasetSpec::new("single"),
        ))));
        rt_req(Request::Status { job: 7 });
        rt_req(Request::Cancel { job: 9 });
        rt_req(Request::Await {
            job: 3,
            timeout_ms: Some(4000),
        });
        rt_req(Request::Await {
            job: 3,
            timeout_ms: None,
        });
        rt_req(Request::Metrics);
        rt_req(Request::Drain);
        rt_req(Request::Shutdown);
    }

    #[test]
    fn v2_requests_round_trip() {
        rt_req(Request::Subscribe { job: None });
        rt_req(Request::Subscribe { job: Some(41) });
        rt_req(Request::UploadBegin {
            hash: "00ff00ff00ff00ff".into(),
            len: 1 << 24,
        });
        rt_req(Request::UploadChunk {
            hash: "00ff00ff00ff00ff".into(),
            offset: 65536,
            data: "Zm9vYmFy".into(),
        });
        rt_req(Request::UploadCommit {
            hash: "00ff00ff00ff00ff".into(),
        });
        let mut spec = JobSpec::track(DatasetSpec::uploaded("00ff00ff00ff00ff"));
        spec.seed = 5;
        rt_req(Request::Submit(Box::new(spec)));
    }

    #[test]
    fn v2_responses_round_trip() {
        rt_resp(Response::Subscribed { job: None });
        rt_resp(Response::Subscribed { job: Some(7) });
        rt_resp(Response::Event(Event {
            seq: 3,
            job: 7,
            kind: "admitted".into(),
            state: JobState::Pending,
        }));
        rt_resp(Response::Event(Event {
            seq: 4,
            job: 7,
            kind: "completed".into(),
            state: JobState::Done(Outcome::Estimate {
                voxels: 99,
                cache_hit: false,
            }),
        }));
        rt_resp(Response::UploadReady {
            offset: 12,
            complete: false,
        });
        rt_resp(Response::UploadAck { received: 4096 });
        rt_resp(Response::UploadDone {
            hash: "deadbeefdeadbeef".into(),
            bytes: 4096,
        });
    }

    #[test]
    fn terminal_kinds_are_terminal() {
        for (kind, terminal) in [
            ("admitted", false),
            ("checkpointed", false),
            ("completed", true),
            ("cancelled", true),
            ("failed", true),
        ] {
            let ev = Event {
                seq: 0,
                job: 1,
                kind: kind.into(),
                state: JobState::Pending,
            };
            assert_eq!(ev.is_terminal(), terminal, "{kind}");
        }
    }

    #[test]
    fn responses_round_trip() {
        rt_resp(Response::Hello {
            version: 1,
            server: "tracto-serve".into(),
            member: None,
        });
        rt_resp(Response::Submitted { job: 12 });
        rt_resp(Response::Status {
            job: 12,
            state: JobState::Pending,
        });
        rt_resp(Response::Status {
            job: 12,
            state: JobState::Done(Outcome::Estimate {
                voxels: 4096,
                cache_hit: true,
            }),
        });
        rt_resp(Response::Status {
            job: 13,
            state: JobState::Done(Outcome::Track {
                total_steps: 123_456,
                streamlines: 640,
                lengths_digest: u64::MAX - 3, // exercises the hex path
                cache_hit: false,
                batch_jobs: 4,
                batch_lanes: 2560,
            }),
        });
        rt_resp(Response::Status {
            job: 14,
            state: JobState::Failed {
                kind: "device".into(),
                message: "device 0 fault: launch failed".into(),
            },
        });
        rt_resp(Response::Cancelled {
            job: 5,
            cancelled: false,
        });
        rt_resp(Response::Metrics(Box::new(MetricsWire {
            submitted: 9,
            remote_jobs: 4,
            mean_batch_occupancy: 2.25,
            tracking_sim_s: 0.125,
            cache_bytes: 1 << 20,
            ..Default::default()
        })));
        rt_resp(Response::Drained);
        rt_resp(Response::ShuttingDown);
        rt_resp(Response::Error {
            kind: "protocol".into(),
            message: "unknown request type `zap`".into(),
        });
    }

    #[test]
    fn metrics_overload_counters_tolerate_old_peers_both_ways() {
        // New server → new client: the overload counters and per-tenant
        // rows ride along and round-trip exactly.
        let full = MetricsWire {
            submitted: 9,
            deadline_hits: 3,
            sheds: 2,
            demotions: 1,
            rate_limited: 4,
            tenants: vec![
                TenantWire {
                    name: "default".into(),
                    submitted: 5,
                    completed: 4,
                    shed: 1,
                },
                TenantWire {
                    name: "hospital-a".into(),
                    submitted: 4,
                    completed: 2,
                    shed: 1,
                },
            ],
            ..Default::default()
        };
        rt_resp(Response::Metrics(Box::new(full)));
        // Old server → new client: a pre-overload snapshot carries none of
        // the new keys. Strip them from a default encoding (they are
        // written contiguously after `estimation_sim_s`) and the decoder
        // must fill zeros, not error.
        let mut w = JsonWriter::new();
        MetricsWire::default().write_json(&mut w);
        let text = w.finish();
        let old = text.replace(
            ",\"deadline_hits\":0,\"sheds\":0,\"demotions\":0,\"rate_limited\":0",
            "",
        );
        assert_ne!(old, text, "the new keys must be present to strip");
        let v = tracto_trace::json::parse(&old).expect("old snapshot parses");
        let decoded = MetricsWire::from_json(&v).expect("old snapshot decodes");
        assert_eq!(decoded, MetricsWire::default());
        // New server → old client: every pre-overload key is still emitted
        // (an old strict decoder reads only those and ignores the rest).
        for key in [
            "submitted",
            "estimation_sim_s",
            "remote_jobs",
            "cache_entries",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "missing `{key}`");
        }
        // Idle servers with no tenant traffic omit the array entirely.
        assert!(!text.contains("tenants"));
    }

    #[test]
    fn v3_fleet_requests_round_trip() {
        rt_req(Request::Ping);
        rt_req(Request::Replicate {
            source: "m0".into(),
            first_seq: 17,
            reset: false,
            records: vec![
                r#"{"rec":"submitted","job":3}"#.into(),
                r#"{"rec":"admitted","job":3}"#.into(),
            ],
        });
        rt_req(Request::Replicate {
            source: "m1".into(),
            first_seq: 0,
            reset: true,
            records: Vec::new(),
        });
        rt_req(Request::Takeover {
            source: "m0".into(),
        });
        rt_req(Request::FleetStatus);
        rt_req(Request::Route(Box::new(JobSpec::track(DatasetSpec::new(
            "crossing",
        )))));
    }

    #[test]
    fn v3_fleet_responses_round_trip() {
        rt_resp(Response::Hello {
            version: 3,
            server: "tracto-serve".into(),
            member: Some("m1".into()),
        });
        rt_resp(Response::Pong {
            member: "m0".into(),
        });
        rt_resp(Response::Pong {
            member: String::new(),
        });
        rt_resp(Response::ReplAck { next: 42 });
        rt_resp(Response::TookOver { jobs: Vec::new() });
        rt_resp(Response::TookOver {
            jobs: vec![(3, 11), (4, 12)],
        });
        rt_resp(Response::Fleet(Box::new(FleetWire {
            members: vec![
                MemberWire {
                    name: "m0".into(),
                    endpoint: "unix:/tmp/a.sock".into(),
                    alive: false,
                    jobs_routed: 9,
                    heartbeat_misses: 3,
                },
                MemberWire {
                    name: "m1".into(),
                    endpoint: "tcp:127.0.0.1:9000".into(),
                    alive: true,
                    jobs_routed: 4,
                    heartbeat_misses: 0,
                },
            ],
            takeovers: 1,
            jobs_routed: 13,
        })));
        rt_resp(Response::Routed {
            member: "m1".into(),
        });
    }

    #[test]
    fn malformed_payloads_are_protocol_errors() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            "{}",
            r#"{"type":"warp_core_breach"}"#,
            r#"{"type":"submit"}"#,
            r#"{"type":"status","job":"seven"}"#,
            r#"{"type":"await","job":1,"timeout_ms":"soon"}"#,
        ] {
            let err = Request::decode(bad).expect_err(bad);
            assert_eq!(err.kind(), ErrorKind::Protocol, "{bad}");
        }
        for bad in ["{}", r#"{"type":"status","job":1}"#, "null"] {
            assert_eq!(
                Response::decode(bad).expect_err(bad).kind(),
                ErrorKind::Protocol,
                "{bad}"
            );
        }
    }

    #[test]
    fn unknown_request_error_names_the_type() {
        let err = Request::decode(r#"{"type":"frobnicate"}"#).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }
}
