//! The tracto wire protocol: how jobs cross a process boundary.
//!
//! `tracto-serve` exposes one submission surface — a typed
//! [`JobSpec`] — and this crate defines its wire form plus the transport
//! it rides on:
//!
//! - **Frames** ([`frame`]): 4-byte big-endian length prefix + UTF-8 JSON
//!   payload, capped at [`MAX_FRAME_BYTES`].
//! - **Messages** ([`wire`]): tagged [`Request`]/[`Response`] objects. A
//!   connection opens with a `hello` exchange carrying
//!   [`PROTOCOL_VERSION`]; a mismatch is answered with a typed error and
//!   the connection closes.
//! - **Endpoints** ([`endpoint`]): Unix-domain sockets by default, TCP via
//!   an explicit `tcp:` prefix.
//! - **Client** ([`client`]): [`RemoteService`], a blocking
//!   request/response connection with the same verbs as the in-process
//!   service.
//!
//! # Compatibility policy
//!
//! The version is a single integer, bumped on any change a v_n peer could
//! misread: renamed/removed fields, re-typed fields, or changed framing.
//! Since v2 the handshake *negotiates*: the server answers `hello` with
//! `min(client_version, PROTOCOL_VERSION)` and both sides speak that
//! version for the rest of the connection, so a v1 client keeps working
//! against a v2 server unchanged. A v1 server still answers a v2 `hello`
//! with an `error` frame and closes; [`RemoteService::connect`] catches
//! that refusal and reconnects speaking v1, gating v2-only verbs
//! (subscriptions, uploads) on the negotiated `server_version`. A `hello`
//! below [`PROTOCOL_VERSION_MIN`] is refused outright.
//!
//! The crate is std-only: JSON encode/decode reuses `tracto-trace`'s
//! hand-rolled writer/parser, so nothing new is pulled into the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
pub mod client;
pub mod endpoint;
pub mod frame;
mod json_util;
pub mod spec;
pub mod wire;

pub use client::{capacity_retry_after, PingReply, RemoteService};
pub use endpoint::Endpoint;
pub use frame::{read_frame, write_frame, FrameBuf, MAX_FRAME_BYTES};
pub use spec::{
    content_digest, lengths_digest, placement_key, CachePolicy, ChainSpec, DatasetSpec, JobKind,
    JobSpec, Modality, Priority, TrackSpec, DEFAULT_TENANT,
};
pub use wire::{
    Event, FleetWire, JobState, MemberWire, MetricsWire, Outcome, Request, Response, TenantWire,
    UPLOAD_CHUNK_MAX,
};

/// The newest protocol version this build speaks; the client offers it in
/// `hello` and the server negotiates down to `min(client, server)` (see
/// the compatibility policy in the crate docs).
///
/// v3 adds the fleet verbs (`ping`, `replicate`, `takeover`,
/// `fleet_status`, `route`) and the optional `member` identity in the
/// server's `hello`. The fleet verbs are deliberately *not* gated on the
/// negotiated version: a server that knows them answers them on any
/// negotiated version, and a server that predates them answers with its
/// usual in-band `unknown request type` protocol error — which callers
/// like `tracto ping` surface as "no heartbeat support" rather than a
/// transport failure.
pub const PROTOCOL_VERSION: u32 = 3;

/// The oldest version either side will still negotiate down to.
pub const PROTOCOL_VERSION_MIN: u32 = 1;
