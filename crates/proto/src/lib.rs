//! The tracto wire protocol: how jobs cross a process boundary.
//!
//! `tracto-serve` exposes one submission surface — a typed
//! [`JobSpec`] — and this crate defines its wire form plus the transport
//! it rides on:
//!
//! - **Frames** ([`frame`]): 4-byte big-endian length prefix + UTF-8 JSON
//!   payload, capped at [`MAX_FRAME_BYTES`].
//! - **Messages** ([`wire`]): tagged [`Request`]/[`Response`] objects. A
//!   connection opens with a `hello` exchange carrying
//!   [`PROTOCOL_VERSION`]; a mismatch is answered with a typed error and
//!   the connection closes.
//! - **Endpoints** ([`endpoint`]): Unix-domain sockets by default, TCP via
//!   an explicit `tcp:` prefix.
//! - **Client** ([`client`]): [`RemoteService`], a blocking
//!   request/response connection with the same verbs as the in-process
//!   service.
//!
//! # Compatibility policy
//!
//! The version is a single integer, bumped on any change a v_n peer could
//! misread: renamed/removed fields, re-typed fields, or changed framing.
//! *Adding* an optional request field or a new response variant bumps it
//! too — the protocol is young, and one number both sides compare exactly
//! beats field-level feature negotiation at this stage. Servers answer a
//! mismatched `hello` with an `error` frame (so old clients get a readable
//! reason) and then close.
//!
//! The crate is std-only: JSON encode/decode reuses `tracto-trace`'s
//! hand-rolled writer/parser, so nothing new is pulled into the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod endpoint;
pub mod frame;
mod json_util;
pub mod spec;
pub mod wire;

pub use client::RemoteService;
pub use endpoint::Endpoint;
pub use frame::{read_frame, write_frame, MAX_FRAME_BYTES};
pub use spec::{
    lengths_digest, CachePolicy, ChainSpec, DatasetSpec, JobKind, JobSpec, Priority, TrackSpec,
};
pub use wire::{JobState, MetricsWire, Outcome, Request, Response};

/// The protocol version both sides exchange in `hello`. Peers with
/// different versions refuse to talk (see the compatibility policy in the
/// crate docs).
pub const PROTOCOL_VERSION: u32 = 1;
