//! Length-prefixed frames: every protocol message travels as a 4-byte
//! big-endian byte length followed by that many bytes of UTF-8 JSON.
//!
//! The prefix makes message boundaries explicit on a byte stream, so a
//! reader never has to scan for delimiters inside JSON, and a malformed
//! payload poisons only its own frame. Frames above [`MAX_FRAME_BYTES`]
//! are rejected before any allocation, bounding what a misbehaving peer
//! can make the other side buffer.

use std::io::{ErrorKind as IoKind, Read, Write};
use tracto_trace::{TractoError, TractoResult};

/// Upper bound on a single frame's payload (16 MiB). Large enough for any
/// result this service returns, small enough to bound a hostile prefix.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// Write one frame: 4-byte big-endian length, then the payload bytes.
pub fn write_frame(w: &mut impl Write, payload: &str) -> TractoResult<()> {
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(TractoError::protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte limit",
            bytes.len(),
            MAX_FRAME_BYTES
        )));
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)
        .and_then(|()| w.write_all(bytes))
        .and_then(|()| w.flush())
        .map_err(|e| TractoError::io("write frame", e))
}

/// Read one frame's payload. Returns `Ok(None)` on a clean end-of-stream
/// (the peer closed between frames); a stream that ends *inside* a frame —
/// a truncated length prefix or a short body — is a typed
/// [protocol error](TractoError::Protocol).
pub fn read_frame(r: &mut impl Read) -> TractoResult<Option<String>> {
    let mut prefix = [0u8; 4];
    match read_exact_or_eof(r, &mut prefix)? {
        Filled::Eof => return Ok(None),
        Filled::Partial(n) => {
            return Err(TractoError::protocol(format!(
                "stream ended inside a length prefix ({n} of 4 bytes)"
            )))
        }
        Filled::Complete => {}
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(TractoError::protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte limit"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == IoKind::UnexpectedEof {
            TractoError::protocol(format!("stream ended inside a {len}-byte frame body"))
        } else {
            TractoError::io("read frame body", e)
        }
    })?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| TractoError::protocol("frame body is not valid UTF-8"))
}

/// Incremental frame extraction over an append-only byte buffer, for
/// nonblocking readers (the reactor's per-connection inbox, the client's
/// event loop) that receive partial frames across many `read` calls.
///
/// Feed raw bytes with [`extend`](Self::extend); pull complete payloads
/// with [`next_frame`](Self::next_frame). An oversized length prefix is
/// reported before its body is buffered, so a hostile peer cannot make the
/// reader allocate past [`MAX_FRAME_BYTES`].
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Append raw bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by one frame plus one read.
        if self.start > 0 && (self.start >= 4096 || self.start == self.buf.len()) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extract the next complete frame payload, or `Ok(None)` if more
    /// bytes are needed. An oversized announcement or a non-UTF-8 body is
    /// a typed [protocol error](TractoError::Protocol).
    pub fn next_frame(&mut self) -> TractoResult<Option<String>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_BYTES {
            return Err(TractoError::protocol(format!(
                "incoming frame of {len} bytes exceeds the {MAX_FRAME_BYTES} byte limit"
            )));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let body = avail[4..total].to_vec();
        self.start += total;
        String::from_utf8(body)
            .map(Some)
            .map_err(|_| TractoError::protocol("frame body is not valid UTF-8"))
    }
}

enum Filled {
    Complete,
    Partial(usize),
    Eof,
}

/// Fill `buf`, distinguishing "no bytes at all" (clean EOF) from "some but
/// not all" (truncation mid-prefix).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> TractoResult<Filled> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    Filled::Eof
                } else {
                    Filled::Partial(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(e) => return Err(TractoError::io("read frame prefix", e)),
        }
    }
    Ok(Filled::Complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::ErrorKind;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"a\":1}").unwrap();
        write_frame(&mut buf, "").unwrap();
        write_frame(&mut buf, "second ünïcode frame").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("second ünïcode frame")
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF is None");
    }

    #[test]
    fn truncated_prefix_is_a_protocol_error() {
        let mut r: &[u8] = &[0u8, 0]; // two of four length bytes
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("length prefix"));
    }

    #[test]
    fn truncated_body_is_a_protocol_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "hello frame").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = buf.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("frame body"));
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = (MAX_FRAME_BYTES + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"x");
        let mut r = buf.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn frame_buf_extracts_across_partial_feeds() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"a\":1}").unwrap();
        write_frame(&mut wire, "").unwrap();
        write_frame(&mut wire, "tail").unwrap();
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        // Feed one byte at a time: frames must still come out whole.
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, ["{\"a\":1}", "", "tail"]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn frame_buf_rejects_oversize_before_buffering_body() {
        let mut fb = FrameBuf::new();
        fb.extend(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        let err = fb.next_frame().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn non_utf8_body_rejected() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = buf.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
    }
}
