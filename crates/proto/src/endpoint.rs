//! Listen/connect addresses: Unix-domain sockets by default, TCP opt-in.

use std::fmt;
use std::path::PathBuf;
use tracto_trace::{TractoError, TractoResult};

/// Where a tracto service listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this filesystem path (the default — no
    /// network exposure, filesystem permissions apply).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:7450`; opt-in via the `tcp:` prefix.
    Tcp(String),
}

impl Endpoint {
    /// Parse an endpoint string: `unix:PATH`, `tcp:HOST:PORT`, or a bare
    /// path (treated as `unix:`).
    pub fn parse(s: &str) -> TractoResult<Self> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr
                .rsplit_once(':')
                .is_none_or(|(host, port)| host.is_empty() || port.parse::<u16>().is_err())
            {
                return Err(TractoError::config(format!(
                    "bad tcp endpoint `{addr}` (expected HOST:PORT)"
                )));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        let path = s.strip_prefix("unix:").unwrap_or(s);
        if path.is_empty() {
            return Err(TractoError::config("empty socket path"));
        }
        Ok(Endpoint::Unix(PathBuf::from(path)))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_path_is_unix() {
        assert_eq!(
            Endpoint::parse("/tmp/tracto.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/tracto.sock"))
        );
        assert_eq!(
            Endpoint::parse("unix:/run/t.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/run/t.sock"))
        );
    }

    #[test]
    fn tcp_requires_host_and_port() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7450").unwrap(),
            Endpoint::Tcp("127.0.0.1:7450".into())
        );
        assert!(Endpoint::parse("tcp:nohost").is_err());
        assert!(Endpoint::parse("tcp::80").is_err());
        assert!(Endpoint::parse("tcp:host:notaport").is_err());
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("unix:").is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in ["unix:/tmp/x.sock", "tcp:localhost:1234"] {
            let e = Endpoint::parse(s).unwrap();
            assert_eq!(e.to_string(), s);
            assert_eq!(Endpoint::parse(&e.to_string()).unwrap(), e);
        }
    }
}
