//! Uniform-bin histograms.

/// A histogram with uniform bins over `[lo, hi)`.
///
/// ```
/// use tracto_stats::Histogram;
/// let h = Histogram::from_data([0.5, 1.5, 1.7, 2.5], 0.0, 3.0, 3);
/// assert_eq!(h.counts(), &[1, 2, 1]);
/// assert_eq!(h.bin_center(1), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Build from data with `bins` uniform bins over `[lo, hi)`. Values
    /// outside the range are tallied separately (`below`/`above`).
    pub fn from_data(data: impl IntoIterator<Item = f64>, lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        let mut h = Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            below: 0,
            above: 0,
        };
        let scale = bins as f64 / (hi - lo);
        for x in data {
            h.total += 1;
            if x < lo {
                h.below += 1;
            } else if x >= hi {
                h.above += 1;
            } else {
                let b = ((x - lo) * scale) as usize;
                h.counts[b.min(bins - 1)] += 1;
            }
        }
        h
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center of bin `b`.
    pub fn bin_center(&self, b: usize) -> f64 {
        self.lo + (b as f64 + 0.5) * self.bin_width()
    }

    /// Raw count of bin `b`.
    pub fn count(&self, b: usize) -> u64 {
        self.counts[b]
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below/above the range.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Probability-density estimate per bin (integrates to the in-range
    /// fraction).
    pub fn density(&self) -> Vec<f64> {
        let norm = self.total.max(1) as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }

    /// `(bin center, density)` pairs for nonzero bins — the Fig. 5a series.
    pub fn density_points(&self) -> Vec<(f64, f64)> {
        let d = self.density();
        (0..self.bins())
            .filter(|&b| self.counts[b] > 0)
            .map(|b| (self.bin_center(b), d[b]))
            .collect()
    }

    /// Render a terminal bar chart (one row per bin), the text analogue of
    /// the paper's distribution figures.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (b, &c) in self.counts.iter().enumerate() {
            let bar = (c as f64 / max as f64 * width as f64).round() as usize;
            out.push_str(&format!(
                "{:>10.1} | {}{} {}\n",
                self.bin_center(b),
                "#".repeat(bar),
                " ".repeat(width - bar),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let h = Histogram::from_data([0.5, 1.5, 1.7, 2.5], 0.0, 3.0, 3);
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn out_of_range_tallied() {
        let h = Histogram::from_data([-1.0, 0.5, 5.0, 7.0], 0.0, 3.0, 3);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn boundary_values() {
        // lo is inclusive, hi exclusive.
        let h = Histogram::from_data([0.0, 3.0], 0.0, 3.0, 3);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.out_of_range().1, 1);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let h = Histogram::from_data((0..100).map(|i| i as f64 * 0.01), 0.0, 1.0, 10);
        let integral: f64 = h.density().iter().sum::<f64>() * h.bin_width();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::from_data([], 0.0, 10.0, 5);
        assert_eq!(h.bin_width(), 2.0);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(4), 9.0);
    }

    #[test]
    fn density_points_skip_empty_bins() {
        let h = Histogram::from_data([0.5, 2.5], 0.0, 3.0, 3);
        let pts = h.density_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].0, 0.5);
    }

    #[test]
    fn ascii_render_row_per_bin() {
        let h = Histogram::from_data([0.5, 0.6, 1.5], 0.0, 2.0, 2);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn bad_range_panics() {
        let _ = Histogram::from_data([], 1.0, 1.0, 3);
    }
}
