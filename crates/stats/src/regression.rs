//! Simple least-squares lines.

/// An ordinary-least-squares line fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r_squared: f64,
}

/// Fit a line through `(x, y)` pairs.
///
/// # Panics
/// With fewer than two points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - slope * p.0 - intercept).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_low_residual() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64 * 0.1;
                (x, 2.0 * x + 1.0 + if i % 2 == 0 { 0.05 } else { -0.05 })
            })
            .collect();
        let f = linear_fit(&pts);
        assert!((f.slope - 2.0).abs() < 0.05);
        assert!(f.r_squared > 0.99);
    }

    #[test]
    fn uncorrelated_data_low_r2() {
        let pts = [(0.0, 1.0), (1.0, -1.0), (2.0, 1.0), (3.0, -1.0), (4.0, 1.0)];
        let f = linear_fit(&pts);
        assert!(f.r_squared < 0.2, "r² {} for noise", f.r_squared);
    }

    #[test]
    fn constant_y_is_perfect_fit() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let f = linear_fit(&pts);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn vertical_data_rejected() {
        let _ = linear_fit(&[(1.0, 0.0), (1.0, 1.0)]);
    }
}
