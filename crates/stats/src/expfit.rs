//! Exponential-distribution fitting and goodness of fit — the machinery
//! behind the paper's central empirical finding (Fig. 5, Eq. 4):
//! "the fiber lengths follow an exponential distribution
//! p(x; λ) = λ e^(−λx)".

use crate::histogram::Histogram;
use crate::regression::{linear_fit, LineFit};

/// Result of fitting an exponential distribution to data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Maximum-likelihood rate `λ = 1 / mean`.
    pub lambda: f64,
    /// Kolmogorov–Smirnov statistic against `Exp(λ)`.
    pub ks_statistic: f64,
    /// Number of samples fitted.
    pub n: usize,
}

impl ExponentialFit {
    /// Fit by maximum likelihood and compute the KS distance.
    ///
    /// # Panics
    /// On empty data, negative values, or zero mean.
    pub fn fit(data: &[f64]) -> ExponentialFit {
        assert!(!data.is_empty(), "need data");
        assert!(
            data.iter().all(|&x| x >= 0.0),
            "exponential data must be nonnegative"
        );
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!(mean > 0.0, "all-zero data");
        let lambda = 1.0 / mean;

        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let n = sorted.len() as f64;
        let mut ks: f64 = 0.0;
        for (i, &x) in sorted.iter().enumerate() {
            let model = 1.0 - (-lambda * x).exp();
            let emp_hi = (i + 1) as f64 / n;
            let emp_lo = i as f64 / n;
            ks = ks.max((model - emp_lo).abs()).max((model - emp_hi).abs());
        }
        ExponentialFit {
            lambda,
            ks_statistic: ks,
            n: data.len(),
        }
    }

    /// The critical KS value at significance `alpha ∈ {0.05, 0.01}` for this
    /// sample size (asymptotic formula). The fit "passes" when
    /// `ks_statistic` is below this.
    pub fn ks_critical(&self, alpha: f64) -> f64 {
        let c = if alpha <= 0.01 { 1.63 } else { 1.36 };
        c / (self.n as f64).sqrt()
    }

    /// Mean of the fitted distribution (`1/λ`).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Nonparametric bootstrap confidence interval for the exponential rate λ:
/// resample the data with replacement `n_boot` times, refit by MLE, and
/// take the empirical `[α/2, 1−α/2]` quantiles. Deterministic for a given
/// `seed` (splitmix64 indices — this crate stays dependency-free).
pub fn bootstrap_lambda_ci(data: &[f64], n_boot: usize, alpha: f64, seed: u64) -> (f64, f64) {
    assert!(!data.is_empty(), "need data");
    assert!(n_boot >= 10, "need a sensible number of resamples");
    assert!(alpha > 0.0 && alpha < 1.0);
    let mut state = seed ^ 0xB007_57A9;
    let mut next_index = |n: usize| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % n as u64) as usize
    };
    let mut lambdas: Vec<f64> = (0..n_boot)
        .map(|_| {
            let mut sum = 0.0;
            for _ in 0..data.len() {
                sum += data[next_index(data.len())];
            }
            data.len() as f64 / sum.max(f64::MIN_POSITIVE)
        })
        .collect();
    lambdas.sort_by(|a, b| a.partial_cmp(b).expect("finite λ"));
    let lo_idx = ((alpha / 2.0) * (n_boot - 1) as f64).round() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * (n_boot - 1) as f64).round() as usize).min(n_boot - 1);
    (lambdas[lo_idx], lambdas[hi_idx])
}

/// Semi-log diagnostic (Fig. 5c): fit a line to `(bin center, ln density)`
/// over the occupied histogram bins. For exponential data the points are
/// collinear with slope `−λ`; the returned `r_squared` quantifies
/// straightness.
pub fn semilog_fit(data: &[f64], bins: usize) -> LineFit {
    assert!(!data.is_empty());
    let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max) * 1.0001;
    let h = Histogram::from_data(data.iter().copied(), 0.0, hi.max(1e-9), bins);
    let pts: Vec<(f64, f64)> = h
        .density_points()
        .into_iter()
        .filter(|&(_, d)| d > 0.0)
        .map(|(x, d)| (x, d.ln()))
        .collect();
    linear_fit(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_rng_testutil::exponential_samples;

    /// Local helper: deterministic exponential samples via inversion with a
    /// splitmix-style generator (no external crates in stats).
    mod tracto_rng_testutil {
        pub fn exponential_samples(n: usize, lambda: f64, seed: u64) -> Vec<f64> {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let u = ((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                    -u.ln() / lambda
                })
                .collect()
        }
    }

    #[test]
    fn mle_recovers_rate() {
        let data = exponential_samples(50_000, 0.05, 1);
        let fit = ExponentialFit::fit(&data);
        assert!((fit.lambda - 0.05).abs() / 0.05 < 0.03, "λ {}", fit.lambda);
        assert!((fit.mean() - 20.0).abs() < 1.0);
    }

    #[test]
    fn ks_passes_for_true_exponential() {
        let data = exponential_samples(5000, 0.1, 2);
        let fit = ExponentialFit::fit(&data);
        assert!(
            fit.ks_statistic < fit.ks_critical(0.01),
            "KS {} ≥ critical {}",
            fit.ks_statistic,
            fit.ks_critical(0.01)
        );
    }

    #[test]
    fn ks_rejects_uniform_data() {
        // Uniform on [0, 1] is far from its best-fit exponential.
        let data: Vec<f64> = (0..2000).map(|i| i as f64 / 2000.0).collect();
        let fit = ExponentialFit::fit(&data);
        assert!(
            fit.ks_statistic > fit.ks_critical(0.01) * 2.0,
            "KS {} unexpectedly small",
            fit.ks_statistic
        );
    }

    #[test]
    fn ks_rejects_constant_shifted_data() {
        let data = vec![10.0; 1000];
        let fit = ExponentialFit::fit(&data);
        assert!(fit.ks_statistic > 0.3);
    }

    #[test]
    fn semilog_slope_is_minus_lambda() {
        let data = exponential_samples(100_000, 0.02, 3);
        let fit = semilog_fit(&data, 30);
        assert!(
            (fit.slope + 0.02).abs() / 0.02 < 0.15,
            "semi-log slope {} (expect −0.02)",
            fit.slope
        );
        assert!(fit.r_squared > 0.95, "r² {}", fit.r_squared);
    }

    #[test]
    fn semilog_not_straight_for_normal_like_data() {
        // |N(50, 5)|-ish data via central limit of uniforms.
        let mut state = 12345u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 11) as f64) / (1u64 << 53) as f64
        };
        let data: Vec<f64> = (0..20_000)
            .map(|_| 50.0 + 5.0 * ((0..12).map(|_| next()).sum::<f64>() - 6.0))
            .collect();
        let fit = semilog_fit(&data, 30);
        // A Gaussian's log-density is quadratic, so a global line fits
        // poorly compared to the exponential case.
        assert!(
            fit.r_squared < 0.8,
            "r² {} should be low for Gaussian",
            fit.r_squared
        );
    }

    #[test]
    fn critical_values_scale_with_n() {
        let small = ExponentialFit {
            lambda: 1.0,
            ks_statistic: 0.0,
            n: 100,
        };
        let large = ExponentialFit {
            lambda: 1.0,
            ks_statistic: 0.0,
            n: 10_000,
        };
        assert!(small.ks_critical(0.05) > large.ks_critical(0.05));
        assert!(small.ks_critical(0.01) > small.ks_critical(0.05));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_data_rejected() {
        let _ = ExponentialFit::fit(&[1.0, -0.5]);
    }

    #[test]
    fn bootstrap_ci_brackets_true_rate() {
        let data = exponential_samples(4000, 0.05, 9);
        let (lo, hi) = bootstrap_lambda_ci(&data, 400, 0.05, 1);
        assert!(
            lo < 0.05 && 0.05 < hi,
            "CI [{lo:.4}, {hi:.4}] misses λ=0.05"
        );
        // CI width shrinks roughly as 1/√n.
        let small = exponential_samples(200, 0.05, 10);
        let (lo_s, hi_s) = bootstrap_lambda_ci(&small, 400, 0.05, 1);
        assert!(hi_s - lo_s > hi - lo, "smaller n must widen the CI");
    }

    #[test]
    fn bootstrap_ci_deterministic_and_ordered() {
        let data = exponential_samples(500, 0.1, 11);
        let a = bootstrap_lambda_ci(&data, 200, 0.1, 7);
        let b = bootstrap_lambda_ci(&data, 200, 0.1, 7);
        assert_eq!(a, b);
        assert!(a.0 <= a.1);
        let c = bootstrap_lambda_ci(&data, 200, 0.1, 8);
        assert_ne!(a, c, "different seed resamples differently");
    }
}
