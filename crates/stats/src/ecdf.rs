//! Empirical cumulative distributions.

/// An empirical distribution over sorted samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from data (NaNs rejected).
    pub fn new(mut data: Vec<f64>) -> Self {
        assert!(!data.is_empty(), "need data");
        assert!(data.iter().all(|x| !x.is_nan()), "NaN in data");
        data.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Ecdf { sorted: data }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples (never: construction requires data).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The survival function `P(X > x)` — the paper's Fig. 5b "cumulative
    /// distribution of fiber lengths".
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Quantile by nearest-rank (q ∈ [0, 1]).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// Evenly spaced `(x, P(X > x))` points over the data range — a Fig. 5b
    /// series.
    pub fn ccdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        let lo = self.min();
        let hi = self.max();
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.ccdf(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_step_values() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(9.0), 1.0);
    }

    #[test]
    fn ccdf_complement() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        for x in [0.0, 1.5, 2.0, 5.0] {
            assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let e = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let series = e.ccdf_series(20);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn quantiles_and_extremes() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.min(), 10.0);
        assert_eq!(e.max(), 50.0);
        assert_eq!(e.quantile(0.5), 30.0);
        assert_eq!(e.quantile(1.0), 50.0);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.mean(), 30.0);
    }

    #[test]
    fn unsorted_input_handled() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.cdf(3.0), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "need data")]
    fn empty_rejected() {
        let _ = Ecdf::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}
