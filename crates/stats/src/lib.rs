//! Distribution fitting, histograms, and utilization metrics for the
//! paper's figures:
//!
//! * [`histogram`] / [`ecdf`] — the fiber-length distribution and its
//!   "cumulative" `P(L > x)` form (Fig. 5a/5b);
//! * [`expfit`] — exponential MLE, Kolmogorov–Smirnov goodness of fit, and
//!   the semi-log regression that makes Fig. 5c a straight line;
//! * [`regression`] — simple least-squares lines;
//! * [`loadbalance`] — neighbor-variation metrics for the load-sorting
//!   analysis (Fig. 4) and wavefront/segment waste accounting (Fig. 6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecdf;
pub mod expfit;
pub mod histogram;
pub mod loadbalance;
pub mod regression;

pub use expfit::ExponentialFit;
pub use histogram::Histogram;
