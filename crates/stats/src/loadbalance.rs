//! Load-balance metrics: neighbor variation (Fig. 4) and wasted-work
//! accounting (Fig. 6).

/// Mean absolute difference between adjacent loads — the "variance between
/// the loads of neighboring threads" that persists after sorting by a stale
/// prediction (Fig. 4c).
pub fn neighbor_mean_abs_diff(loads: &[u32]) -> f64 {
    if loads.len() < 2 {
        return 0.0;
    }
    loads
        .windows(2)
        .map(|w| (w[0] as f64 - w[1] as f64).abs())
        .sum::<f64>()
        / (loads.len() - 1) as f64
}

/// Lockstep-charged lane-iterations for loads grouped into wavefronts of
/// `wavefront_size` in the given order: `Σ_w max(loads in w) × |w|`.
pub fn charged_iterations(loads: &[u32], wavefront_size: usize) -> u64 {
    assert!(wavefront_size > 0);
    loads
        .chunks(wavefront_size)
        .map(|c| *c.iter().max().expect("nonempty chunk") as u64 * c.len() as u64)
        .sum()
}

/// Useful lane-iterations: `Σ loads`.
pub fn useful_iterations(loads: &[u32]) -> u64 {
    loads.iter().map(|&l| l as u64).sum()
}

/// SIMD utilization of an ordering: useful / charged.
pub fn utilization(loads: &[u32], wavefront_size: usize) -> f64 {
    let charged = charged_iterations(loads, wavefront_size);
    if charged == 0 {
        return 1.0;
    }
    useful_iterations(loads) as f64 / charged as f64
}

/// Per-segment waste accounting in the paper's Fig. 6 rectangle model:
/// a launch with budget `b` over `n` live lanes charges `n × b` iterations
/// (the rectangle), of which the useful part is what lanes actually run.
/// Lanes retire between segments (compaction).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentWaste {
    /// Per-segment `(live lanes, budget, charged, useful)` rows.
    pub segments: Vec<(usize, u32, u64, u64)>,
    /// Total charged iterations (rectangle areas).
    pub charged: u64,
    /// Total useful iterations (area under the load curve).
    pub useful: u64,
}

impl SegmentWaste {
    /// Utilization under the rectangle model.
    pub fn utilization(&self) -> f64 {
        if self.charged == 0 {
            return 1.0;
        }
        self.useful as f64 / self.charged as f64
    }
}

/// Evaluate a segmentation (budgets array) against a load set under the
/// rectangle model of Fig. 6 (whole-launch granularity, i.e. all live lanes
/// run to the segment budget or their own completion).
pub fn rectangle_model(loads: &[u32], budgets: &[u32]) -> SegmentWaste {
    let mut remaining: Vec<u32> = loads.to_vec();
    let mut segments = Vec::with_capacity(budgets.len());
    let mut charged = 0u64;
    let mut useful = 0u64;
    for &b in budgets {
        remaining.retain(|&r| r > 0);
        if remaining.is_empty() {
            break;
        }
        let n = remaining.len();
        let seg_charged = n as u64 * b as u64;
        let seg_useful: u64 = remaining.iter().map(|&r| r.min(b) as u64).sum();
        charged += seg_charged;
        useful += seg_useful;
        segments.push((n, b, seg_charged, seg_useful));
        for r in &mut remaining {
            *r = r.saturating_sub(b);
        }
    }
    SegmentWaste {
        segments,
        charged,
        useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neighbor_diff_zero_for_uniform() {
        assert_eq!(neighbor_mean_abs_diff(&[5, 5, 5, 5]), 0.0);
        assert_eq!(neighbor_mean_abs_diff(&[7]), 0.0);
    }

    #[test]
    fn neighbor_diff_drops_after_sorting() {
        let loads = [10u32, 1, 9, 2, 8, 3, 7, 4];
        let mut sorted = loads;
        sorted.sort_unstable();
        assert!(neighbor_mean_abs_diff(&sorted) < neighbor_mean_abs_diff(&loads));
    }

    #[test]
    fn charged_is_wavefront_max_times_width() {
        // wavefronts of 4: [9,1,1,1] → 36; [2,2,2,2] → 8.
        let loads = [9u32, 1, 1, 1, 2, 2, 2, 2];
        assert_eq!(charged_iterations(&loads, 4), 36 + 8);
        assert_eq!(useful_iterations(&loads), 12 + 8);
    }

    #[test]
    fn charged_handles_partial_last_wavefront() {
        let loads = [3u32, 5, 7];
        assert_eq!(charged_iterations(&loads, 2), 5 * 2 + 7);
    }

    #[test]
    fn utilization_one_for_balanced() {
        assert_eq!(utilization(&[4, 4, 4, 4], 4), 1.0);
        assert_eq!(utilization(&[], 4), 1.0);
    }

    #[test]
    fn sorting_improves_utilization() {
        let loads: Vec<u32> = (0..64).map(|i| (i * 7 + 3) % 50 + 1).collect();
        let mut sorted = loads.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            utilization(&sorted, 8) >= utilization(&loads, 8),
            "descending sort packs similar loads into wavefronts"
        );
    }

    #[test]
    fn rectangle_model_single_segment() {
        let loads = [10u32, 2, 5];
        let w = rectangle_model(&loads, &[10]);
        assert_eq!(w.charged, 30);
        assert_eq!(w.useful, 17);
        assert_eq!(w.segments.len(), 1);
        assert!((w.utilization() - 17.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn rectangle_model_compaction_reduces_waste() {
        let loads = [10u32, 2, 5];
        // Segments {2, 3, 5}: seg1 charges 3×2 (all live), seg2 charges 2×3
        // (one retired), seg3 charges 1×5.
        let w = rectangle_model(&loads, &[2, 3, 5]);
        assert_eq!(w.segments[0], (3, 2, 6, 6));
        assert_eq!(w.segments[1], (2, 3, 6, 6));
        assert_eq!(w.segments[2], (1, 5, 5, 5));
        assert_eq!(w.charged, 17);
        assert_eq!(w.useful, 17);
        assert_eq!(w.utilization(), 1.0);
    }

    #[test]
    fn rectangle_model_stops_when_all_retired() {
        let loads = [2u32, 2];
        let w = rectangle_model(&loads, &[5, 5, 5]);
        assert_eq!(w.segments.len(), 1);
    }

    #[test]
    fn increasing_budgets_beat_single_for_exponential_loads() {
        // Exponential-ish loads: many short, few long — the paper's setting.
        let loads: Vec<u32> = (0..256)
            .map(|i| {
                let u = (i as f64 + 0.5) / 256.0;
                (-u.ln() * 30.0).ceil() as u32 + 1
            })
            .collect();
        let max = *loads.iter().max().unwrap();
        let single = rectangle_model(&loads, &[max]);
        let increasing = rectangle_model(&loads, &[1, 2, 5, 10, 20, 50, 100, 200, max]);
        assert!(
            increasing.charged < single.charged,
            "increasing-interval segmentation must cut charged work: {} vs {}",
            increasing.charged,
            single.charged
        );
        assert_eq!(increasing.useful, single.useful);
    }
}
