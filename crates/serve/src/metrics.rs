//! Service observability: counters accumulated by the workers, exposed as
//! point-in-time snapshots.

use crate::cache::CacheStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counter block the workers write into.
#[derive(Default)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub batches: AtomicU64,
    pub batch_jobs: AtomicU64,
    pub lanes_tracked: AtomicU64,
    pub launches: AtomicU64,
    pub estimations_run: AtomicU64,
    pub faults_injected: AtomicU64,
    pub device_retries: AtomicU64,
    pub job_retries: AtomicU64,
    pub failovers: AtomicU64,
    // Gauges, not counters: the batch worker stores the pool's current shape.
    pub devices_alive: AtomicU64,
    pub devices_total: AtomicU64,
    // f64 accumulators (simulated seconds, utilization sums) under a lock.
    pub accum: Mutex<Accum>,
}

#[derive(Default, Clone, Copy)]
pub(crate) struct Accum {
    pub tracking_sim_s: f64,
    pub tracking_serial_sim_s: f64,
    pub overlap_saved_sim_s: f64,
    pub estimation_sim_s: f64,
    pub utilization_sum: f64,
    pub utilization_batches: u64,
}

/// One batch's contribution to the counters, taken from its
/// [`BatchReport`](crate::batch::BatchReport).
pub(crate) struct BatchSample {
    pub jobs: u64,
    pub lanes: u64,
    pub launches: u64,
    pub wall_s: f64,
    pub serial_s: f64,
    pub overlap_saved_s: f64,
    pub utilization: f64,
}

impl Metrics {
    pub(crate) fn add_batch(&self, sample: BatchSample) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(sample.jobs, Ordering::Relaxed);
        self.lanes_tracked
            .fetch_add(sample.lanes, Ordering::Relaxed);
        self.launches.fetch_add(sample.launches, Ordering::Relaxed);
        let mut acc = self.accum.lock();
        acc.tracking_sim_s += sample.wall_s;
        acc.tracking_serial_sim_s += sample.serial_s;
        acc.overlap_saved_sim_s += sample.overlap_saved_s;
        acc.utilization_sum += sample.utilization;
        acc.utilization_batches += 1;
    }
}

/// A point-in-time view of the service's health and throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs accepted (both kinds).
    pub submitted: u64,
    /// Jobs fulfilled successfully.
    pub completed: u64,
    /// Jobs that failed outright.
    pub failed: u64,
    /// Jobs cancelled by their client before running.
    pub cancelled: u64,
    /// Jobs dropped for missing their deadline.
    pub deadline_exceeded: u64,
    /// Jobs currently queued or running.
    pub in_flight: u64,
    /// Batched tracking rounds executed.
    pub batches: u64,
    /// Jobs that rode in those batches.
    pub batch_jobs: u64,
    /// Mean jobs per batch (continuous-batching occupancy).
    pub mean_batch_occupancy: f64,
    /// Total lanes tracked across all batches.
    pub lanes_tracked: u64,
    /// GPU launches issued by the batch worker.
    pub launches: u64,
    /// Mean per-batch wavefront (SIMD) utilization.
    pub mean_wavefront_utilization: f64,
    /// Fresh MCMC estimations executed (cache misses that did work).
    pub estimations_run: u64,
    /// Faults the simulated device pool injected (from its [`FaultPlan`]).
    ///
    /// [`FaultPlan`]: tracto_gpu_sim::FaultPlan
    pub faults_injected: u64,
    /// Transient device faults the pool absorbed by retrying in place.
    pub device_retries: u64,
    /// Whole jobs re-queued with backoff after a device fault escaped the
    /// pool (e.g. an allocation failure).
    pub job_retries: u64,
    /// Device losses survived by re-partitioning work onto the rest of the
    /// pool.
    pub failovers: u64,
    /// Devices currently accepting work.
    pub devices_alive: u64,
    /// Devices the pool started with.
    pub devices_total: u64,
    /// Simulated seconds spent in batched tracking.
    pub tracking_sim_s: f64,
    /// Simulated wall time hidden by multi-stream overlap across all
    /// batches (`serial − wall`, summed; 0 when serving serialized).
    pub overlap_saved_sim_s: f64,
    /// Stream occupancy `serial / wall` over all batched tracking
    /// (≥ 1; exactly 1.0 when serving serialized).
    pub stream_occupancy: f64,
    /// Simulated seconds spent in estimation.
    pub estimation_sim_s: f64,
    /// Sample-cache statistics (hits, misses, bytes, evictions).
    pub cache: CacheStats,
}

impl Metrics {
    pub(crate) fn snapshot(&self, in_flight: u64, cache: CacheStats) -> MetricsSnapshot {
        let acc = *self.accum.lock();
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_jobs = self.batch_jobs.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            in_flight,
            batches,
            batch_jobs,
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batch_jobs as f64 / batches as f64
            },
            lanes_tracked: self.lanes_tracked.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            mean_wavefront_utilization: if acc.utilization_batches == 0 {
                0.0
            } else {
                acc.utilization_sum / acc.utilization_batches as f64
            },
            estimations_run: self.estimations_run.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            device_retries: self.device_retries.load(Ordering::Relaxed),
            job_retries: self.job_retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            devices_alive: self.devices_alive.load(Ordering::Relaxed),
            devices_total: self.devices_total.load(Ordering::Relaxed),
            tracking_sim_s: acc.tracking_sim_s,
            overlap_saved_sim_s: acc.overlap_saved_sim_s,
            stream_occupancy: if acc.tracking_sim_s <= 0.0 {
                1.0
            } else {
                acc.tracking_serial_sim_s / acc.tracking_sim_s
            },
            estimation_sim_s: acc.estimation_sim_s,
            cache,
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} cancelled, {} past deadline, {} in flight",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline_exceeded,
            self.in_flight
        )?;
        writeln!(
            f,
            "batches: {} ({} jobs, mean occupancy {:.2}, {} lanes, {} launches, wavefront util {:.3})",
            self.batches,
            self.batch_jobs,
            self.mean_batch_occupancy,
            self.lanes_tracked,
            self.launches,
            self.mean_wavefront_utilization
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses (rate {:.2}), {} entries, {} bytes, {} evictions",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.entries,
            self.cache.bytes,
            self.cache.evictions
        )?;
        writeln!(
            f,
            "faults: {} injected, {} device retries, {} job retries, {} failovers, {}/{} devices alive",
            self.faults_injected,
            self.device_retries,
            self.job_retries,
            self.failovers,
            self.devices_alive,
            self.devices_total
        )?;
        writeln!(
            f,
            "streams: {:.4} s hidden by overlap, occupancy {:.3}",
            self.overlap_saved_sim_s, self.stream_occupancy
        )?;
        write!(
            f,
            "simulated: {:.4} s tracking, {:.4} s estimation ({} MCMC runs)",
            self.tracking_sim_s, self.estimation_sim_s, self.estimations_run
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(jobs: u64, lanes: u64, launches: u64, wall_s: f64, util: f64) -> BatchSample {
        BatchSample {
            jobs,
            lanes,
            launches,
            wall_s,
            serial_s: wall_s,
            overlap_saved_s: 0.0,
            utilization: util,
        }
    }

    #[test]
    fn occupancy_and_utilization_means() {
        let m = Metrics::default();
        m.add_batch(sample(4, 100, 10, 1.5, 0.8));
        m.add_batch(sample(2, 50, 5, 0.5, 0.6));
        let snap = m.snapshot(
            0,
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                bytes: 0,
                entries: 0,
            },
        );
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert!((snap.mean_wavefront_utilization - 0.7).abs() < 1e-12);
        assert!((snap.tracking_sim_s - 2.0).abs() < 1e-12);
        assert_eq!(snap.lanes_tracked, 150);
        assert_eq!(snap.overlap_saved_sim_s, 0.0);
        assert!((snap.stream_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_savings_accumulate_into_occupancy() {
        let m = Metrics::default();
        m.add_batch(BatchSample {
            jobs: 3,
            lanes: 60,
            launches: 6,
            wall_s: 1.0,
            serial_s: 1.5,
            overlap_saved_s: 0.5,
            utilization: 0.9,
        });
        m.add_batch(BatchSample {
            jobs: 1,
            lanes: 20,
            launches: 2,
            wall_s: 1.0,
            serial_s: 1.5,
            overlap_saved_s: 0.5,
            utilization: 0.9,
        });
        let snap = m.snapshot(
            0,
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                bytes: 0,
                entries: 0,
            },
        );
        assert!((snap.overlap_saved_sim_s - 1.0).abs() < 1e-12);
        assert!((snap.stream_occupancy - 1.5).abs() < 1e-12);
        let text = snap.to_string();
        assert!(text.contains("hidden by overlap"));
        assert!(text.contains("occupancy 1.500"));
    }

    #[test]
    fn display_is_complete() {
        let m = Metrics::default();
        m.add_batch(sample(1, 10, 3, 0.1, 0.9));
        let snap = m.snapshot(
            2,
            CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
                bytes: 64,
                entries: 1,
            },
        );
        let text = snap.to_string();
        assert!(text.contains("in flight"));
        assert!(text.contains("occupancy"));
        assert!(text.contains("0.75") || text.contains("rate"));
    }
}
