//! Service observability: counters accumulated by the workers, exposed as
//! point-in-time snapshots.
//!
//! The SLO-bearing counters (settlements, deadline hits, sheds, demotions,
//! per-tenant totals) are additionally persisted to `metrics.json` under
//! the service's `--state-dir` (see [`MetricsPersist`]), so they survive a
//! `kill -9` and a dashboard never watches them restart from zero. The
//! job journal cannot carry them: it compacts terminal records away on
//! every restart, which is exactly the history these totals summarize.

use crate::cache::CacheStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use tracto_trace::json::{escape_into, parse, Json};

/// Shared counter block the workers write into.
#[derive(Default)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub batches: AtomicU64,
    pub batch_jobs: AtomicU64,
    pub lanes_tracked: AtomicU64,
    pub launches: AtomicU64,
    pub estimations_run: AtomicU64,
    pub faults_injected: AtomicU64,
    pub device_retries: AtomicU64,
    pub job_retries: AtomicU64,
    pub failovers: AtomicU64,
    // Overload-ladder counters.
    pub deadline_hits: AtomicU64,
    pub sheds: AtomicU64,
    pub demotions: AtomicU64,
    pub rate_limited: AtomicU64,
    // Gauges, not counters: the batch worker stores the pool's current shape.
    pub devices_alive: AtomicU64,
    pub devices_total: AtomicU64,
    // f64 accumulators (simulated seconds, utilization sums) under a lock.
    pub accum: Mutex<Accum>,
    /// Per-tenant settlement counters, keyed by tenant name. A BTreeMap so
    /// snapshots (and the persisted file) list tenants in a stable order.
    pub tenants: Mutex<BTreeMap<String, TenantCounters>>,
}

/// One tenant's settlement totals.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TenantCounters {
    pub submitted: u64,
    pub completed: u64,
    pub shed: u64,
}

#[derive(Default, Clone, Copy)]
pub(crate) struct Accum {
    pub tracking_sim_s: f64,
    pub tracking_serial_sim_s: f64,
    pub overlap_saved_sim_s: f64,
    pub estimation_sim_s: f64,
    pub utilization_sum: f64,
    pub utilization_batches: u64,
}

/// One batch's contribution to the counters, taken from its
/// [`BatchReport`](crate::batch::BatchReport).
pub(crate) struct BatchSample {
    pub jobs: u64,
    pub lanes: u64,
    pub launches: u64,
    pub wall_s: f64,
    pub serial_s: f64,
    pub overlap_saved_s: f64,
    pub utilization: f64,
}

impl Metrics {
    pub(crate) fn tenant_submitted(&self, name: &str) {
        self.tenants
            .lock()
            .entry(name.to_string())
            .or_default()
            .submitted += 1;
    }

    pub(crate) fn tenant_completed(&self, name: &str) {
        self.tenants
            .lock()
            .entry(name.to_string())
            .or_default()
            .completed += 1;
    }

    pub(crate) fn tenant_shed(&self, name: &str) {
        self.tenants
            .lock()
            .entry(name.to_string())
            .or_default()
            .shed += 1;
    }

    pub(crate) fn add_batch(&self, sample: BatchSample) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(sample.jobs, Ordering::Relaxed);
        self.lanes_tracked
            .fetch_add(sample.lanes, Ordering::Relaxed);
        self.launches.fetch_add(sample.launches, Ordering::Relaxed);
        let mut acc = self.accum.lock();
        acc.tracking_sim_s += sample.wall_s;
        acc.tracking_serial_sim_s += sample.serial_s;
        acc.overlap_saved_sim_s += sample.overlap_saved_s;
        acc.utilization_sum += sample.utilization;
        acc.utilization_batches += 1;
    }
}

/// A point-in-time view of the service's health and throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Jobs accepted (both kinds).
    pub submitted: u64,
    /// Jobs fulfilled successfully.
    pub completed: u64,
    /// Jobs that failed outright.
    pub failed: u64,
    /// Jobs cancelled by their client before running.
    pub cancelled: u64,
    /// Jobs dropped for missing their deadline.
    pub deadline_exceeded: u64,
    /// Jobs currently queued or running.
    pub in_flight: u64,
    /// Batched tracking rounds executed.
    pub batches: u64,
    /// Jobs that rode in those batches.
    pub batch_jobs: u64,
    /// Mean jobs per batch (continuous-batching occupancy).
    pub mean_batch_occupancy: f64,
    /// Total lanes tracked across all batches.
    pub lanes_tracked: u64,
    /// GPU launches issued by the batch worker.
    pub launches: u64,
    /// Mean per-batch wavefront (SIMD) utilization.
    pub mean_wavefront_utilization: f64,
    /// Fresh MCMC estimations executed (cache misses that did work).
    pub estimations_run: u64,
    /// Faults the simulated device pool injected (from its [`FaultPlan`]).
    ///
    /// [`FaultPlan`]: tracto_gpu_sim::FaultPlan
    pub faults_injected: u64,
    /// Transient device faults the pool absorbed by retrying in place.
    pub device_retries: u64,
    /// Whole jobs re-queued with backoff after a device fault escaped the
    /// pool (e.g. an allocation failure).
    pub job_retries: u64,
    /// Device losses survived by re-partitioning work onto the rest of the
    /// pool.
    pub failovers: u64,
    /// Devices currently accepting work.
    pub devices_alive: u64,
    /// Devices the pool started with.
    pub devices_total: u64,
    /// Simulated seconds spent in batched tracking.
    pub tracking_sim_s: f64,
    /// Simulated wall time hidden by multi-stream overlap across all
    /// batches (`serial − wall`, summed; 0 when serving serialized).
    pub overlap_saved_sim_s: f64,
    /// Stream occupancy `serial / wall` over all batched tracking
    /// (≥ 1; exactly 1.0 when serving serialized).
    pub stream_occupancy: f64,
    /// Simulated seconds spent in estimation.
    pub estimation_sim_s: f64,
    /// Sample-cache statistics (hits, misses, bytes, evictions).
    pub cache: CacheStats,
    /// Jobs that completed *within* their requested deadline (jobs with no
    /// deadline never count here).
    pub deadline_hits: u64,
    /// Jobs refused by the overload ladder because their deadline was
    /// provably infeasible at submit or admission time.
    pub sheds: u64,
    /// Low-priority MCMC jobs demoted to the analytic tier under load.
    pub demotions: u64,
    /// Jobs refused by a tenant's token-bucket rate limit.
    pub rate_limited: u64,
    /// Per-tenant settlement totals, sorted by tenant name.
    pub tenants: Vec<TenantSnapshot>,
}

/// One tenant's row in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name (`default` for unlabelled traffic).
    pub name: String,
    /// Jobs this tenant submitted.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs refused by the overload ladder (shed or rate-limited).
    pub shed: u64,
}

impl Metrics {
    pub(crate) fn snapshot(&self, in_flight: u64, cache: CacheStats) -> MetricsSnapshot {
        let acc = *self.accum.lock();
        let batches = self.batches.load(Ordering::Relaxed);
        let batch_jobs = self.batch_jobs.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            in_flight,
            batches,
            batch_jobs,
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batch_jobs as f64 / batches as f64
            },
            lanes_tracked: self.lanes_tracked.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            mean_wavefront_utilization: if acc.utilization_batches == 0 {
                0.0
            } else {
                acc.utilization_sum / acc.utilization_batches as f64
            },
            estimations_run: self.estimations_run.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            device_retries: self.device_retries.load(Ordering::Relaxed),
            job_retries: self.job_retries.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            devices_alive: self.devices_alive.load(Ordering::Relaxed),
            devices_total: self.devices_total.load(Ordering::Relaxed),
            tracking_sim_s: acc.tracking_sim_s,
            overlap_saved_sim_s: acc.overlap_saved_sim_s,
            stream_occupancy: if acc.tracking_sim_s <= 0.0 {
                1.0
            } else {
                acc.tracking_serial_sim_s / acc.tracking_sim_s
            },
            estimation_sim_s: acc.estimation_sim_s,
            cache,
            deadline_hits: self.deadline_hits.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            rate_limited: self.rate_limited.load(Ordering::Relaxed),
            tenants: self
                .tenants
                .lock()
                .iter()
                .map(|(name, t)| TenantSnapshot {
                    name: name.clone(),
                    submitted: t.submitted,
                    completed: t.completed,
                    shed: t.shed,
                })
                .collect(),
        }
    }
}

/// Durable home for the SLO counters: `metrics.json` under `--state-dir`.
///
/// [`save`](Self::save) rewrites the file with the same atomic discipline
/// as journal compaction (write-tmp → fsync → rename → dir fsync), so a
/// `kill -9` leaves either the old totals or the new ones, never a torn
/// file. [`seed`](Self::seed) loads the totals back at startup and adds
/// them into a fresh [`Metrics`] block; the live counters then advance
/// from where the dead process left off. Only settlement totals persist —
/// throughput stats (batches, lanes, sim time) describe a process
/// lifetime and deliberately restart from zero.
pub(crate) struct MetricsPersist {
    dir: PathBuf,
    path: PathBuf,
    tmp: PathBuf,
    lock: Mutex<()>,
}

impl MetricsPersist {
    pub(crate) fn open(dir: &Path) -> MetricsPersist {
        MetricsPersist {
            dir: dir.to_path_buf(),
            path: dir.join("metrics.json"),
            tmp: dir.join("metrics.json.tmp"),
            lock: Mutex::new(()),
        }
    }

    /// Add the persisted totals (if any) into `metrics`. Call once, before
    /// any worker can write counters. A missing or torn file seeds nothing
    /// — recovery must never wedge on observability state.
    pub(crate) fn seed(&self, metrics: &Metrics) {
        let Ok(text) = fs::read_to_string(&self.path) else {
            return;
        };
        let Ok(v) = parse(&text) else { return };
        let load = |key: &str| -> u64 {
            v.get(key)
                .and_then(Json::as_f64)
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map_or(0, |n| n as u64)
        };
        for (key, counter) in self.persisted_fields(metrics) {
            counter.fetch_add(load(key), Ordering::Relaxed);
        }
        if let Some(Json::Array(rows)) = v.get("tenants") {
            let mut tenants = metrics.tenants.lock();
            for row in rows {
                let Some(name) = row.get("name").and_then(Json::as_str) else {
                    continue;
                };
                let get = |key: &str| -> u64 {
                    row.get(key).and_then(Json::as_f64).map_or(0, |n| n as u64)
                };
                let t = tenants.entry(name.to_string()).or_default();
                t.submitted += get("submitted");
                t.completed += get("completed");
                t.shed += get("shed");
            }
        }
    }

    /// Persist the current SLO totals. Best-effort like journal appends: a
    /// full disk degrades metrics durability, never the jobs themselves.
    pub(crate) fn save(&self, metrics: &Metrics) {
        let _guard = self.lock.lock();
        let mut out = String::with_capacity(256);
        out.push('{');
        for (i, (key, counter)) in self.persisted_fields(metrics).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, key);
            out.push(':');
            out.push_str(&counter.load(Ordering::Relaxed).to_string());
        }
        out.push_str(",\"tenants\":[");
        {
            let tenants = metrics.tenants.lock();
            for (i, (name, t)) in tenants.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                escape_into(&mut out, name);
                out.push_str(&format!(
                    ",\"submitted\":{},\"completed\":{},\"shed\":{}}}",
                    t.submitted, t.completed, t.shed
                ));
            }
        }
        out.push_str("]}");
        let written = File::create(&self.tmp)
            .and_then(|mut f| {
                f.write_all(out.as_bytes())?;
                f.sync_all()
            })
            .and_then(|_| fs::rename(&self.tmp, &self.path));
        if written.is_ok() {
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
    }

    fn persisted_fields<'m>(&self, m: &'m Metrics) -> [(&'static str, &'m AtomicU64); 9] {
        [
            ("submitted", &m.submitted),
            ("completed", &m.completed),
            ("failed", &m.failed),
            ("cancelled", &m.cancelled),
            ("deadline_exceeded", &m.deadline_exceeded),
            ("deadline_hits", &m.deadline_hits),
            ("sheds", &m.sheds),
            ("demotions", &m.demotions),
            ("rate_limited", &m.rate_limited),
        ]
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} cancelled, {} past deadline, {} in flight",
            self.submitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.deadline_exceeded,
            self.in_flight
        )?;
        writeln!(
            f,
            "batches: {} ({} jobs, mean occupancy {:.2}, {} lanes, {} launches, wavefront util {:.3})",
            self.batches,
            self.batch_jobs,
            self.mean_batch_occupancy,
            self.lanes_tracked,
            self.launches,
            self.mean_wavefront_utilization
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses (rate {:.2}), {} entries, {} bytes, {} evictions",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate(),
            self.cache.entries,
            self.cache.bytes,
            self.cache.evictions
        )?;
        writeln!(
            f,
            "faults: {} injected, {} device retries, {} job retries, {} failovers, {}/{} devices alive",
            self.faults_injected,
            self.device_retries,
            self.job_retries,
            self.failovers,
            self.devices_alive,
            self.devices_total
        )?;
        writeln!(
            f,
            "overload: {} deadline hits, {} sheds, {} demotions, {} rate limited",
            self.deadline_hits, self.sheds, self.demotions, self.rate_limited
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "tenant {}: {} submitted, {} completed, {} shed",
                t.name, t.submitted, t.completed, t.shed
            )?;
        }
        writeln!(
            f,
            "streams: {:.4} s hidden by overlap, occupancy {:.3}",
            self.overlap_saved_sim_s, self.stream_occupancy
        )?;
        write!(
            f,
            "simulated: {:.4} s tracking, {:.4} s estimation ({} MCMC runs)",
            self.tracking_sim_s, self.estimation_sim_s, self.estimations_run
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(jobs: u64, lanes: u64, launches: u64, wall_s: f64, util: f64) -> BatchSample {
        BatchSample {
            jobs,
            lanes,
            launches,
            wall_s,
            serial_s: wall_s,
            overlap_saved_s: 0.0,
            utilization: util,
        }
    }

    #[test]
    fn occupancy_and_utilization_means() {
        let m = Metrics::default();
        m.add_batch(sample(4, 100, 10, 1.5, 0.8));
        m.add_batch(sample(2, 50, 5, 0.5, 0.6));
        let snap = m.snapshot(
            0,
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                bytes: 0,
                entries: 0,
            },
        );
        assert_eq!(snap.batches, 2);
        assert!((snap.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert!((snap.mean_wavefront_utilization - 0.7).abs() < 1e-12);
        assert!((snap.tracking_sim_s - 2.0).abs() < 1e-12);
        assert_eq!(snap.lanes_tracked, 150);
        assert_eq!(snap.overlap_saved_sim_s, 0.0);
        assert!((snap.stream_occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_savings_accumulate_into_occupancy() {
        let m = Metrics::default();
        m.add_batch(BatchSample {
            jobs: 3,
            lanes: 60,
            launches: 6,
            wall_s: 1.0,
            serial_s: 1.5,
            overlap_saved_s: 0.5,
            utilization: 0.9,
        });
        m.add_batch(BatchSample {
            jobs: 1,
            lanes: 20,
            launches: 2,
            wall_s: 1.0,
            serial_s: 1.5,
            overlap_saved_s: 0.5,
            utilization: 0.9,
        });
        let snap = m.snapshot(
            0,
            CacheStats {
                hits: 0,
                misses: 0,
                evictions: 0,
                bytes: 0,
                entries: 0,
            },
        );
        assert!((snap.overlap_saved_sim_s - 1.0).abs() < 1e-12);
        assert!((snap.stream_occupancy - 1.5).abs() < 1e-12);
        let text = snap.to_string();
        assert!(text.contains("hidden by overlap"));
        assert!(text.contains("occupancy 1.500"));
    }

    #[test]
    fn slo_counters_persist_and_seed_across_a_restart() {
        let dir = std::env::temp_dir().join(format!(
            "tracto-metrics-persist-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let persist = MetricsPersist::open(&dir);
        let m = Metrics::default();
        m.submitted.store(7, Ordering::Relaxed);
        m.completed.store(5, Ordering::Relaxed);
        m.deadline_hits.store(4, Ordering::Relaxed);
        m.sheds.store(2, Ordering::Relaxed);
        m.demotions.store(1, Ordering::Relaxed);
        m.tenant_submitted("hospital-a");
        m.tenant_submitted("hospital-a");
        m.tenant_completed("hospital-a");
        m.tenant_shed("default");
        persist.save(&m);
        // A restart: a fresh counter block seeded from disk continues the
        // totals instead of restarting from zero.
        let fresh = Metrics::default();
        MetricsPersist::open(&dir).seed(&fresh);
        assert_eq!(fresh.submitted.load(Ordering::Relaxed), 7);
        assert_eq!(fresh.completed.load(Ordering::Relaxed), 5);
        assert_eq!(fresh.deadline_hits.load(Ordering::Relaxed), 4);
        assert_eq!(fresh.sheds.load(Ordering::Relaxed), 2);
        assert_eq!(fresh.demotions.load(Ordering::Relaxed), 1);
        {
            let tenants = fresh.tenants.lock();
            assert_eq!(tenants["hospital-a"].submitted, 2);
            assert_eq!(tenants["hospital-a"].completed, 1);
            assert_eq!(tenants["default"].shed, 1);
        }
        // Post-restart work accumulates on top and re-persists monotone.
        fresh.completed.fetch_add(3, Ordering::Relaxed);
        fresh.tenant_completed("hospital-a");
        MetricsPersist::open(&dir).save(&fresh);
        let third = Metrics::default();
        MetricsPersist::open(&dir).seed(&third);
        assert_eq!(third.completed.load(Ordering::Relaxed), 8);
        assert_eq!(third.tenants.lock()["hospital-a"].completed, 2);
        // A torn file (crash mid-write would be prevented by the rename,
        // but defend anyway) seeds nothing rather than wedging startup.
        fs::write(dir.join("metrics.json"), "{\"completed\":5,").unwrap();
        let torn = Metrics::default();
        MetricsPersist::open(&dir).seed(&torn);
        assert_eq!(torn.completed.load(Ordering::Relaxed), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_carries_overload_counters_and_tenants() {
        let m = Metrics::default();
        m.deadline_hits.store(6, Ordering::Relaxed);
        m.sheds.store(3, Ordering::Relaxed);
        m.rate_limited.store(2, Ordering::Relaxed);
        m.tenant_submitted("b-lab");
        m.tenant_submitted("a-lab");
        let snap = m.snapshot(0, CacheStats::default());
        assert_eq!(snap.deadline_hits, 6);
        assert_eq!(snap.sheds, 3);
        assert_eq!(snap.rate_limited, 2);
        // Stable (sorted) tenant order.
        let names: Vec<&str> = snap.tenants.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, ["a-lab", "b-lab"]);
        let text = snap.to_string();
        assert!(text.contains("overload: 6 deadline hits, 3 sheds"));
        assert!(text.contains("tenant a-lab: 1 submitted"));
    }

    #[test]
    fn display_is_complete() {
        let m = Metrics::default();
        m.add_batch(sample(1, 10, 3, 0.1, 0.9));
        let snap = m.snapshot(
            2,
            CacheStats {
                hits: 3,
                misses: 1,
                evictions: 0,
                bytes: 64,
                entries: 1,
            },
        );
        let text = snap.to_string();
        assert!(text.contains("in flight"));
        assert!(text.contains("occupancy"));
        assert!(text.contains("0.75") || text.contains("rate"));
    }
}
