//! The socket front end: binds the endpoint, owns shared server state,
//! and hosts the connection [`reactor`](crate::reactor).
//!
//! Since protocol v2 the front end is event-driven: instead of one
//! blocking handler thread per connection, a single nonblocking IO
//! thread multiplexes every client (plus a small fixed worker pool for
//! the one verb that blocks, `drain`). This file keeps the pieces that
//! are about the *endpoint* rather than the connections: the stale-
//! socket replacement dance at bind, the public [`SocketServer`] API,
//! and teardown — stop raises a flag, the reactor closes every live
//! connection and exits, and the threads are joined here, so no
//! descriptor outlives [`SocketServer::stop`].
//!
//! Error discipline follows the protocol contract: a request the server
//! cannot *decode* is answered with an `error` response and the
//! connection survives (frame boundaries are intact); a *framing*
//! violation — bad length prefix, oversized frame — tears the connection
//! down. A client that disconnects mid-job loses only its handle: the
//! job itself runs to completion and keeps warming the cache.

use crate::events::EventBus;
use crate::job::{JobOutput, Ticket};
use crate::metrics::MetricsSnapshot;
use crate::reactor;
use crate::service::TractoService;
use crate::uploads::UploadStore;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use tracto_proto::{Endpoint, MetricsWire};
use tracto_trace::{TractoError, TractoResult};

pub(crate) enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    pub(crate) fn accept(&self) -> std::io::Result<ConnStream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| ConnStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| ConnStream::Tcp(s)),
        }
    }

    pub(crate) fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

/// Bind an endpoint, returning the listener, the endpoint actually bound
/// (for TCP a `:0` request carries the kernel-assigned port back), and the
/// socket file to unlink at teardown (Unix only). For a Unix endpoint a
/// stale socket file left by a crashed process (one nothing answers on) is
/// replaced; a *live* socket is an error. Shared by [`SocketServer`] and
/// the fleet coordinator ([`crate::fleet::Fleet`]).
pub(crate) fn bind_endpoint(
    endpoint: &Endpoint,
) -> TractoResult<(Listener, Endpoint, Option<PathBuf>)> {
    match endpoint {
        Endpoint::Unix(path) => {
            let listener = match UnixListener::bind(path) {
                Ok(l) => l,
                Err(e) if e.kind() == IoKind::AddrInUse => {
                    if UnixStream::connect(path).is_ok() {
                        return Err(TractoError::io(
                            format!("bind {}: another server is listening", path.display()),
                            e,
                        ));
                    }
                    std::fs::remove_file(path)
                        .map_err(|e| TractoError::io("remove stale socket", e))?;
                    UnixListener::bind(path).map_err(|e| TractoError::io("bind unix socket", e))?
                }
                Err(e) => return Err(TractoError::io("bind unix socket", e)),
            };
            Ok((
                Listener::Unix(listener),
                Endpoint::Unix(path.clone()),
                Some(path.clone()),
            ))
        }
        Endpoint::Tcp(addr) => {
            let listener =
                TcpListener::bind(addr).map_err(|e| TractoError::io("bind tcp socket", e))?;
            let actual = listener
                .local_addr()
                .map(|a| Endpoint::Tcp(a.to_string()))
                .unwrap_or_else(|_| Endpoint::Tcp(addr.clone()));
            Ok((Listener::Tcp(listener), actual, None))
        }
    }
}

pub(crate) enum ConnStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ConnStream {
    pub(crate) fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_nonblocking(nb),
            ConnStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    /// Bound how long a blocking `read` waits — lets a thread-per-
    /// connection handler (the fleet coordinator) poll its stop flag.
    pub(crate) fn set_read_timeout(&self, dur: Option<std::time::Duration>) -> std::io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_read_timeout(dur),
            ConnStream::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Half-close both directions so the peer observes a clean
    /// end-of-stream.
    pub(crate) fn shutdown_both(&self) {
        let _ = match self {
            ConnStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            ConnStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.read(buf),
            ConnStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.write(buf),
            ConnStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.flush(),
            ConnStream::Tcp(s) => s.flush(),
        }
    }
}

pub(crate) struct ServerState {
    pub(crate) service: Arc<TractoService>,
    /// Tickets by wire job id, shared across connections: a job submitted
    /// on one connection can be polled or cancelled from another.
    pub(crate) jobs: Mutex<HashMap<u64, Ticket<JobOutput>>>,
    pub(crate) next_conn: AtomicU64,
    pub(crate) remote_jobs: AtomicU64,
    /// `status` + `await` requests served — the requests v2 subscriptions
    /// make unnecessary. The soak test asserts this stays at zero when
    /// every client follows pushed events.
    pub(crate) polls: AtomicU64,
    pub(crate) stop: AtomicBool,
    pub(crate) shutdown_requested: Mutex<bool>,
    pub(crate) shutdown_cv: Condvar,
    /// Staged/committed volume uploads; `None` without `--state-dir`.
    pub(crate) uploads: Option<Arc<UploadStore>>,
    /// The service's lifecycle event bus, drained by the reactor.
    pub(crate) bus: Arc<EventBus>,
    /// This host's fleet member name (`serve --member`); `None` when
    /// standalone. Echoed in `hello` and `pong`.
    pub(crate) member: Option<String>,
    /// Replicated journals from other members; `None` without
    /// `--state-dir`. Serves `replicate` appends and `takeover` replays.
    pub(crate) replica: Option<Arc<crate::fleet::ReplicaStore>>,
}

impl ServerState {
    pub(crate) fn request_shutdown(&self) {
        let mut requested = self.shutdown_requested.lock();
        *requested = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running socket front end over a [`TractoService`]. Owns the reactor
/// IO thread and its worker pool; [`stop`](Self::stop) (or drop) tears
/// them down and closes every live connection. The service itself is
/// shared and outlives the listener — in-process submission keeps working
/// while the socket is up, against the same queues, cache, and metrics.
pub struct SocketServer {
    state: Arc<ServerState>,
    endpoint: Endpoint,
    io: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Socket file to unlink at stop (Unix endpoints only).
    cleanup: Option<PathBuf>,
}

impl SocketServer {
    /// Bind the endpoint and start the reactor.
    ///
    /// For a Unix endpoint, a stale socket file left by a crashed server
    /// (one nothing answers on) is replaced; a *live* socket is an error.
    /// With `--state-dir` configured this also opens the upload store and
    /// sweeps staging files orphaned by a previous process.
    pub fn bind(service: Arc<TractoService>, endpoint: &Endpoint) -> TractoResult<Self> {
        let (listener, bound, cleanup) = bind_endpoint(endpoint)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TractoError::io("set listener nonblocking", e))?;

        let uploads = match &service.config().state_dir {
            Some(dir) => Some(Arc::new(UploadStore::open(&dir.join("uploads"))?)),
            None => None,
        };
        let replica = match &service.config().state_dir {
            Some(dir) => Some(Arc::new(crate::fleet::ReplicaStore::open(
                &dir.join("replica"),
            )?)),
            None => None,
        };
        let member = service.config().member.clone();
        let bus = service.event_bus();
        bus.attach();
        let state = Arc::new(ServerState {
            service,
            jobs: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            remote_jobs: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            uploads,
            bus,
            member,
            replica,
        });

        let handles = reactor::spawn(listener, Arc::clone(&state))?;

        if state.service.config().tracer.enabled() {
            state
                .service
                .config()
                .tracer
                .emit("proto.listening", &[("endpoint", bound.to_string().into())]);
        }
        Ok(SocketServer {
            state,
            endpoint: bound,
            io: Some(handles.io),
            workers: handles.workers,
            cleanup,
        })
    }

    /// The endpoint actually bound — for TCP this carries the real port
    /// even when `:0` was requested.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Jobs submitted over the socket since bind.
    pub fn remote_jobs(&self) -> u64 {
        self.state.remote_jobs.load(Ordering::Relaxed)
    }

    /// `status` and `await` requests served since bind. A fleet of v2
    /// clients following pushed events keeps this at zero.
    pub fn poll_requests(&self) -> u64 {
        self.state.polls.load(Ordering::Relaxed)
    }

    /// Adopt tickets recovered from the job journal (see
    /// [`TractoService::recover`]) under their original wire job ids, so a
    /// client that submitted before the crash can keep polling the same id
    /// after the restart.
    pub fn adopt_jobs(&self, jobs: Vec<(u64, Ticket<JobOutput>)>) {
        let mut map = self.state.jobs.lock();
        for (id, ticket) in jobs {
            map.insert(id, ticket);
        }
    }

    /// Block until some client sends a `shutdown` request (the signal for
    /// the hosting process to [`stop`](Self::stop) the listener and shut
    /// the service down).
    pub fn wait_shutdown(&self) {
        let mut requested = self.state.shutdown_requested.lock();
        while !*requested {
            self.state.shutdown_cv.wait(&mut requested);
        }
    }

    /// Stop accepting, close every live connection, and join all threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Wake wait_shutdown() callers so a hosting process that stops the
        // listener directly doesn't strand a waiter.
        self.state.request_shutdown();
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.state.bus.detach();
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Flatten a service snapshot into its wire form.
pub fn metrics_wire(snap: &MetricsSnapshot, remote_jobs: u64) -> MetricsWire {
    MetricsWire {
        submitted: snap.submitted,
        completed: snap.completed,
        failed: snap.failed,
        cancelled: snap.cancelled,
        deadline_exceeded: snap.deadline_exceeded,
        in_flight: snap.in_flight,
        batches: snap.batches,
        batch_jobs: snap.batch_jobs,
        mean_batch_occupancy: snap.mean_batch_occupancy,
        lanes_tracked: snap.lanes_tracked,
        launches: snap.launches,
        mean_wavefront_utilization: snap.mean_wavefront_utilization,
        estimations_run: snap.estimations_run,
        faults_injected: snap.faults_injected,
        device_retries: snap.device_retries,
        job_retries: snap.job_retries,
        failovers: snap.failovers,
        devices_alive: snap.devices_alive,
        devices_total: snap.devices_total,
        tracking_sim_s: snap.tracking_sim_s,
        overlap_saved_sim_s: snap.overlap_saved_sim_s,
        stream_occupancy: snap.stream_occupancy,
        estimation_sim_s: snap.estimation_sim_s,
        cache_hits: snap.cache.hits,
        cache_misses: snap.cache.misses,
        cache_evictions: snap.cache.evictions,
        cache_bytes: snap.cache.bytes,
        cache_entries: snap.cache.entries as u64,
        remote_jobs,
        deadline_hits: snap.deadline_hits,
        sheds: snap.sheds,
        demotions: snap.demotions,
        rate_limited: snap.rate_limited,
        tenants: snap
            .tenants
            .iter()
            .map(|t| tracto_proto::TenantWire {
                name: t.name.clone(),
                submitted: t.submitted,
                completed: t.completed,
                shed: t.shed,
            })
            .collect(),
    }
}
