//! The socket front end: serves the wire protocol over a Unix-domain (or
//! TCP) socket, translating frames into [`TractoService`] calls.
//!
//! One acceptor thread polls a nonblocking listener; each accepted
//! connection gets a blocking handler thread. Shutdown never relies on
//! read timeouts (a timeout mid-frame would corrupt frame sync): the
//! acceptor checks a stop flag between polls, and [`SocketServer::stop`]
//! half-closes every live connection's stored clone, which makes the
//! handler's blocking read return end-of-stream cleanly between frames.
//!
//! Error discipline follows the protocol contract: a request the server
//! cannot *decode* is answered with an `error` response and the connection
//! survives (frame boundaries are intact); a *framing* violation — bad
//! length prefix, oversized frame — tears the connection down. A client
//! that disconnects mid-job loses only its handle: the job itself runs to
//! completion and keeps warming the cache.

use crate::job::{JobError, JobOutput, Ticket};
use crate::metrics::MetricsSnapshot;
use crate::service::TractoService;
use crate::spec::JobSpec;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tracto_proto::{
    read_frame, write_frame, Endpoint, JobState, MetricsWire, Outcome, Request, Response,
    PROTOCOL_VERSION,
};
use tracto_trace::{TractoError, TractoResult};

/// How often the acceptor re-checks the stop flag between accept polls,
/// and how often an indefinite `await` re-checks it between waits.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<ConnStream> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| ConnStream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| ConnStream::Tcp(s)),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(nb),
            Listener::Tcp(l) => l.set_nonblocking(nb),
        }
    }
}

enum ConnStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ConnStream {
    fn try_clone(&self) -> std::io::Result<ConnStream> {
        match self {
            ConnStream::Unix(s) => s.try_clone().map(ConnStream::Unix),
            ConnStream::Tcp(s) => s.try_clone().map(ConnStream::Tcp),
        }
    }

    fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.set_nonblocking(nb),
            ConnStream::Tcp(s) => s.set_nonblocking(nb),
        }
    }

    /// Half-close both directions so a handler blocked in `read` observes
    /// a clean end-of-stream.
    fn shutdown_both(&self) {
        let _ = match self {
            ConnStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            ConnStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.read(buf),
            ConnStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Unix(s) => s.write(buf),
            ConnStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ConnStream::Unix(s) => s.flush(),
            ConnStream::Tcp(s) => s.flush(),
        }
    }
}

struct ServerState {
    service: Arc<TractoService>,
    /// Tickets by wire job id, shared across connections: a job submitted
    /// on one connection can be polled or cancelled from another.
    jobs: Mutex<HashMap<u64, Ticket<JobOutput>>>,
    /// Stored stream clones, used only to half-close live connections at
    /// shutdown.
    conns: Mutex<HashMap<u64, ConnStream>>,
    next_conn: AtomicU64,
    remote_jobs: AtomicU64,
    stop: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl ServerState {
    fn request_shutdown(&self) {
        let mut requested = self.shutdown_requested.lock();
        *requested = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running socket front end over a [`TractoService`]. Owns an acceptor
/// thread and one handler thread per live connection; [`stop`](Self::stop)
/// (or drop) tears all of them down. The service itself is shared and
/// outlives the listener — in-process submission keeps working while the
/// socket is up, against the same queues, cache, and metrics.
pub struct SocketServer {
    state: Arc<ServerState>,
    endpoint: Endpoint,
    acceptor: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    /// Socket file to unlink at stop (Unix endpoints only).
    cleanup: Option<PathBuf>,
}

impl SocketServer {
    /// Bind the endpoint and start accepting connections.
    ///
    /// For a Unix endpoint, a stale socket file left by a crashed server
    /// (one nothing answers on) is replaced; a *live* socket is an error.
    pub fn bind(service: Arc<TractoService>, endpoint: &Endpoint) -> TractoResult<Self> {
        let (listener, bound, cleanup) = match endpoint {
            Endpoint::Unix(path) => {
                let listener = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == IoKind::AddrInUse => {
                        if UnixStream::connect(path).is_ok() {
                            return Err(TractoError::io(
                                format!("bind {}: another server is listening", path.display()),
                                e,
                            ));
                        }
                        std::fs::remove_file(path)
                            .map_err(|e| TractoError::io("remove stale socket", e))?;
                        UnixListener::bind(path)
                            .map_err(|e| TractoError::io("bind unix socket", e))?
                    }
                    Err(e) => return Err(TractoError::io("bind unix socket", e)),
                };
                (
                    Listener::Unix(listener),
                    Endpoint::Unix(path.clone()),
                    Some(path.clone()),
                )
            }
            Endpoint::Tcp(addr) => {
                let listener =
                    TcpListener::bind(addr).map_err(|e| TractoError::io("bind tcp socket", e))?;
                // Report the real address (a `:0` request gets a kernel-
                // assigned port).
                let actual = listener
                    .local_addr()
                    .map(|a| Endpoint::Tcp(a.to_string()))
                    .unwrap_or_else(|_| Endpoint::Tcp(addr.clone()));
                (Listener::Tcp(listener), actual, None)
            }
        };
        listener
            .set_nonblocking(true)
            .map_err(|e| TractoError::io("set listener nonblocking", e))?;

        let state = Arc::new(ServerState {
            service,
            jobs: Mutex::new(HashMap::new()),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(1),
            remote_jobs: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let state = Arc::clone(&state);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tracto-proto-accept".into())
                .spawn(move || accept_loop(listener, state, handlers))
                .map_err(|e| TractoError::io("spawn acceptor", e))?
        };

        if state.service.config().tracer.enabled() {
            state
                .service
                .config()
                .tracer
                .emit("proto.listening", &[("endpoint", bound.to_string().into())]);
        }
        Ok(SocketServer {
            state,
            endpoint: bound,
            acceptor: Some(acceptor),
            handlers,
            cleanup,
        })
    }

    /// The endpoint actually bound — for TCP this carries the real port
    /// even when `:0` was requested.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Jobs submitted over the socket since bind.
    pub fn remote_jobs(&self) -> u64 {
        self.state.remote_jobs.load(Ordering::Relaxed)
    }

    /// Adopt tickets recovered from the job journal (see
    /// [`TractoService::recover`]) under their original wire job ids, so a
    /// client that submitted before the crash can keep polling the same id
    /// after the restart.
    pub fn adopt_jobs(&self, jobs: Vec<(u64, Ticket<JobOutput>)>) {
        let mut map = self.state.jobs.lock();
        for (id, ticket) in jobs {
            map.insert(id, ticket);
        }
    }

    /// Block until some client sends a `shutdown` request (the signal for
    /// the hosting process to [`stop`](Self::stop) the listener and shut
    /// the service down).
    pub fn wait_shutdown(&self) {
        let mut requested = self.state.shutdown_requested.lock();
        while !*requested {
            self.state.shutdown_cv.wait(&mut requested);
        }
    }

    /// Stop accepting, close every live connection, and join all threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Wake wait_shutdown() callers so a hosting process that stops the
        // listener directly doesn't strand a waiter.
        self.state.request_shutdown();
        for (_, conn) in self.state.conns.lock().drain() {
            conn.shutdown_both();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.handlers.lock().drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.cleanup.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for SocketServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: Listener,
    state: Arc<ServerState>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(conn) => {
                if conn.set_nonblocking(false).is_err() {
                    continue;
                }
                let conn_id = state.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = conn.try_clone() {
                    state.conns.lock().insert(conn_id, clone);
                }
                let conn_state = Arc::clone(&state);
                let spawned = std::thread::Builder::new()
                    .name(format!("tracto-proto-conn-{conn_id}"))
                    .spawn(move || {
                        handle_connection(conn, conn_id, &conn_state);
                        conn_state.conns.lock().remove(&conn_id);
                    });
                match spawned {
                    Ok(h) => handlers.lock().push(h),
                    Err(_) => {
                        state.conns.lock().remove(&conn_id);
                    }
                }
            }
            Err(e) if e.kind() == IoKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

fn handle_connection(mut conn: ConnStream, conn_id: u64, state: &ServerState) {
    let tracer = state.service.config().tracer.clone();
    if tracer.enabled() {
        tracer.emit("proto.conn_open", &[("conn", conn_id.into())]);
    }
    // The handshake must come first and must agree on the version.
    match read_request(&mut conn) {
        Some(Request::Hello { version, client }) => {
            if version != PROTOCOL_VERSION {
                let _ = send(
                    &mut conn,
                    &Response::Error {
                        kind: "protocol".into(),
                        message: format!(
                            "protocol version mismatch: server speaks {PROTOCOL_VERSION}, \
                             client sent {version}"
                        ),
                    },
                );
                return;
            }
            if tracer.enabled() {
                tracer.emit(
                    "proto.hello",
                    &[("conn", conn_id.into()), ("client", client.into())],
                );
            }
            if send(
                &mut conn,
                &Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: "tracto-serve".into(),
                },
            )
            .is_err()
            {
                return;
            }
        }
        Some(_) => {
            let _ = send(
                &mut conn,
                &Response::Error {
                    kind: "protocol".into(),
                    message: "first request must be `hello`".into(),
                },
            );
            return;
        }
        None => return,
    }

    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(p)) => p,
            // Clean disconnect between frames: the client is gone, its
            // jobs keep running.
            Ok(None) => break,
            // Framing violation: answer if the pipe still works, then close.
            Err(e) => {
                if !state.stop.load(Ordering::SeqCst) {
                    let _ = send(
                        &mut conn,
                        &Response::Error {
                            kind: "protocol".into(),
                            message: e.to_string(),
                        },
                    );
                }
                break;
            }
        };
        let response = match Request::decode(&payload) {
            // Decode failures leave frame sync intact — answer and carry on.
            Err(e) => Response::Error {
                kind: "protocol".into(),
                message: e.to_string(),
            },
            Ok(req) => handle_request(req, state),
        };
        let shutting_down = response == Response::ShuttingDown;
        if send(&mut conn, &response).is_err() {
            break;
        }
        if shutting_down {
            state.request_shutdown();
        }
    }
    if tracer.enabled() {
        tracer.emit("proto.conn_close", &[("conn", conn_id.into())]);
    }
}

/// Read and decode the handshake frame. Framing or decode errors before
/// `hello` yield `None` — there is nothing useful to answer yet.
fn read_request(conn: &mut ConnStream) -> Option<Request> {
    match read_frame(conn) {
        Ok(Some(p)) => Request::decode(&p).ok(),
        _ => None,
    }
}

fn send(conn: &mut ConnStream, response: &Response) -> TractoResult<()> {
    write_frame(conn, &response.encode())
}

fn handle_request(req: Request, state: &ServerState) -> Response {
    match req {
        // A repeated hello is harmless; answer it again.
        Request::Hello { .. } => Response::Hello {
            version: PROTOCOL_VERSION,
            server: "tracto-serve".into(),
        },
        Request::Submit(wire) => match JobSpec::from_wire(&wire) {
            Err(e) => Response::Error {
                kind: e.kind().to_string(),
                message: e.to_string(),
            },
            Ok(spec) => match state.service.try_submit(spec) {
                Err(e) => Response::Error {
                    kind: error_kind(&e),
                    message: e.to_string(),
                },
                Ok(ticket) => {
                    let job = ticket.id.0;
                    state.jobs.lock().insert(job, ticket);
                    state.remote_jobs.fetch_add(1, Ordering::Relaxed);
                    Response::Submitted { job }
                }
            },
        },
        Request::Status { job } => match lookup(state, job) {
            Err(r) => r,
            Ok(ticket) => Response::Status {
                job,
                state: job_state(ticket.try_result()),
            },
        },
        Request::Cancel { job } => match lookup(state, job) {
            Err(r) => r,
            Ok(ticket) => Response::Cancelled {
                job,
                cancelled: ticket.cancel(),
            },
        },
        Request::Await { job, timeout_ms } => match lookup(state, job) {
            Err(r) => r,
            Ok(ticket) => {
                let result = match timeout_ms {
                    Some(ms) => ticket.wait_timeout(Duration::from_millis(ms)),
                    None => loop {
                        // Indefinite awaits still observe server stop, so a
                        // handler never outlives the listener it serves.
                        if let Some(r) = ticket.wait_timeout(25 * POLL_INTERVAL) {
                            break Some(r);
                        }
                        if state.stop.load(Ordering::SeqCst) {
                            break None;
                        }
                    },
                };
                Response::Status {
                    job,
                    state: result.map_or(JobState::Pending, |r| job_state(Some(r))),
                }
            }
        },
        Request::Metrics => {
            let snap = state.service.metrics();
            Response::Metrics(Box::new(metrics_wire(
                &snap,
                state.remote_jobs.load(Ordering::Relaxed),
            )))
        }
        Request::Drain => {
            state.service.drain();
            Response::Drained
        }
        Request::Shutdown => Response::ShuttingDown,
    }
}

fn lookup(state: &ServerState, job: u64) -> Result<Ticket<JobOutput>, Response> {
    state.jobs.lock().get(&job).cloned().ok_or(Response::Error {
        kind: "protocol".into(),
        message: format!("unknown job id {job}"),
    })
}

/// The wire `kind` string for a job failure. Typed causes use their
/// [`ErrorKind`](tracto_trace::ErrorKind) display name so the client can
/// re-type them.
fn error_kind(err: &JobError) -> String {
    match err {
        JobError::QueueFull => "capacity".into(),
        JobError::Cancelled => "cancelled".into(),
        JobError::DeadlineExceeded => "deadline".into(),
        JobError::ShuttingDown => "shutdown".into(),
        JobError::Failed(cause) => cause.kind().to_string(),
    }
}

fn job_state(result: Option<Result<JobOutput, JobError>>) -> JobState {
    match result {
        None => JobState::Pending,
        Some(Err(e)) => JobState::Failed {
            kind: error_kind(&e),
            message: e.to_string(),
        },
        Some(Ok(JobOutput::Estimate(est))) => JobState::Done(Outcome::Estimate {
            voxels: est.voxels as u64,
            cache_hit: est.cache_hit,
        }),
        Some(Ok(JobOutput::Track(track))) => {
            let streamlines = track
                .tracking
                .lengths_by_sample
                .iter()
                .map(|s| s.len() as u64)
                .sum();
            JobState::Done(Outcome::Track {
                total_steps: track.tracking.total_steps,
                streamlines,
                lengths_digest: tracto_proto::lengths_digest(&track.tracking.lengths_by_sample),
                cache_hit: track.cache_hit,
                batch_jobs: track.batch_jobs as u64,
                batch_lanes: track.batch_lanes as u64,
            })
        }
    }
}

/// Flatten a service snapshot into its wire form.
pub fn metrics_wire(snap: &MetricsSnapshot, remote_jobs: u64) -> MetricsWire {
    MetricsWire {
        submitted: snap.submitted,
        completed: snap.completed,
        failed: snap.failed,
        cancelled: snap.cancelled,
        deadline_exceeded: snap.deadline_exceeded,
        in_flight: snap.in_flight,
        batches: snap.batches,
        batch_jobs: snap.batch_jobs,
        mean_batch_occupancy: snap.mean_batch_occupancy,
        lanes_tracked: snap.lanes_tracked,
        launches: snap.launches,
        mean_wavefront_utilization: snap.mean_wavefront_utilization,
        estimations_run: snap.estimations_run,
        faults_injected: snap.faults_injected,
        device_retries: snap.device_retries,
        job_retries: snap.job_retries,
        failovers: snap.failovers,
        devices_alive: snap.devices_alive,
        devices_total: snap.devices_total,
        tracking_sim_s: snap.tracking_sim_s,
        estimation_sim_s: snap.estimation_sim_s,
        cache_hits: snap.cache.hits,
        cache_misses: snap.cache.misses,
        cache_evictions: snap.cache.evictions,
        cache_bytes: snap.cache.bytes,
        cache_entries: snap.cache.entries as u64,
        remote_jobs,
    }
}
