//! **tracto-serve** — a batched, cache-backed tractography job service.
//!
//! The paper treats one tractography run as one program invocation. This
//! crate wraps the reproduction's pipeline in a multi-client job service
//! built around two observations:
//!
//! 1. **Step 1 is cacheable.** Voxelwise MCMC is deterministic in
//!    `(dataset, priors, chain schedule, seed)`, so its sample volumes are
//!    keyed by a content hash and held in a byte-bounded LRU
//!    ([`SampleCache`]) — a repeated tracking request skips estimation
//!    entirely.
//! 2. **Step 2 batches across clients.** Tracking lanes are independent,
//!    so pending jobs merge into one lane population per launch sequence
//!    (continuous batching, [`run_batch`]); the compaction boundaries the
//!    paper's segmentation already requires are where per-job results are
//!    demultiplexed back out. Results are bit-identical to running each
//!    job alone through [`tracto::Pipeline`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use tracto::pipeline::PipelineConfig;
//! use tracto::phantom::datasets::DatasetSpec;
//! use tracto_serve::{ServiceConfig, TractoService, TrackJob};
//!
//! let service = TractoService::start(ServiceConfig::default());
//! let dataset = Arc::new(DatasetSpec::paper_dataset1().scaled(0.2).build());
//! let ticket = service.submit_track(TrackJob::new(dataset, PipelineConfig::fast()));
//! let result = ticket.wait().unwrap();
//! println!("{} total steps (batched with {} jobs)",
//!     result.tracking.total_steps, result.batch_jobs);
//! println!("{}", service.shutdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod job;
pub mod metrics;
pub mod service;

pub use batch::{run_batch, BatchJob, BatchReport};
pub use cache::{
    sample_key, sample_key_parts, CacheStats, DiskSampleCache, SampleCache, SampleKey,
};
pub use job::{EstimateJob, EstimateResult, JobError, JobId, Ticket, TrackJob, TrackResult};
pub use metrics::MetricsSnapshot;
pub use service::{ServiceConfig, TractoService};
