//! **tracto-serve** — a batched, cache-backed tractography job service.
//!
//! The paper treats one tractography run as one program invocation. This
//! crate wraps the reproduction's pipeline in a multi-client job service
//! built around two observations:
//!
//! 1. **Step 1 is cacheable.** Voxelwise MCMC is deterministic in
//!    `(dataset, priors, chain schedule, seed)`, so its sample volumes are
//!    keyed by a content hash and held in a byte-bounded LRU
//!    ([`SampleCache`]) — a repeated tracking request skips estimation
//!    entirely.
//! 2. **Step 2 batches across clients.** Tracking lanes are independent,
//!    so pending jobs merge into one lane population per launch sequence
//!    (continuous batching, [`run_batch`]); the compaction boundaries the
//!    paper's segmentation already requires are where per-job results are
//!    demultiplexed back out. Results are bit-identical to running each
//!    job alone through [`tracto::Pipeline`].
//!
//! Every job — estimation or tracking, local dataset or phantom recipe —
//! enters through one door, [`TractoService::submit`], as a [`JobSpec`]:
//!
//! ```no_run
//! use std::sync::Arc;
//! use tracto::pipeline::PipelineConfig;
//! use tracto::phantom::datasets::DatasetSpec;
//! use tracto_serve::{JobSpec, ServiceConfig, TractoService};
//!
//! let service = TractoService::start(ServiceConfig::builder().build().unwrap());
//! let dataset = Arc::new(DatasetSpec::paper_dataset1().scaled(0.2).build());
//! let ticket = service.submit(JobSpec::track(dataset, PipelineConfig::fast()));
//! let result = ticket.wait_track().unwrap();
//! println!("{} total steps (batched with {} jobs)",
//!     result.tracking.total_steps, result.batch_jobs);
//! println!("{}", service.shutdown());
//! ```
//!
//! The same service can serve other processes: [`SocketServer`] exposes it
//! over the `tracto-proto` wire protocol (Unix socket by default, TCP on
//! request), and results are bit-identical to in-process submission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod config;
mod events;
pub mod fleet;
pub mod job;
pub mod journal;
pub mod listener;
pub mod metrics;
mod reactor;
pub mod service;
pub mod spec;
pub mod uploads;

pub use batch::{run_batch, run_batch_streamed, BatchJob, BatchReport};
pub use cache::{
    sample_key, sample_key_parts, CacheStats, DiskSampleCache, EvictionPolicy, SampleCache,
    SampleKey,
};
pub use config::{ServiceConfig, ServiceConfigBuilder};
pub use fleet::{Fleet, FleetConfig, HashRing, ReplicaStore};
pub use job::{
    EstimateJob, EstimateResult, JobError, JobId, JobOutput, Ticket, TrackJob, TrackResult,
};
pub use journal::{replay_text, JobJournal, RecoveredJob, Recovery};
pub use listener::SocketServer;
pub use metrics::MetricsSnapshot;
pub use service::TractoService;
pub use spec::{materialize_dataset, DatasetSource, JobSpec, Work};
pub use uploads::UploadStore;
