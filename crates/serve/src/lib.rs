//! tracto-serve: a batched, cache-backed tractography job service.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
