//! The connection reactor: every socket client multiplexed onto one
//! event-driven IO thread plus a small fixed worker pool.
//!
//! The v1 front end spawned a blocking handler thread per connection,
//! which caps concurrency at the thread budget and makes pushed events
//! impossible (a handler blocked in `read` cannot write). The reactor
//! inverts this: all connections are nonblocking and one IO thread scans
//! them in a readiness loop —
//!
//! - **read**: bytes accumulate in a per-connection [`FrameBuf`], which
//!   yields complete frames regardless of how the kernel sliced them;
//! - **dispatch**: every verb is handled inline except `drain` (which
//!   blocks on service idleness and is shipped to the worker pool) and
//!   `await` (which parks as a *waiter* — no thread sleeps on it);
//! - **write**: responses and pushed events queue in a per-connection
//!   outbox, flushed as the socket accepts bytes. While an outbox is
//!   above [`OUT_SOFT_CAP`] the reactor stops reading from that client
//!   (backpressure); a subscriber so slow its outbox hits
//!   [`OUT_HARD_CAP`] is disconnected rather than buffered forever.
//!
//! Fairness and ordering: at most one request per connection is in
//! flight at a time (a parked `await` or dispatched `drain` holds the
//! slot), so responses on one connection always arrive in request order
//! even from a pipelining client; pushed `event` frames may interleave,
//! as the protocol allows. The whole front end is [`WORKERS`]` + 1`
//! threads no matter how many clients connect — the soak test drives
//! hundreds of concurrent connections through it.
//!
//! With `unsafe` forbidden workspace-wide there is no `poll(2)`; the
//! loop instead sleeps [`IDLE_SLEEP`] when a full scan makes no
//! progress, bounding idle CPU while keeping worst-case added latency
//! around a millisecond.

use crate::events::{job_state, terminal_kind};
use crate::job::{JobOutput, Ticket};
use crate::listener::{metrics_wire, ConnStream, Listener, ServerState};
use crate::spec::JobSpec;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind as IoKind, Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto_proto::{
    b64, write_frame, Event, FrameBuf, JobState, Request, Response, PROTOCOL_VERSION,
    PROTOCOL_VERSION_MIN,
};
use tracto_trace::{TractoError, TractoResult};

/// Blocking-verb workers (currently only `drain` needs one).
pub(crate) const WORKERS: usize = 2;

/// Sleep when a full scan moved no bytes and fired no events.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Most bytes read from one connection per scan, so one firehose client
/// cannot starve the rest.
const READ_BUDGET: usize = 64 * 1024;

/// Outbox level above which the reactor stops reading from a connection.
const OUT_SOFT_CAP: usize = 1 << 20;

/// Outbox level above which a connection is dropped as a dead subscriber.
const OUT_HARD_CAP: usize = 32 << 20;

/// How long the reactor keeps trying to flush a `shutting_down` response
/// (or final frames at stop) before giving up on the socket.
const FINAL_FLUSH: Duration = Duration::from_millis(500);

/// A blocking verb shipped off the IO thread.
enum Task {
    Drain { conn: u64 },
}

/// Threads owned by the reactor; joined by `SocketServer::stop`.
pub(crate) struct Handles {
    pub(crate) io: std::thread::JoinHandle<()>,
    pub(crate) workers: Vec<std::thread::JoinHandle<()>>,
}

/// Spawn the IO thread and worker pool over an already-bound listener.
pub(crate) fn spawn(listener: Listener, state: Arc<ServerState>) -> TractoResult<Handles> {
    let (task_tx, task_rx) = bounded::<Task>(1024);
    let (resp_tx, resp_rx) = bounded::<(u64, Response)>(1024);
    let mut workers = Vec::with_capacity(WORKERS);
    for i in 0..WORKERS {
        let state = Arc::clone(&state);
        let rx = task_rx.clone();
        let tx = resp_tx.clone();
        let h = std::thread::Builder::new()
            .name(format!("tracto-reactor-work-{i}"))
            .spawn(move || worker_loop(&state, &rx, &tx))
            .map_err(|e| TractoError::io("spawn reactor worker", e))?;
        workers.push(h);
    }
    let io = std::thread::Builder::new()
        .name("tracto-reactor-io".into())
        .spawn(move || {
            let mut io = Io {
                state,
                conns: HashMap::new(),
                waiters: Vec::new(),
                task_tx,
                resp_rx,
            };
            io.run(listener);
        })
        .map_err(|e| TractoError::io("spawn reactor io thread", e))?;
    Ok(Handles { io, workers })
}

fn worker_loop(state: &ServerState, rx: &Receiver<Task>, tx: &Sender<(u64, Response)>) {
    while let Ok(task) = rx.recv() {
        match task {
            Task::Drain { conn } => {
                state.service.drain();
                if tx.send((conn, Response::Drained)).is_err() {
                    break;
                }
            }
        }
    }
}

/// One multiplexed connection.
struct Conn {
    stream: ConnStream,
    inbox: FrameBuf,
    outbox: Vec<u8>,
    /// Bytes of `outbox` already written to the socket.
    out_pos: usize,
    /// Negotiated protocol version; `None` until `hello` succeeds.
    version: Option<u32>,
    /// A dispatched `drain` or parked `await` owns the response slot: no
    /// further frames are interpreted until it answers.
    busy: bool,
    /// Subscribed to every job's events.
    sub_all: bool,
    /// Subscribed to these jobs' events.
    sub_jobs: HashSet<u64>,
    /// Flush the outbox, then close (set after fatal protocol errors).
    closing: bool,
    /// Remove at the end of this scan, no further IO.
    dead: bool,
}

impl Conn {
    fn new(stream: ConnStream) -> Self {
        Conn {
            stream,
            inbox: FrameBuf::new(),
            outbox: Vec::new(),
            out_pos: 0,
            version: None,
            busy: false,
            sub_all: false,
            sub_jobs: HashSet::new(),
            closing: false,
            dead: false,
        }
    }

    fn queue(&mut self, response: &Response) {
        self.queue_payload(&response.encode());
    }

    /// Append one already-encoded frame payload to the outbox.
    fn queue_payload(&mut self, payload: &str) {
        if self.dead {
            return;
        }
        if write_frame(&mut self.outbox, payload).is_err() {
            // Only an over-long payload can fail here; drop the peer
            // rather than desync its frame stream.
            self.dead = true;
        }
    }

    fn pending_out(&self) -> usize {
        self.outbox.len() - self.out_pos
    }

    /// Write queued bytes until the socket stops accepting them.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.out_pos < self.outbox.len() {
            match self.stream.write(&self.outbox[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == IoKind::WouldBlock => break,
                Err(e) if e.kind() == IoKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.outbox.len() && !self.outbox.is_empty() {
            self.outbox.clear();
            self.out_pos = 0;
        }
        progress
    }

    /// Keep flushing (with short sleeps) until drained or the deadline
    /// passes — used for farewell frames where "best effort, bounded" is
    /// the right contract.
    fn flush_until(&mut self, limit: Duration) {
        let deadline = Instant::now() + limit;
        while self.pending_out() > 0 && !self.dead && Instant::now() < deadline {
            self.flush();
            if self.pending_out() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// A parked `await`: the job, the connection waiting on it, and when to
/// give up. No thread blocks — the IO loop re-checks each scan.
struct Waiter {
    conn: u64,
    job: u64,
    ticket: Ticket<JobOutput>,
    deadline: Option<Instant>,
}

struct Io {
    state: Arc<ServerState>,
    conns: HashMap<u64, Conn>,
    waiters: Vec<Waiter>,
    task_tx: Sender<Task>,
    resp_rx: Receiver<(u64, Response)>,
}

impl Io {
    fn run(&mut self, listener: Listener) {
        let mut events: Vec<Event> = Vec::new();
        while !self.state.stop.load(Ordering::SeqCst) {
            let mut progress = false;
            progress |= self.accept(&listener);
            progress |= self.pump_worker_responses();
            progress |= self.pump_events(&mut events);
            progress |= self.scan();
            progress |= self.sweep_waiters(false);
            self.reap();
            if !progress {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        // Stop: answer parked awaits with `pending` (v1 semantics), give
        // farewell frames a bounded chance to land, then close everything.
        self.sweep_waiters(true);
        for conn in self.conns.values_mut() {
            conn.flush_until(FINAL_FLUSH);
            conn.stream.shutdown_both();
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            self.close(id);
        }
        drop(listener);
    }

    fn tracer(&self) -> tracto_trace::Tracer {
        self.state.service.config().tracer.clone()
    }

    fn accept(&mut self, listener: &Listener) -> bool {
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.state.next_conn.fetch_add(1, Ordering::Relaxed);
                    let tracer = self.tracer();
                    if tracer.enabled() {
                        tracer.emit("proto.conn_open", &[("conn", id.into())]);
                    }
                    self.conns.insert(id, Conn::new(stream));
                    progress = true;
                }
                Err(e) if e.kind() == IoKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        progress
    }

    fn pump_worker_responses(&mut self) -> bool {
        let mut progress = false;
        while let Ok((cid, response)) = self.resp_rx.try_recv() {
            if let Some(conn) = self.conns.get_mut(&cid) {
                conn.queue(&response);
                conn.busy = false;
            }
            progress = true;
        }
        progress
    }

    /// Fan freshly published lifecycle events out to subscribers.
    fn pump_events(&mut self, events: &mut Vec<Event>) -> bool {
        events.clear();
        self.state.bus.drain(events);
        if events.is_empty() {
            return false;
        }
        let tracer = self.tracer();
        for ev in events.drain(..) {
            let payload = Response::Event(ev.clone()).encode();
            for (cid, conn) in self.conns.iter_mut() {
                let subscribed = conn.sub_all || conn.sub_jobs.contains(&ev.job);
                if conn.dead || conn.closing || !subscribed {
                    continue;
                }
                if conn.pending_out() + payload.len() > OUT_HARD_CAP {
                    // A subscriber that stopped reading: cut it loose
                    // instead of buffering without bound.
                    conn.dead = true;
                    continue;
                }
                conn.queue_payload(&payload);
                if tracer.enabled() {
                    tracer.emit(
                        "proto.streamed",
                        &[
                            ("conn", (*cid).into()),
                            ("job", ev.job.into()),
                            ("seq", ev.seq.into()),
                            ("kind", ev.kind.clone().into()),
                        ],
                    );
                }
            }
        }
        true
    }

    /// Read, parse, dispatch, and flush every connection once.
    fn scan(&mut self) -> bool {
        let mut progress = false;
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for cid in ids {
            progress |= self.read_conn(cid);
            progress |= self.parse_conn(cid);
            if let Some(conn) = self.conns.get_mut(&cid) {
                progress |= conn.flush();
                if conn.closing && conn.pending_out() == 0 {
                    conn.dead = true;
                }
            }
        }
        progress
    }

    fn read_conn(&mut self, cid: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&cid) else {
            return false;
        };
        if conn.dead || conn.closing || conn.pending_out() >= OUT_SOFT_CAP {
            return false;
        }
        let mut buf = [0u8; 8192];
        let mut total = 0usize;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    // Clean EOF between frames loses nothing; inside a
                    // frame there is nobody left to answer. Either way
                    // the connection is gone.
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.inbox.extend(&buf[..n]);
                    total += n;
                    if total >= READ_BUDGET {
                        break;
                    }
                }
                Err(e) if e.kind() == IoKind::WouldBlock => break,
                Err(e) if e.kind() == IoKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        total > 0
    }

    fn parse_conn(&mut self, cid: u64) -> bool {
        let mut progress = false;
        while let Some(conn) = self.conns.get_mut(&cid) {
            if conn.dead || conn.closing || conn.busy {
                break;
            }
            match conn.inbox.next_frame() {
                Ok(Some(payload)) => {
                    progress = true;
                    self.handle_payload(cid, &payload);
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing violation: answer if possible, then close —
                    // frame sync is unrecoverable.
                    conn.queue(&Response::Error {
                        kind: "protocol".into(),
                        message: e.to_string(),
                    });
                    conn.closing = true;
                    progress = true;
                }
            }
        }
        progress
    }

    fn handle_payload(&mut self, cid: u64, payload: &str) {
        let request = match Request::decode(payload) {
            Ok(req) => req,
            Err(e) => {
                let hello_done = self.conns.get(&cid).is_some_and(|c| c.version.is_some());
                if let Some(conn) = self.conns.get_mut(&cid) {
                    if hello_done {
                        // Decode failures leave frame sync intact —
                        // answer and carry on.
                        conn.queue(&Response::Error {
                            kind: "protocol".into(),
                            message: e.to_string(),
                        });
                    } else {
                        conn.closing = true;
                    }
                }
                return;
            }
        };
        if let Request::Hello { version, client } = request {
            self.handle_hello(cid, version, &client);
            return;
        }
        let Some(conn) = self.conns.get_mut(&cid) else {
            return;
        };
        if conn.version.is_none() {
            conn.queue(&Response::Error {
                kind: "protocol".into(),
                message: "first request must be `hello`".into(),
            });
            conn.closing = true;
            return;
        }
        if let Some(verb) = v2_only(&request) {
            let v = conn.version.unwrap_or(PROTOCOL_VERSION_MIN);
            if v < 2 {
                conn.queue(&Response::Error {
                    kind: "protocol".into(),
                    message: format!(
                        "`{verb}` requires protocol v2; this connection negotiated v{v}"
                    ),
                });
                return;
            }
        }
        self.dispatch(cid, request);
    }

    fn handle_hello(&mut self, cid: u64, version: u32, client: &str) {
        let tracer = self.tracer();
        let Some(conn) = self.conns.get_mut(&cid) else {
            return;
        };
        if version < PROTOCOL_VERSION_MIN {
            conn.queue(&Response::Error {
                kind: "protocol".into(),
                message: format!(
                    "protocol version mismatch: server speaks {PROTOCOL_VERSION} \
                     (min {PROTOCOL_VERSION_MIN}), client sent {version}"
                ),
            });
            conn.closing = true;
            return;
        }
        // Negotiate down to the newer side's floor; a repeated hello just
        // re-answers with what this connection already agreed on.
        let negotiated = conn
            .version
            .unwrap_or_else(|| version.min(PROTOCOL_VERSION));
        conn.version = Some(negotiated);
        if tracer.enabled() {
            tracer.emit(
                "proto.hello",
                &[
                    ("conn", cid.into()),
                    ("client", client.to_string().into()),
                    ("version", u64::from(negotiated).into()),
                ],
            );
        }
        let member = self.state.member.clone();
        conn.queue(&Response::Hello {
            version: negotiated,
            server: "tracto-serve".into(),
            member,
        });
    }

    fn dispatch(&mut self, cid: u64, request: Request) {
        match request {
            Request::Hello { .. } => unreachable!("hello handled before dispatch"),
            Request::Submit(wire) => {
                let response = match JobSpec::from_wire(&wire) {
                    Err(e) => Response::Error {
                        kind: e.kind().to_string(),
                        message: e.to_string(),
                    },
                    Ok(spec) => match self.state.service.try_submit(spec) {
                        Err(e) => Response::Error {
                            kind: crate::events::error_kind(&e),
                            message: e.to_string(),
                        },
                        Ok(ticket) => {
                            let job = ticket.id.0;
                            self.state.jobs.lock().insert(job, ticket);
                            self.state.remote_jobs.fetch_add(1, Ordering::Relaxed);
                            Response::Submitted { job }
                        }
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::Status { job } => {
                self.state.polls.fetch_add(1, Ordering::Relaxed);
                let response = match self.lookup(job) {
                    Err(r) => r,
                    Ok(ticket) => Response::Status {
                        job,
                        state: job_state(ticket.try_result()),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::Cancel { job } => {
                let response = match self.lookup(job) {
                    Err(r) => r,
                    Ok(ticket) => Response::Cancelled {
                        job,
                        cancelled: ticket.cancel(),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::Await { job, timeout_ms } => {
                self.state.polls.fetch_add(1, Ordering::Relaxed);
                match self.lookup(job) {
                    Err(r) => self.queue_to(cid, &r),
                    Ok(ticket) => {
                        if let Some(result) = ticket.try_result() {
                            self.queue_to(
                                cid,
                                &Response::Status {
                                    job,
                                    state: job_state(Some(result)),
                                },
                            );
                        } else {
                            // Park it: the response slot stays owned until
                            // the sweep resolves the waiter.
                            let deadline =
                                timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                            self.waiters.push(Waiter {
                                conn: cid,
                                job,
                                ticket,
                                deadline,
                            });
                            if let Some(conn) = self.conns.get_mut(&cid) {
                                conn.busy = true;
                            }
                        }
                    }
                }
            }
            Request::Metrics => {
                let snap = self.state.service.metrics();
                let remote = self.state.remote_jobs.load(Ordering::Relaxed);
                self.queue_to(
                    cid,
                    &Response::Metrics(Box::new(metrics_wire(&snap, remote))),
                );
            }
            Request::Drain => {
                let sent = self.task_tx.try_send(Task::Drain { conn: cid }).is_ok();
                if let Some(conn) = self.conns.get_mut(&cid) {
                    if sent {
                        conn.busy = true;
                    } else {
                        conn.queue(&Response::Error {
                            kind: "capacity".into(),
                            message: "drain queue is full".into(),
                        });
                    }
                }
            }
            Request::Shutdown => {
                if let Some(conn) = self.conns.get_mut(&cid) {
                    conn.queue(&Response::ShuttingDown);
                    // The host may stop the listener the moment it wakes,
                    // so land the farewell before signalling.
                    conn.flush_until(FINAL_FLUSH);
                }
                self.state.request_shutdown();
            }
            Request::Subscribe { job } => self.subscribe(cid, job),
            Request::UploadBegin { hash, len } => {
                let response = match self.uploads() {
                    Err(r) => r,
                    Ok(store) => match store.begin(cid, &hash, len) {
                        Ok((offset, complete)) => Response::UploadReady { offset, complete },
                        Err(e) => error_response(&e),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::UploadChunk { hash, offset, data } => {
                let response = match self.uploads() {
                    Err(r) => r,
                    Ok(store) => match b64::decode(&data) {
                        Err(e) => error_response(&e),
                        Ok(bytes) => match store.chunk(cid, &hash, offset, &bytes) {
                            Ok(received) => Response::UploadAck { received },
                            Err(e) => error_response(&e),
                        },
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::UploadCommit { hash } => {
                let response = match self.uploads() {
                    Err(r) => r,
                    Ok(store) => match store.commit(cid, &hash) {
                        Ok(bytes) => Response::UploadDone { hash, bytes },
                        Err(e) => error_response(&e),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::Ping => {
                let member = self.state.member.clone().unwrap_or_default();
                self.queue_to(cid, &Response::Pong { member });
            }
            Request::Replicate {
                source,
                first_seq,
                reset,
                records,
            } => {
                let response = match self.replica() {
                    Err(r) => r,
                    Ok(store) => match store.append(&source, first_seq, reset, &records) {
                        Ok(next) => Response::ReplAck { next },
                        Err(e) => error_response(&e),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::Takeover { source } => {
                let response = match self.replica() {
                    Err(r) => r,
                    Ok(store) => match store.take(&source) {
                        Err(e) => error_response(&e),
                        Ok(text) => self.adopt_replica(&source, &text),
                    },
                };
                self.queue_to(cid, &response);
            }
            Request::FleetStatus | Request::Route(_) => {
                self.queue_to(
                    cid,
                    &Response::Error {
                        kind: "config".into(),
                        message: "this server is a fleet member, not a coordinator \
                                  (connect to `tracto fleet` for fleet_status/route)"
                            .into(),
                    },
                );
            }
        }
    }

    /// Host-death takeover, member side: replay the dead member's
    /// replicated journal with the same scan a local restart uses, then
    /// re-enqueue every unfinished job here under fresh ids (this host's
    /// own journal write-aheads them, so the adoption survives *our* crash
    /// too). Answers with `(original, adopted)` id pairs so the
    /// coordinator can remap live bindings. Determinism makes the re-run
    /// bit-identical to what the dead member would have produced.
    fn adopt_replica(&mut self, source: &str, text: &str) -> Response {
        let tracer = self.tracer();
        let recovery = crate::journal::replay_text(text, &tracer);
        let mut jobs = Vec::with_capacity(recovery.jobs.len());
        for r in recovery.jobs {
            let spec = match JobSpec::from_wire(&r.spec) {
                Ok(spec) => spec,
                Err(e) => {
                    // An unconvertible replicated spec (protocol drift
                    // across hosts) is skipped observably, not silently.
                    if tracer.enabled() {
                        tracer.emit(
                            "fleet.takeover_skip",
                            &[
                                ("source", source.to_string().into()),
                                ("orig_job", r.id.into()),
                                ("error", e.to_string().into()),
                            ],
                        );
                    }
                    continue;
                }
            };
            match self.state.service.try_submit(spec) {
                Ok(ticket) => {
                    let adopted = ticket.id.0;
                    self.state.jobs.lock().insert(adopted, ticket);
                    self.state.remote_jobs.fetch_add(1, Ordering::Relaxed);
                    jobs.push((r.id, adopted));
                }
                Err(e) => {
                    return Response::Error {
                        kind: crate::events::error_kind(&e),
                        message: format!("takeover of `{source}` job {}: {e}", r.id),
                    }
                }
            }
        }
        if tracer.enabled() {
            tracer.emit(
                "fleet.took_over",
                &[
                    ("source", source.to_string().into()),
                    ("jobs", (jobs.len() as u64).into()),
                ],
            );
        }
        Response::TookOver { jobs }
    }

    fn subscribe(&mut self, cid: u64, job: Option<u64>) {
        match job {
            None => {
                if let Some(conn) = self.conns.get_mut(&cid) {
                    conn.sub_all = true;
                    conn.queue(&Response::Subscribed { job: None });
                }
            }
            Some(id) => match self.lookup(id) {
                Err(r) => self.queue_to(cid, &r),
                Ok(ticket) => {
                    // Register before checking, so a completion landing
                    // between the check and the next bus drain is pushed
                    // (events are drained on this same thread, after
                    // dispatch — never concurrently with it).
                    let terminal = ticket.try_result();
                    let tracer = self.tracer();
                    if let Some(conn) = self.conns.get_mut(&cid) {
                        conn.sub_jobs.insert(id);
                        conn.queue(&Response::Subscribed { job: Some(id) });
                        if let Some(result) = terminal {
                            // Already over: synthesize the terminal event
                            // so a late subscriber can never hang.
                            let ev = Event {
                                seq: self.state.bus.next_seq(),
                                job: id,
                                kind: terminal_kind(&result).to_string(),
                                state: job_state(Some(result)),
                            };
                            if tracer.enabled() {
                                tracer.emit(
                                    "proto.streamed",
                                    &[
                                        ("conn", cid.into()),
                                        ("job", ev.job.into()),
                                        ("seq", ev.seq.into()),
                                        ("kind", ev.kind.clone().into()),
                                    ],
                                );
                            }
                            conn.queue(&Response::Event(ev));
                        }
                    }
                }
            },
        }
    }

    /// Resolve parked awaits: completion answers with the final state, a
    /// passed deadline answers `pending`, and at stop (`flush_all`)
    /// everything left answers `pending` — exactly the v1 timeout
    /// contract, minus the blocked thread.
    fn sweep_waiters(&mut self, resolve_all: bool) -> bool {
        if self.waiters.is_empty() {
            return false;
        }
        let now = Instant::now();
        let mut resolved: Vec<(u64, Response)> = Vec::new();
        self.waiters.retain(|w| {
            if let Some(result) = w.ticket.try_result() {
                resolved.push((
                    w.conn,
                    Response::Status {
                        job: w.job,
                        state: job_state(Some(result)),
                    },
                ));
                return false;
            }
            let expired = resolve_all || w.deadline.is_some_and(|d| d <= now);
            if expired {
                resolved.push((
                    w.conn,
                    Response::Status {
                        job: w.job,
                        state: JobState::Pending,
                    },
                ));
                return false;
            }
            true
        });
        let progress = !resolved.is_empty();
        for (cid, response) in resolved {
            if let Some(conn) = self.conns.get_mut(&cid) {
                conn.queue(&response);
                conn.busy = false;
            }
        }
        progress
    }

    /// Remove connections marked dead this scan.
    fn reap(&mut self) {
        let dead: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead)
            .map(|(id, _)| *id)
            .collect();
        for id in dead {
            self.close(id);
        }
    }

    fn close(&mut self, cid: u64) {
        if let Some(conn) = self.conns.remove(&cid) {
            conn.stream.shutdown_both();
            self.waiters.retain(|w| w.conn != cid);
            if let Some(store) = &self.state.uploads {
                store.drop_conn(cid);
            }
            let tracer = self.tracer();
            if tracer.enabled() {
                tracer.emit("proto.conn_close", &[("conn", cid.into())]);
            }
        }
    }

    fn queue_to(&mut self, cid: u64, response: &Response) {
        if let Some(conn) = self.conns.get_mut(&cid) {
            conn.queue(response);
        }
    }

    fn lookup(&self, job: u64) -> Result<Ticket<JobOutput>, Response> {
        self.state
            .jobs
            .lock()
            .get(&job)
            .cloned()
            .ok_or(Response::Error {
                kind: "protocol".into(),
                message: format!("unknown job id {job}"),
            })
    }

    fn uploads(&self) -> Result<Arc<crate::uploads::UploadStore>, Response> {
        self.state.uploads.clone().ok_or(Response::Error {
            kind: "config".into(),
            message: "uploads require --state-dir".into(),
        })
    }

    fn replica(&self) -> Result<Arc<crate::fleet::ReplicaStore>, Response> {
        self.state.replica.clone().ok_or(Response::Error {
            kind: "config".into(),
            message: "journal replication requires --state-dir".into(),
        })
    }
}

fn error_response(e: &TractoError) -> Response {
    Response::Error {
        kind: e.kind().to_string(),
        message: e.to_string(),
    }
}

/// The verb name if this request needs a v2 connection.
fn v2_only(req: &Request) -> Option<&'static str> {
    match req {
        Request::Subscribe { .. } => Some("subscribe"),
        Request::UploadBegin { .. } => Some("upload_begin"),
        Request::UploadChunk { .. } => Some("upload_chunk"),
        Request::UploadCommit { .. } => Some("upload_commit"),
        _ => None,
    }
}
