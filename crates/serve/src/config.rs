//! Service configuration and its validating builder.
//!
//! [`ServiceConfigBuilder`] is the one place service knobs are defined:
//! every knob has a typed setter, a validation rule applied in
//! [`build`](ServiceConfigBuilder::build), and (where it makes sense on a
//! command line) an entry in [`CLI_FLAGS`](ServiceConfigBuilder::CLI_FLAGS)
//! consumed by [`set_cli`](ServiceConfigBuilder::set_cli) — so the CLI's
//! flag set is derived from the builder and cannot drift from it.

use std::path::PathBuf;
use std::time::Duration;
use tracto::tracking::SegmentationStrategy;
use tracto_gpu_sim::{DeviceConfig, FaultPlan};
use tracto_trace::{Tracer, TractoError, TractoResult};

/// Service tuning knobs. Construct via [`ServiceConfig::builder`] (which
/// validates) or field-by-field with `..Default::default()` in tests.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated device model.
    pub device: DeviceConfig,
    /// Devices in the tracking worker's group.
    pub devices: usize,
    /// Estimation worker threads (each owns one simulated GPU).
    pub estimate_workers: usize,
    /// Bound of both submission queues.
    pub queue_capacity: usize,
    /// Most jobs merged into one batch.
    pub max_batch_jobs: usize,
    /// How long the batch worker waits for more jobs after the first.
    pub batch_window: Duration,
    /// Segmentation schedule for batched launches. Results are invariant
    /// to this choice (it only shapes timing), so one service-wide
    /// schedule serves jobs that asked for different ones.
    pub strategy: SegmentationStrategy,
    /// In-memory sample-cache bound in bytes.
    pub cache_bytes: u64,
    /// Victim choice for both cache tiers when full. The default is the
    /// eviction-ablation winner (EXPERIMENTS.md); `--cache-policy` selects
    /// the others for re-running the ablation.
    pub cache_policy: crate::cache::EvictionPolicy,
    /// Optional on-disk sample cache shared with `tracto track --cache-dir`.
    pub disk_cache: Option<PathBuf>,
    /// Byte cap for the disk tier; `None` leaves it unbounded.
    pub disk_cache_bytes: Option<u64>,
    /// Deterministic fault schedule installed on the batch worker's device
    /// pool (chaos testing); `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Times a job may be re-queued after a device fault escapes the pool
    /// before it fails with the typed cause.
    pub retry_budget: u32,
    /// Backoff before the first retry; doubles per retry, capped at 1024×.
    pub retry_backoff: Duration,
    /// Durable-state directory: the write-ahead job journal and persistent
    /// MCMC checkpoints live here. `None` runs the service purely
    /// in-memory (no crash recovery).
    pub state_dir: Option<PathBuf>,
    /// Persist an MCMC checkpoint every N launch segments during
    /// estimation (0 disables mid-run checkpoints; the job journal still
    /// replays whole jobs). Requires `state_dir`.
    pub checkpoint_every: u32,
    /// Stream lanes for batched launches (1 = serialized legacy path).
    /// Results are bit-identical for any value; streams only let one
    /// job's host work hide behind another's kernels on the simulated
    /// clock.
    pub streams: usize,
    /// This host's fleet member name. Echoed in the protocol handshake and
    /// heartbeat answers, and used as the replication source name when
    /// [`replicate_to`](Self::replicate_to) is set. `None` = standalone.
    pub member: Option<String>,
    /// Stream every job-journal record to a standby at this endpoint (the
    /// fleet replication sink). Requires [`member`](Self::member) (the
    /// standby files records by source name) and
    /// [`state_dir`](Self::state_dir) (no journal, nothing to replicate).
    pub replicate_to: Option<tracto_proto::Endpoint>,
    /// Route `Priority::Low` MCMC tracking jobs onto the analytic fast
    /// tier at batch admission: they keep their full posterior for Step 1
    /// (the cache stays warm) but track the closed-form mean instead of
    /// every sample, trading per-sample fidelity for a far cheaper batch
    /// slot. Off by default — demotion changes results, so it is an
    /// explicit operator opt-in.
    pub approx_low: bool,
    /// Per-tenant token-bucket rate limit in jobs/second (burst capacity
    /// is one second of refill, minimum 1). `0.0` disables rate limiting.
    /// Each tenant gets its own bucket, so one tenant hammering submit
    /// cannot spend another's budget.
    pub rate_limit: f64,
    /// Structured-event sink for job lifecycle, cache, batch, and GPU
    /// events. Disabled by default.
    pub tracer: Tracer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            device: DeviceConfig::radeon_5870(),
            devices: 1,
            estimate_workers: 2,
            queue_capacity: 64,
            max_batch_jobs: 16,
            batch_window: Duration::from_millis(20),
            strategy: SegmentationStrategy::paper_table2(),
            cache_bytes: 256 * 1024 * 1024,
            cache_policy: crate::cache::EvictionPolicy::default(),
            disk_cache: None,
            disk_cache_bytes: None,
            fault_plan: None,
            retry_budget: 2,
            retry_backoff: Duration::from_millis(5),
            state_dir: None,
            checkpoint_every: 0,
            streams: 1,
            member: None,
            replicate_to: None,
            approx_low: false,
            rate_limit: 0.0,
            tracer: Tracer::disabled(),
        }
    }
}

impl ServiceConfig {
    /// Start building a validated configuration.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder::default()
    }
}

/// Builder for [`ServiceConfig`] with validation at
/// [`build`](Self::build) time. All setters take and return `self` so
/// configurations read as one chain.
#[derive(Debug, Clone, Default)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
    /// Deferred `--fault-seed`: a seeded plan needs the final device count,
    /// so it is generated in `build()` rather than at set time.
    fault_seed: Option<u64>,
}

impl ServiceConfigBuilder {
    /// The service flags a CLI exposes, as `(name, value-hint, help)`.
    /// [`set_cli`](Self::set_cli) accepts exactly these names, so commands
    /// can loop over this table for both parsing and usage text.
    pub const CLI_FLAGS: [(&'static str, &'static str, &'static str); 19] = [
        ("devices", "N", "devices in the tracking pool (default 1)"),
        ("workers", "N", "estimation worker threads (default 2)"),
        (
            "max-batch",
            "N",
            "max jobs merged into one batch (default 16)",
        ),
        ("batch-window-ms", "MS", "batching window (default 20)"),
        ("strategy", "S", "segmentation: B|C|single|every|uniform:K"),
        (
            "cache-mb",
            "MB",
            "in-memory sample cache bound (default 256)",
        ),
        (
            "cache-policy",
            "P",
            "cache eviction policy: lru|lfu|cost (default cost)",
        ),
        ("cache-dir", "DIR", "on-disk sample cache directory"),
        ("disk-cache-mb", "MB", "byte cap for the disk cache tier"),
        ("fault-plan", "FILE", "deterministic fault schedule"),
        ("fault-seed", "S", "generate a recoverable fault schedule"),
        (
            "retry-budget",
            "N",
            "job re-queues after device faults (default 2)",
        ),
        (
            "state-dir",
            "DIR",
            "durable state: job journal + MCMC checkpoints",
        ),
        (
            "checkpoint-every",
            "N",
            "persist an MCMC checkpoint every N segments (0 = off)",
        ),
        (
            "streams",
            "N",
            "stream lanes for batched launches (default 1 = serialized)",
        ),
        ("member", "NAME", "fleet member name for this host"),
        (
            "replicate-to",
            "EP",
            "stream journal records to a standby at this endpoint",
        ),
        (
            "approx-low",
            "BOOL",
            "route low-priority track jobs to the analytic fast tier",
        ),
        (
            "rate-limit",
            "JPS",
            "per-tenant token-bucket rate limit in jobs/sec (0 = off)",
        ),
    ];

    /// Set the simulated device model.
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.config.device = device;
        self
    }

    /// Set the tracking-pool device count.
    pub fn devices(mut self, devices: usize) -> Self {
        self.config.devices = devices;
        self
    }

    /// Set the estimation worker count.
    pub fn estimate_workers(mut self, workers: usize) -> Self {
        self.config.estimate_workers = workers;
        self
    }

    /// Set the submission-queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Set the per-batch job bound.
    pub fn max_batch_jobs(mut self, jobs: usize) -> Self {
        self.config.max_batch_jobs = jobs;
        self
    }

    /// Set the batching window.
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Set the segmentation schedule.
    pub fn strategy(mut self, strategy: SegmentationStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Set the in-memory cache bound in bytes.
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.config.cache_bytes = bytes;
        self
    }

    /// Set the eviction policy for both cache tiers.
    pub fn cache_policy(mut self, policy: crate::cache::EvictionPolicy) -> Self {
        self.config.cache_policy = policy;
        self
    }

    /// Enable the on-disk cache tier.
    pub fn disk_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.disk_cache = Some(dir.into());
        self
    }

    /// Cap the disk cache tier.
    pub fn disk_cache_bytes(mut self, bytes: u64) -> Self {
        self.config.disk_cache_bytes = Some(bytes);
        self
    }

    /// Install an explicit fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = Some(plan);
        self
    }

    /// Generate a recoverable fault schedule at build time, seeded over the
    /// final device count. Mutually exclusive with
    /// [`fault_plan`](Self::fault_plan).
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = Some(seed);
        self
    }

    /// Set the per-job retry budget.
    pub fn retry_budget(mut self, budget: u32) -> Self {
        self.config.retry_budget = budget;
        self
    }

    /// Set the initial retry backoff.
    pub fn retry_backoff(mut self, backoff: Duration) -> Self {
        self.config.retry_backoff = backoff;
        self
    }

    /// Enable durable state (write-ahead job journal and persistent MCMC
    /// checkpoints) under `dir`.
    pub fn state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.state_dir = Some(dir.into());
        self
    }

    /// Persist an MCMC checkpoint every `n` launch segments (0 disables).
    pub fn checkpoint_every(mut self, n: u32) -> Self {
        self.config.checkpoint_every = n;
        self
    }

    /// Set the stream-lane count for batched launches (1 = serialized).
    pub fn streams(mut self, streams: usize) -> Self {
        self.config.streams = streams;
        self
    }

    /// Name this host as a fleet member.
    pub fn member(mut self, name: impl Into<String>) -> Self {
        self.config.member = Some(name.into());
        self
    }

    /// Replicate the job journal to a standby at `endpoint`.
    pub fn replicate_to(mut self, endpoint: tracto_proto::Endpoint) -> Self {
        self.config.replicate_to = Some(endpoint);
        self
    }

    /// Route low-priority MCMC tracking jobs onto the analytic fast tier
    /// at batch admission.
    pub fn approx_low(mut self, on: bool) -> Self {
        self.config.approx_low = on;
        self
    }

    /// Set the per-tenant token-bucket rate limit in jobs/second
    /// (`0.0` disables).
    pub fn rate_limit(mut self, jobs_per_sec: f64) -> Self {
        self.config.rate_limit = jobs_per_sec;
        self
    }

    /// Install an event sink.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Apply one CLI flag by name (a name from
    /// [`CLI_FLAGS`](Self::CLI_FLAGS), without leading dashes). Unknown
    /// names and malformed values are [`TractoError::Config`].
    pub fn set_cli(self, name: &str, value: &str) -> TractoResult<Self> {
        fn num<T: std::str::FromStr>(name: &str, value: &str) -> TractoResult<T> {
            value
                .parse()
                .map_err(|_| TractoError::config(format!("--{name}: bad value `{value}`")))
        }
        Ok(match name {
            "devices" => self.devices(num(name, value)?),
            "workers" => self.estimate_workers(num(name, value)?),
            "max-batch" => self.max_batch_jobs(num(name, value)?),
            "batch-window-ms" => self.batch_window(Duration::from_millis(num::<u64>(name, value)?)),
            "strategy" => self.strategy(SegmentationStrategy::parse(value)?),
            "cache-mb" => self.cache_bytes(num::<u64>(name, value)? << 20),
            "cache-policy" => self.cache_policy(crate::cache::EvictionPolicy::parse(value)?),
            "cache-dir" => self.disk_cache(value),
            "disk-cache-mb" => self.disk_cache_bytes(num::<u64>(name, value)? << 20),
            "fault-plan" => self.fault_plan(FaultPlan::load(value)?),
            "fault-seed" => self.fault_seed(num(name, value)?),
            "retry-budget" => self.retry_budget(num(name, value)?),
            "state-dir" => self.state_dir(value),
            "checkpoint-every" => self.checkpoint_every(num(name, value)?),
            "streams" => self.streams(num(name, value)?),
            "member" => self.member(value),
            "replicate-to" => self.replicate_to(tracto_proto::Endpoint::parse(value)?),
            "approx-low" => match value {
                "true" | "on" | "1" => self.approx_low(true),
                "false" | "off" | "0" => self.approx_low(false),
                other => {
                    return Err(TractoError::config(format!(
                        "--approx-low: bad value `{other}` (true|false)"
                    )))
                }
            },
            "rate-limit" => self.rate_limit(num(name, value)?),
            other => {
                return Err(TractoError::config(format!(
                    "unknown service flag `--{other}`"
                )))
            }
        })
    }

    /// Validate and produce the configuration. Every failure is a
    /// [`TractoError::Config`] naming the offending knob.
    pub fn build(self) -> TractoResult<ServiceConfig> {
        let mut config = self.config;
        if config.devices == 0 {
            return Err(TractoError::config("devices must be positive"));
        }
        if config.estimate_workers == 0 {
            return Err(TractoError::config("workers must be positive"));
        }
        if config.max_batch_jobs == 0 {
            return Err(TractoError::config("max-batch must be positive"));
        }
        if config.queue_capacity == 0 {
            return Err(TractoError::config("queue capacity must be positive"));
        }
        if config.cache_bytes == 0 {
            return Err(TractoError::config("cache-mb must be positive"));
        }
        if config.batch_window > Duration::from_secs(60) {
            return Err(TractoError::config(
                "batch-window-ms above 60s holds jobs hostage",
            ));
        }
        if config.streams == 0 {
            return Err(TractoError::config(
                "streams must be positive (1 = serialized)",
            ));
        }
        if !config.rate_limit.is_finite() || config.rate_limit < 0.0 {
            return Err(TractoError::config(
                "rate-limit must be a finite jobs/sec value (0 = off)",
            ));
        }
        if config.checkpoint_every > 0 && config.state_dir.is_none() {
            return Err(TractoError::config(
                "checkpoint-every requires state-dir (checkpoints need somewhere to live)",
            ));
        }
        if let Some(name) = &config.member {
            if name.is_empty()
                || name.len() > 64
                || !name
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
            {
                return Err(TractoError::config(format!(
                    "member name `{name}` must be 1-64 chars of [A-Za-z0-9._-]"
                )));
            }
        }
        if config.replicate_to.is_some() {
            if config.member.is_none() {
                return Err(TractoError::config(
                    "replicate-to requires member (the standby files records by source name)",
                ));
            }
            if config.state_dir.is_none() {
                return Err(TractoError::config(
                    "replicate-to requires state-dir (without a journal there is nothing \
                     to replicate)",
                ));
            }
        }
        if let Some(seed) = self.fault_seed {
            if config.fault_plan.is_some() {
                return Err(TractoError::config(
                    "fault-plan and fault-seed are mutually exclusive",
                ));
            }
            config.fault_plan = Some(FaultPlan::seeded(seed, config.devices as u32));
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::ErrorKind;

    #[test]
    fn builder_defaults_match_config_defaults() {
        let built = ServiceConfig::builder().build().unwrap();
        let def = ServiceConfig::default();
        assert_eq!(built.devices, def.devices);
        assert_eq!(built.estimate_workers, def.estimate_workers);
        assert_eq!(built.queue_capacity, def.queue_capacity);
        assert_eq!(built.max_batch_jobs, def.max_batch_jobs);
        assert_eq!(built.batch_window, def.batch_window);
        assert_eq!(built.cache_bytes, def.cache_bytes);
        assert_eq!(built.retry_budget, def.retry_budget);
        assert!(built.fault_plan.is_none());
    }

    #[test]
    fn invalid_knobs_are_typed_config_errors() {
        for builder in [
            ServiceConfig::builder().devices(0),
            ServiceConfig::builder().estimate_workers(0),
            ServiceConfig::builder().max_batch_jobs(0),
            ServiceConfig::builder().queue_capacity(0),
            ServiceConfig::builder().cache_bytes(0),
            ServiceConfig::builder().batch_window(Duration::from_secs(3600)),
            ServiceConfig::builder().checkpoint_every(2),
            ServiceConfig::builder().streams(0),
            ServiceConfig::builder().member("no spaces allowed"),
            // replicate-to without member / without state-dir.
            ServiceConfig::builder()
                .replicate_to(tracto_proto::Endpoint::parse("unix:/tmp/x.sock").unwrap()),
            ServiceConfig::builder()
                .member("m0")
                .replicate_to(tracto_proto::Endpoint::parse("unix:/tmp/x.sock").unwrap()),
        ] {
            let err = builder.build().expect_err("must be rejected");
            assert_eq!(err.kind(), ErrorKind::Config);
        }
    }

    #[test]
    fn fault_seed_resolves_against_final_device_count() {
        let cfg = ServiceConfig::builder()
            .fault_seed(9)
            .devices(3)
            .build()
            .unwrap();
        let plan = cfg.fault_plan.expect("seeded plan generated");
        // Seeded plans target only devices that exist.
        assert!(plan.events.iter().all(|e| e.device < 3));
        let err = ServiceConfig::builder()
            .fault_seed(9)
            .fault_plan(FaultPlan::seeded(1, 1))
            .build()
            .expect_err("seed and plan are mutually exclusive");
        assert!(err.to_string().contains("mutually exclusive"));
    }

    #[test]
    fn cli_flags_round_trip_through_set_cli() {
        let mut b = ServiceConfig::builder();
        for (name, value) in [
            ("devices", "3"),
            ("workers", "4"),
            ("max-batch", "8"),
            ("batch-window-ms", "15"),
            ("strategy", "uniform:50"),
            ("cache-mb", "64"),
            ("cache-policy", "lfu"),
            ("cache-dir", "/tmp/tracto-test-cache"),
            ("disk-cache-mb", "128"),
            ("retry-budget", "5"),
            ("state-dir", "/tmp/tracto-test-state"),
            ("checkpoint-every", "2"),
            ("streams", "4"),
            ("member", "m0"),
            ("replicate-to", "unix:/tmp/tracto-test-standby.sock"),
            ("approx-low", "true"),
            ("rate-limit", "2.5"),
        ] {
            assert!(
                ServiceConfigBuilder::CLI_FLAGS
                    .iter()
                    .any(|(n, _, _)| *n == name),
                "{name} missing from CLI_FLAGS"
            );
            b = b.set_cli(name, value).unwrap();
        }
        let cfg = b.build().unwrap();
        assert_eq!(cfg.devices, 3);
        assert_eq!(cfg.estimate_workers, 4);
        assert_eq!(cfg.max_batch_jobs, 8);
        assert_eq!(cfg.batch_window, Duration::from_millis(15));
        assert_eq!(cfg.strategy, SegmentationStrategy::Uniform(50));
        assert_eq!(cfg.cache_bytes, 64 << 20);
        assert_eq!(cfg.cache_policy, crate::cache::EvictionPolicy::Lfu);
        assert_eq!(
            cfg.disk_cache.as_deref().unwrap().to_str().unwrap(),
            "/tmp/tracto-test-cache"
        );
        assert_eq!(cfg.disk_cache_bytes, Some(128 << 20));
        assert_eq!(cfg.retry_budget, 5);
        assert_eq!(
            cfg.state_dir.as_deref().unwrap().to_str().unwrap(),
            "/tmp/tracto-test-state"
        );
        assert_eq!(cfg.checkpoint_every, 2);
        assert_eq!(cfg.streams, 4);
        assert_eq!(cfg.member.as_deref(), Some("m0"));
        assert_eq!(
            cfg.replicate_to.as_ref().unwrap().to_string(),
            "unix:/tmp/tracto-test-standby.sock"
        );
        assert!(cfg.approx_low);
        assert_eq!(cfg.rate_limit, 2.5);
        assert!(ServiceConfig::builder()
            .set_cli("approx-low", "maybe")
            .is_err());
        assert!(ServiceConfig::builder()
            .rate_limit(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn every_cli_flag_name_is_accepted_by_set_cli() {
        // A flag listed in CLI_FLAGS but not handled in set_cli (or vice
        // versa) is exactly the drift this table exists to prevent.
        for (name, _, _) in ServiceConfigBuilder::CLI_FLAGS {
            let sample = match name {
                "strategy" => "B",
                "cache-dir" | "state-dir" => "/tmp/x",
                "fault-plan" => continue, // needs a real file; covered below
                "member" => "m0",
                "replicate-to" => "unix:/tmp/x.sock",
                "approx-low" => "true",
                "cache-policy" => "lru",
                _ => "1",
            };
            ServiceConfig::builder()
                .set_cli(name, sample)
                .unwrap_or_else(|e| panic!("flag {name} rejected: {e}"));
        }
        let err = ServiceConfig::builder()
            .set_cli("warp-factor", "9")
            .expect_err("unknown flags rejected");
        assert_eq!(err.kind(), ErrorKind::Config);
        assert!(ServiceConfig::builder()
            .set_cli("fault-plan", "/nonexistent/plan.txt")
            .is_err());
    }
}
