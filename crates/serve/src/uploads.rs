//! Content-addressed staging for chunked volume uploads (protocol v2).
//!
//! A client uploads a DWI container (a TRDS blob, see `tracto::loaded`)
//! in three verbs: `upload_begin` declares `(hash, len)`, `upload_chunk`
//! appends base64 chunks in order, and `upload_commit` verifies the
//! staged bytes against the declared FNV-1a hash and publishes them.
//! Everything lives under `<state-dir>/uploads/`:
//!
//! - `<hash>.<conn>.part` — bytes staged by one connection. Private to
//!   that connection; deleted the moment it disconnects without
//!   committing, and swept at bind time (a `.part` left by a crashed
//!   server has no owner).
//! - `<hash>.trds` — a committed, verified blob. Immutable: the name *is*
//!   the content hash, so a re-upload of the same bytes is a no-op
//!   (`upload_begin` answers `complete: true`) and a job spec can
//!   reference it forever.
//!
//! Resumability falls out of the naming: a client that reconnects gets a
//! fresh connection id and restarts at offset 0, but a client that
//! retries on the *same* connection continues from the staged length
//! that `upload_begin` reports.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tracto_proto::{content_digest, UPLOAD_CHUNK_MAX};
use tracto_trace::{TractoError, TractoResult};

/// Largest blob a server will stage (256 MiB). Far above any dataset this
/// pipeline produces; the cap exists so a hostile `upload_begin` cannot
/// reserve unbounded disk.
pub const MAX_UPLOAD_BYTES: u64 = 256 << 20;

/// File extension of a committed blob.
pub const COMMITTED_EXT: &str = "trds";

/// One connection's open (uncommitted) upload.
struct OpenUpload {
    declared_len: u64,
    staged: u64,
}

/// A directory of staged and committed uploads, shared by every reactor
/// connection.
pub struct UploadStore {
    dir: PathBuf,
    open: Mutex<HashMap<(u64, String), OpenUpload>>,
}

impl UploadStore {
    /// Open (creating if needed) the store at `dir` and sweep orphaned
    /// staging files from a previous process.
    pub fn open(dir: &Path) -> TractoResult<Self> {
        fs::create_dir_all(dir)
            .map_err(|e| TractoError::io(format!("create upload dir {}", dir.display()), e))?;
        let entries = fs::read_dir(dir)
            .map_err(|e| TractoError::io(format!("scan upload dir {}", dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| TractoError::io("scan upload dir", e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("part") {
                // Best effort: a sweep failure must not block binding.
                let _ = fs::remove_file(&path);
            }
        }
        Ok(UploadStore {
            dir: dir.to_path_buf(),
            open: Mutex::new(HashMap::new()),
        })
    }

    /// The path a committed blob lives at.
    pub fn committed_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.{COMMITTED_EXT}"))
    }

    fn staging_path(&self, conn: u64, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.{conn}.part"))
    }

    /// Open or resume an upload. Returns `(offset, complete)`: the offset
    /// the client should continue from, or `complete: true` when the hash
    /// is already committed and nothing need be sent.
    pub fn begin(&self, conn: u64, hash: &str, len: u64) -> TractoResult<(u64, bool)> {
        validate_hash(hash)?;
        if len == 0 {
            return Err(TractoError::protocol("upload length must be nonzero"));
        }
        if len > MAX_UPLOAD_BYTES {
            return Err(TractoError::protocol(format!(
                "upload of {len} bytes exceeds the {MAX_UPLOAD_BYTES}-byte limit"
            )));
        }
        if self.committed_path(hash).is_file() {
            return Ok((len, true));
        }
        let staging = self.staging_path(conn, hash);
        let staged = match fs::metadata(&staging) {
            Ok(meta) => meta.len(),
            Err(_) => {
                File::create(&staging)
                    .map_err(|e| TractoError::io(format!("create {}", staging.display()), e))?;
                0
            }
        };
        let mut open = self.open.lock();
        let entry = open.entry((conn, hash.to_string())).or_insert(OpenUpload {
            declared_len: len,
            staged,
        });
        if entry.declared_len != len {
            return Err(TractoError::protocol(format!(
                "upload {hash} was opened with length {}, not {len}",
                entry.declared_len
            )));
        }
        Ok((entry.staged, false))
    }

    /// Append one decoded chunk at `offset`. The offset must equal the
    /// staged length — `upload_begin` told the client where to resume, so
    /// anything else is a protocol violation, answered in-band.
    pub fn chunk(&self, conn: u64, hash: &str, offset: u64, data: &[u8]) -> TractoResult<u64> {
        validate_hash(hash)?;
        if data.is_empty() {
            return Err(TractoError::protocol("upload chunk is empty"));
        }
        if data.len() as u64 > UPLOAD_CHUNK_MAX {
            return Err(TractoError::protocol(format!(
                "upload chunk of {} bytes exceeds the {UPLOAD_CHUNK_MAX}-byte chunk limit",
                data.len()
            )));
        }
        let mut open = self.open.lock();
        let key = (conn, hash.to_string());
        let entry = open.get_mut(&key).ok_or_else(|| {
            TractoError::protocol(format!(
                "upload {hash} is not open (send upload_begin first)"
            ))
        })?;
        if offset != entry.staged {
            return Err(TractoError::protocol(format!(
                "upload {hash} chunk at offset {offset}, expected {}",
                entry.staged
            )));
        }
        let new_len = entry.staged + data.len() as u64;
        if new_len > entry.declared_len {
            return Err(TractoError::protocol(format!(
                "upload {hash} would grow to {new_len} bytes, beyond its declared {}",
                entry.declared_len
            )));
        }
        let staging = self.staging_path(conn, hash);
        let mut f = OpenOptions::new()
            .append(true)
            .open(&staging)
            .map_err(|e| TractoError::io(format!("append {}", staging.display()), e))?;
        f.write_all(data)
            .map_err(|e| TractoError::io(format!("append {}", staging.display()), e))?;
        entry.staged = new_len;
        Ok(new_len)
    }

    /// Verify the staged bytes against the declared hash and publish the
    /// blob. Returns its length. The staging file is consumed either way:
    /// renamed into place on success, deleted on a hash mismatch.
    pub fn commit(&self, conn: u64, hash: &str) -> TractoResult<u64> {
        validate_hash(hash)?;
        let key = (conn, hash.to_string());
        let entry = self.open.lock().remove(&key).ok_or_else(|| {
            TractoError::protocol(format!(
                "upload {hash} is not open (send upload_begin first)"
            ))
        })?;
        let staging = self.staging_path(conn, hash);
        if entry.staged != entry.declared_len {
            let _ = fs::remove_file(&staging);
            return Err(TractoError::protocol(format!(
                "upload {hash} committed at {} of {} declared bytes",
                entry.staged, entry.declared_len
            )));
        }
        let bytes = fs::read(&staging)
            .map_err(|e| TractoError::io(format!("read {}", staging.display()), e))?;
        let actual = format!("{:016x}", content_digest(&bytes));
        if actual != hash {
            let _ = fs::remove_file(&staging);
            return Err(TractoError::protocol(format!(
                "upload content hashes to {actual}, not the declared {hash}"
            )));
        }
        let committed = self.committed_path(hash);
        if committed.is_file() {
            // Another connection won the race; their bytes are ours.
            let _ = fs::remove_file(&staging);
            return Ok(entry.declared_len);
        }
        fs::rename(&staging, &committed)
            .map_err(|e| TractoError::io(format!("publish {}", committed.display()), e))?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(entry.declared_len)
    }

    /// Drop every uncommitted upload owned by a connection (called when it
    /// closes, for any reason). Committed blobs are untouched.
    pub fn drop_conn(&self, conn: u64) {
        let mut open = self.open.lock();
        let dead: Vec<(u64, String)> = open.keys().filter(|(c, _)| *c == conn).cloned().collect();
        for key in dead {
            let _ = fs::remove_file(self.staging_path(key.0, &key.1));
            open.remove(&key);
        }
    }

    /// Number of `.part` files currently on disk (test hook).
    pub fn staging_files(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("part"))
                    .count()
            })
            .unwrap_or(0)
    }
}

fn validate_hash(hash: &str) -> TractoResult<()> {
    let ok = hash.len() == 16
        && hash
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
    if ok {
        Ok(())
    } else {
        Err(TractoError::protocol(format!(
            "upload hash `{hash}` is not 16 lowercase hex digits"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_trace::ErrorKind;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tracto-uploads-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn hash_of(bytes: &[u8]) -> String {
        format!("{:016x}", content_digest(bytes))
    }

    #[test]
    fn begin_chunk_commit_publishes_the_blob() {
        let dir = tmp_dir("roundtrip");
        let store = UploadStore::open(&dir).unwrap();
        let blob: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_be_bytes()).collect();
        let hash = hash_of(&blob);
        let (offset, complete) = store.begin(7, &hash, blob.len() as u64).unwrap();
        assert_eq!((offset, complete), (0, false));
        let mut sent = 0usize;
        for chunk in blob.chunks(4096) {
            let got = store.chunk(7, &hash, sent as u64, chunk).unwrap();
            sent += chunk.len();
            assert_eq!(got, sent as u64);
        }
        assert_eq!(store.commit(7, &hash).unwrap(), blob.len() as u64);
        assert_eq!(fs::read(store.committed_path(&hash)).unwrap(), blob);
        assert_eq!(store.staging_files(), 0);
        // A second upload of the same content is already complete.
        let (off, complete) = store.begin(8, &hash, blob.len() as u64).unwrap();
        assert!(complete);
        assert_eq!(off, blob.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_chunks_are_in_band_protocol_errors() {
        let dir = tmp_dir("hostile");
        let store = UploadStore::open(&dir).unwrap();
        let blob = vec![0xAAu8; 1000];
        let hash = hash_of(&blob);

        // Chunk without begin.
        let err = store.chunk(1, &hash, 0, &blob).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);

        store.begin(1, &hash, 1000).unwrap();
        // Wrong offset.
        let err = store.chunk(1, &hash, 10, &blob[..100]).unwrap_err();
        assert!(err.to_string().contains("expected 0"), "{err}");
        // Overflowing the declared length.
        store.chunk(1, &hash, 0, &blob[..600]).unwrap();
        let err = store.chunk(1, &hash, 600, &blob[..600]).unwrap_err();
        assert!(err.to_string().contains("beyond its declared"), "{err}");
        // Oversized single chunk.
        let big = vec![0u8; (UPLOAD_CHUNK_MAX + 1) as usize];
        let err = store.chunk(1, &hash, 600, &big).unwrap_err();
        assert!(err.to_string().contains("chunk limit"), "{err}");
        // Bad hash string.
        assert_eq!(
            store.begin(1, "DEADBEEF", 10).unwrap_err().kind(),
            ErrorKind::Protocol
        );
        // Oversized declared length.
        let err = store
            .begin(1, &hash_of(b"x"), MAX_UPLOAD_BYTES + 1)
            .unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        // Committing short leaves nothing behind.
        let err = store.commit(1, &hash).unwrap_err();
        assert!(err.to_string().contains("600 of 1000"), "{err}");
        assert_eq!(store.staging_files(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lying_hash_is_rejected_and_staging_removed() {
        let dir = tmp_dir("liar");
        let store = UploadStore::open(&dir).unwrap();
        let blob = b"the real content".to_vec();
        let lie = hash_of(b"something else");
        store.begin(3, &lie, blob.len() as u64).unwrap();
        store.chunk(3, &lie, 0, &blob).unwrap();
        let err = store.commit(3, &lie).unwrap_err();
        assert!(err.to_string().contains("hashes to"), "{err}");
        assert_eq!(store.staging_files(), 0);
        assert!(!store.committed_path(&lie).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disconnect_drops_staging_and_resume_continues_on_same_conn() {
        let dir = tmp_dir("resume");
        let store = UploadStore::open(&dir).unwrap();
        let blob = vec![7u8; 9000];
        let hash = hash_of(&blob);
        store.begin(5, &hash, 9000).unwrap();
        store.chunk(5, &hash, 0, &blob[..4000]).unwrap();
        // Same connection re-begins (client retry): resumes at 4000.
        let (off, complete) = store.begin(5, &hash, 9000).unwrap();
        assert_eq!((off, complete), (4000, false));
        store.chunk(5, &hash, 4000, &blob[4000..]).unwrap();
        // A different connection's disconnect does not touch it...
        store.drop_conn(6);
        assert_eq!(store.staging_files(), 1);
        // ...but its own does.
        store.drop_conn(5);
        assert_eq!(store.staging_files(), 0);
        assert!(store.commit(5, &hash).is_err(), "open state was dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bind_time_sweep_removes_orphans() {
        let dir = tmp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("aaaaaaaaaaaaaaaa.3.part"), b"orphan").unwrap();
        fs::write(dir.join("bbbbbbbbbbbbbbbb.trds"), b"committed").unwrap();
        let store = UploadStore::open(&dir).unwrap();
        assert_eq!(store.staging_files(), 0);
        assert!(dir.join("bbbbbbbbbbbbbbbb.trds").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
