//! The write-ahead job journal: crash durability for accepted jobs.
//!
//! Every lifecycle transition of a journalable job is appended — and
//! fsync'd — to `journal.jsonl` under the service's `--state-dir` *before*
//! the transition becomes observable to clients. On startup,
//! [`JobJournal::open`] replays the journal: jobs with a `submitted`
//! record but no terminal record are returned as [`RecoveredJob`]s for the
//! service to re-enqueue, then the journal is compacted down to exactly
//! those records. Together with the persistent MCMC checkpoints this
//! bounds the cost of a `kill -9` to one checkpoint interval — and loses
//! no accepted job.
//!
//! Only wire-form jobs are journalable: a [`tracto_proto::JobSpec`] names
//! its dataset as a deterministic phantom recipe, so a replayed job is
//! bit-identical to the original. Jobs submitted in-process with an
//! `Arc<Dataset>` have no durable description and are never journaled.
//!
//! Single-writer discipline is enforced with a PID-stamped `journal.lock`:
//! a live owner is a hard [`Config`](tracto_trace::ErrorKind::Config)
//! error, a dead owner's lock is stolen (with a `journal.lock_stolen`
//! trace event) so an unclean crash never wedges recovery.

use crossbeam::channel::Sender;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind as IoErrorKind, Write as _};
use std::path::{Path, PathBuf};
use tracto_trace::json::{parse, Json};
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

/// A job found in the journal with no terminal record: it was accepted
/// before the crash and must be re-enqueued.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The original job id — recovery preserves ids so clients polling
    /// across a restart keep their handle.
    pub id: u64,
    /// The wire spec to re-run.
    pub spec: tracto_proto::JobSpec,
    /// Key of the job's latest persistent MCMC checkpoint, when one was
    /// recorded. The re-run recomputes the same sample key and resumes
    /// from this snapshot rather than restarting Step 1 from scratch.
    pub checkpoint: Option<String>,
}

/// What [`JobJournal::open`] found on disk.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Unfinished jobs, in submission (id) order.
    pub jobs: Vec<RecoveredJob>,
    /// The highest job id ever journaled; the service must start
    /// allocating above it so recovered and fresh jobs never collide.
    pub max_seen_id: u64,
}

struct Inner {
    file: File,
    /// Ids with a `submitted` record and no terminal record yet. Guards
    /// against journaling transitions of jobs that were never journaled
    /// (in-process submissions) and against double terminal records.
    open_jobs: HashSet<u64>,
    /// Fleet replication tee: every appended record is also sent here (the
    /// replicator streams them to the standby). Sends never block and a
    /// dropped receiver is ignored — replication must not slow or wedge
    /// the local write-ahead path.
    mirror: Option<Sender<String>>,
}

/// An fsync'd, append-only JSON-lines journal of job lifecycle records.
pub struct JobJournal {
    inner: Mutex<Inner>,
    path: PathBuf,
    lock_path: PathBuf,
    tracer: Tracer,
}

const JOURNAL_FILE: &str = "journal.jsonl";
const LOCK_FILE: &str = "journal.lock";

/// Is the process with this pid still running? Checked via procfs; on
/// hosts without `/proc` the lock is treated as stale — recovery must
/// never wedge on a crashed owner.
fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    proc_root.is_dir() && proc_root.join(pid.to_string()).exists()
}

impl JobJournal {
    /// Open (or create) the journal in `dir`, acquire the single-writer
    /// lock, replay any existing records, and compact. Fails with a
    /// [`Config`](tracto_trace::ErrorKind::Config) error if another live
    /// process holds the lock.
    pub fn open(dir: &Path, tracer: Tracer) -> TractoResult<(JobJournal, Recovery)> {
        fs::create_dir_all(dir).map_err(TractoError::from)?;
        let lock_path = dir.join(LOCK_FILE);
        acquire_lock(&lock_path, &tracer)?;
        let path = dir.join(JOURNAL_FILE);
        let recovery = replay(&path, &tracer)?;
        compact(dir, &path, &recovery)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(TractoError::from)?;
        let open_jobs = recovery.jobs.iter().map(|j| j.id).collect();
        if tracer.enabled() && !recovery.jobs.is_empty() {
            tracer.emit(
                "journal.recovered",
                &[
                    ("jobs", (recovery.jobs.len() as u64).into()),
                    ("max_id", recovery.max_seen_id.into()),
                ],
            );
        }
        Ok((
            JobJournal {
                inner: Mutex::new(Inner {
                    file,
                    open_jobs,
                    mirror: None,
                }),
                path,
                lock_path,
                tracer,
            },
            recovery,
        ))
    }

    /// Path of the journal file (for tests and tooling).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attach a replication mirror: every record appended after this call
    /// is also sent on `tx`, in append order. Attach before any submission
    /// is possible (the service does this during startup) so the mirror
    /// stream plus the on-disk snapshot covers every record ever written.
    pub fn set_mirror(&self, tx: Sender<String>) {
        self.inner.lock().mirror = Some(tx);
    }

    /// The current journal text under the append lock — the snapshot a
    /// replicator pairs with the mirror stream (records appended after
    /// this read arrive on the mirror, so snapshot + stream is gap-free).
    pub fn snapshot_text(&self) -> String {
        let _guard = self.inner.lock();
        fs::read_to_string(&self.path).unwrap_or_default()
    }

    /// Record an accepted job, durably, *before* the acceptance becomes
    /// observable. The spec is embedded in wire JSON form so recovery can
    /// re-run it bit-identically.
    pub fn submitted(&self, id: u64, spec: &tracto_proto::JobSpec) {
        let mut inner = self.inner.lock();
        if !inner.open_jobs.insert(id) {
            return; // already journaled (a recovered job being re-enqueued)
        }
        let line = format!(
            "{{\"rec\":\"submitted\",\"job\":{id},\"spec\":{}}}",
            spec.to_json_string()
        );
        self.append(&mut inner, &line);
    }

    /// Record that a journaled job entered the work queues.
    pub fn admitted(&self, id: u64) {
        let mut inner = self.inner.lock();
        if !inner.open_jobs.contains(&id) {
            return;
        }
        self.append(
            &mut inner,
            &format!("{{\"rec\":\"admitted\",\"job\":{id}}}"),
        );
    }

    /// Record the persistent-checkpoint key a journaled job's estimation
    /// writes under, so recovery can rebind the re-run to its snapshot.
    pub fn checkpointed(&self, id: u64, key: &str) {
        let mut inner = self.inner.lock();
        if !inner.open_jobs.contains(&id) {
            return;
        }
        // Keys are CheckpointStore keys ([A-Za-z0-9._-]), safe to embed
        // without escaping.
        self.append(
            &mut inner,
            &format!("{{\"rec\":\"checkpointed\",\"job\":{id},\"key\":\"{key}\"}}"),
        );
    }

    /// Record successful completion (terminal).
    pub fn completed(&self, id: u64) {
        self.terminal(id, format!("{{\"rec\":\"completed\",\"job\":{id}}}"));
    }

    /// Record cancellation (terminal).
    pub fn cancelled(&self, id: u64) {
        self.terminal(id, format!("{{\"rec\":\"cancelled\",\"job\":{id}}}"));
    }

    /// Record permanent failure with the number of retries spent
    /// (terminal).
    pub fn failed(&self, id: u64, retries: u32) {
        self.terminal(
            id,
            format!("{{\"rec\":\"failed\",\"job\":{id},\"retries\":{retries}}}"),
        );
    }

    fn terminal(&self, id: u64, line: String) {
        let mut inner = self.inner.lock();
        if !inner.open_jobs.remove(&id) {
            return;
        }
        self.append(&mut inner, &line);
    }

    /// Append one record and fsync. Failures after open are surfaced as
    /// trace events, not errors — the job itself must still run; only its
    /// crash durability degrades.
    fn append(&self, inner: &mut Inner, line: &str) {
        if let Some(mirror) = &inner.mirror {
            // Unbounded channel: never blocks. A gone replicator is not
            // this journal's problem.
            let _ = mirror.send(line.to_string());
        }
        let result = writeln!(inner.file, "{line}").and_then(|_| inner.file.sync_data());
        if let Err(err) = result {
            if self.tracer.enabled() {
                self.tracer.emit(
                    "journal.write_error",
                    &[("error", Value::Text(err.to_string()))],
                );
            }
        }
    }
}

impl Drop for JobJournal {
    fn drop(&mut self) {
        // Release the single-writer lock on clean shutdown. After a crash
        // the stale lock stays behind and the next open steals it.
        let _ = fs::remove_file(&self.lock_path);
    }
}

/// Take the PID lock, stealing it from a dead owner.
fn acquire_lock(lock_path: &Path, tracer: &Tracer) -> TractoResult<()> {
    for _ in 0..2 {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                let _ = f.sync_data();
                return Ok(());
            }
            Err(err) if err.kind() == IoErrorKind::AlreadyExists => {
                let owner = fs::read_to_string(lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                if let Some(pid) = owner {
                    if pid_alive(pid) {
                        return Err(TractoError::config(format!(
                            "state dir is locked by live process {pid} \
                             (another server on the same --state-dir?)"
                        )));
                    }
                }
                // Dead (or unreadable) owner: steal the lock and retry.
                if tracer.enabled() {
                    tracer.emit(
                        "journal.lock_stolen",
                        &[("owner_pid", u64::from(owner.unwrap_or(0)).into())],
                    );
                }
                fs::remove_file(lock_path).map_err(TractoError::from)?;
            }
            Err(err) => return Err(TractoError::from(err)),
        }
    }
    Err(TractoError::config(
        "could not acquire journal lock (raced another starting server)",
    ))
}

/// One job's replayed state while scanning the journal.
struct ReplayedJob {
    spec: tracto_proto::JobSpec,
    checkpoint: Option<String>,
    terminal: bool,
}

/// Scan the journal and reconstruct per-job state. Unparsable lines are
/// skipped with a `journal.bad_record` event — a crash mid-append leaves a
/// truncated final line, which must not poison the rest of the journal.
fn replay(path: &Path, tracer: &Tracer) -> TractoResult<Recovery> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) if err.kind() == IoErrorKind::NotFound => String::new(),
        Err(err) => return Err(TractoError::from(err)),
    };
    Ok(replay_text(&text, tracer))
}

/// Replay journal records from raw JSONL text: the pending-job set and the
/// highest id seen. This is the same scan [`JobJournal::open`] runs on the
/// local journal; fleet takeover runs it over a *replicated* journal, so
/// the standby recovers exactly what the dead host's own restart would
/// have. Torn or malformed lines are skipped, never fatal.
pub fn replay_text(text: &str, tracer: &Tracer) -> Recovery {
    let mut jobs: HashMap<u64, ReplayedJob> = HashMap::new();
    let mut max_seen_id = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Some((rec, id, doc)) = decode_record(line) else {
            if tracer.enabled() {
                tracer.emit(
                    "journal.bad_record",
                    &[("line", (lineno as u64 + 1).into())],
                );
            }
            continue;
        };
        max_seen_id = max_seen_id.max(id);
        match rec.as_str() {
            "submitted" => {
                let spec = doc
                    .get("spec")
                    .and_then(|v| tracto_proto::JobSpec::from_json_value(v).ok());
                match spec {
                    Some(spec) => {
                        jobs.entry(id).or_insert(ReplayedJob {
                            spec,
                            checkpoint: None,
                            terminal: false,
                        });
                    }
                    None => {
                        if tracer.enabled() {
                            tracer.emit(
                                "journal.bad_record",
                                &[("line", (lineno as u64 + 1).into())],
                            );
                        }
                    }
                }
            }
            "admitted" => {}
            "checkpointed" => {
                let key = doc.get("key").and_then(Json::as_str).map(|s| s.to_string());
                if let (Some(job), Some(key)) = (jobs.get_mut(&id), key) {
                    job.checkpoint = Some(key);
                }
            }
            "completed" | "cancelled" | "failed" => {
                if let Some(job) = jobs.get_mut(&id) {
                    job.terminal = true;
                }
            }
            _ => {
                if tracer.enabled() {
                    tracer.emit(
                        "journal.bad_record",
                        &[("line", (lineno as u64 + 1).into())],
                    );
                }
            }
        }
    }
    let mut unfinished: Vec<RecoveredJob> = jobs
        .into_iter()
        .filter(|(_, j)| !j.terminal)
        .map(|(id, j)| RecoveredJob {
            id,
            spec: j.spec,
            checkpoint: j.checkpoint,
        })
        .collect();
    unfinished.sort_by_key(|j| j.id);
    Recovery {
        jobs: unfinished,
        max_seen_id,
    }
}

fn decode_record(line: &str) -> Option<(String, u64, Json)> {
    let doc = parse(line).ok()?;
    let rec = doc.get("rec")?.as_str()?.to_string();
    let id = doc.get("job")?.as_f64()?;
    if id < 0.0 || id.fract() != 0.0 {
        return None;
    }
    Some((rec, id as u64, doc))
}

/// Rewrite the journal to contain exactly the unfinished jobs' records
/// (atomic write-then-rename, both fsync'd), discarding completed history.
fn compact(dir: &Path, path: &Path, recovery: &Recovery) -> TractoResult<()> {
    let tmp = dir.join(format!("{JOURNAL_FILE}.tmp"));
    {
        let mut f = File::create(&tmp).map_err(TractoError::from)?;
        for job in &recovery.jobs {
            writeln!(
                f,
                "{{\"rec\":\"submitted\",\"job\":{},\"spec\":{}}}",
                job.id,
                job.spec.to_json_string()
            )
            .map_err(TractoError::from)?;
            if let Some(key) = &job.checkpoint {
                writeln!(
                    f,
                    "{{\"rec\":\"checkpointed\",\"job\":{},\"key\":\"{key}\"}}",
                    job.id
                )
                .map_err(TractoError::from)?;
            }
        }
        f.sync_all().map_err(TractoError::from)?;
    }
    fs::rename(&tmp, path).map_err(TractoError::from)?;
    // Make the rename itself durable; best-effort on filesystems that
    // refuse directory fsync.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tracto_proto::{DatasetSpec, JobSpec};
    use tracto_trace::{ErrorKind, RingSink};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tracto-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> JobSpec {
        let mut s = JobSpec::track(DatasetSpec::new("single"));
        s.seed = seed;
        s
    }

    #[test]
    fn unfinished_jobs_survive_reopen_and_finished_ones_do_not() {
        let dir = tmp_dir("reopen");
        {
            let (j, rec) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            assert!(rec.jobs.is_empty());
            assert_eq!(rec.max_seen_id, 0);
            j.submitted(1, &spec(1));
            j.admitted(1);
            j.submitted(2, &spec(2));
            j.checkpointed(2, "deadbeef01020304");
            j.submitted(3, &spec(3));
            j.completed(1);
            j.cancelled(3);
            // Simulate a crash: drop without terminal records for job 2.
        }
        let (_j, rec) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        assert_eq!(rec.max_seen_id, 3);
        assert_eq!(rec.jobs.len(), 1, "only the unfinished job comes back");
        assert_eq!(rec.jobs[0].id, 2);
        assert_eq!(rec.jobs[0].spec, spec(2));
        assert_eq!(rec.jobs[0].checkpoint.as_deref(), Some("deadbeef01020304"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_discards_finished_history() {
        let dir = tmp_dir("compact");
        {
            let (j, _) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            for id in 1..=20 {
                j.submitted(id, &spec(id));
                if id % 2 == 0 {
                    j.completed(id);
                } else {
                    j.failed(id, 1);
                }
            }
        }
        {
            let (_j, rec) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            assert!(rec.jobs.is_empty());
            assert_eq!(rec.max_seen_id, 20, "ids stay reserved after compaction");
        }
        // After compaction of an all-terminal journal the file is empty.
        let text = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(
            text.is_empty(),
            "compacted journal should be empty: {text:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_record_is_skipped_not_fatal() {
        let dir = tmp_dir("truncated");
        {
            let (j, _) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            j.submitted(7, &spec(7));
        }
        // Simulate a crash mid-append: a torn, half-written record.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(JOURNAL_FILE))
                .unwrap();
            write!(f, "{{\"rec\":\"comple").unwrap();
        }
        let ring = Arc::new(RingSink::new(16));
        let (_j, rec) = JobJournal::open(&dir, Tracer::shared(Arc::clone(&ring) as _)).unwrap();
        assert_eq!(rec.jobs.len(), 1, "torn record ignored, job recovered");
        assert_eq!(rec.jobs[0].id, 7);
        assert_eq!(ring.count("journal.bad_record"), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_lock_is_a_config_error_and_dead_lock_is_stolen() {
        let dir = tmp_dir("lock");
        fs::create_dir_all(&dir).unwrap();
        // A lock held by this (live) process wedges a second open.
        fs::write(dir.join(LOCK_FILE), format!("{}\n", std::process::id())).unwrap();
        // pid_alive special-cases our own pid, so fake a second live owner
        // via pid 1 (init, always alive under procfs).
        if Path::new("/proc/1").exists() {
            fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
            let err = match JobJournal::open(&dir, Tracer::disabled()) {
                Err(e) => e,
                Ok(_) => panic!("a live lock owner must be rejected"),
            };
            assert_eq!(err.kind(), ErrorKind::Config);
        }
        // A dead owner's lock is stolen.
        fs::write(dir.join(LOCK_FILE), "999999999\n").unwrap();
        let ring = Arc::new(RingSink::new(16));
        let (j, _) = JobJournal::open(&dir, Tracer::shared(Arc::clone(&ring) as _)).unwrap();
        assert_eq!(ring.count("journal.lock_stolen"), 1);
        drop(j);
        assert!(
            !dir.join(LOCK_FILE).exists(),
            "clean drop releases the lock"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transitions_for_unjournaled_ids_are_ignored() {
        let dir = tmp_dir("unjournaled");
        {
            let (j, _) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            // No submitted record: these must not create phantom entries.
            j.admitted(40);
            j.checkpointed(40, "ab");
            j.completed(40);
            j.failed(41, 2);
        }
        let text = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(text.is_empty(), "nothing journaled: {text:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
