//! Job descriptions, results, and the completion tickets clients wait on.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto::diffusion::PriorConfig;
use tracto::mcmc::{ChainConfig, SampleVolumes};
use tracto::phantom::Dataset;
use tracto::pipeline::PipelineConfig;
use tracto::tracking::TrackingOutput;
use tracto_volume::Vec3;

/// Monotonic identifier the service assigns at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Run Step 1 (voxelwise MCMC) for a dataset and warm the sample cache.
#[derive(Clone)]
pub struct EstimateJob {
    /// The dataset to estimate (shared — many jobs can reference one).
    pub dataset: Arc<Dataset>,
    /// Posterior priors.
    pub prior: PriorConfig,
    /// Chain schedule.
    pub chain: ChainConfig,
    /// Master seed.
    pub seed: u64,
}

/// Run the full pipeline for a dataset: Step 1 via the sample cache, Step 2
/// batched with whatever other jobs are in flight.
#[derive(Clone)]
pub struct TrackJob {
    /// The dataset to track on.
    pub dataset: Arc<Dataset>,
    /// Full pipeline configuration (chain + prior + tracking + seed).
    pub config: PipelineConfig,
    /// Seed points; `None` seeds every fiber-bearing ground-truth voxel,
    /// exactly as [`tracto::Pipeline`] does.
    pub seeds: Option<Vec<Vec3>>,
    /// Give up if the job has not *started* tracking within this budget.
    pub deadline: Option<Duration>,
}

impl TrackJob {
    /// A job with default seeding and no deadline.
    pub fn new(dataset: Arc<Dataset>, config: PipelineConfig) -> Self {
        TrackJob {
            dataset,
            config,
            seeds: None,
            deadline: None,
        }
    }
}

/// Outcome of an [`EstimateJob`].
#[derive(Debug, Clone)]
pub struct EstimateResult {
    /// The posterior sample stack (shared with the cache).
    pub samples: Arc<SampleVolumes>,
    /// Whether the stack came from the cache rather than a fresh MCMC run.
    pub cache_hit: bool,
    /// Voxels estimated (0 on a cache hit).
    pub voxels: usize,
}

/// Outcome of a [`TrackJob`].
#[derive(Debug, Clone)]
pub struct TrackResult {
    /// Lengths, total steps, and optional connectivity — the same shape
    /// [`tracto::Pipeline`] returns.
    pub tracking: TrackingOutput,
    /// Whether Step 1 was skipped via the sample cache.
    pub cache_hit: bool,
    /// Number of jobs sharing the batch this job's lanes ran in.
    pub batch_jobs: usize,
    /// Total lanes in that batch (all jobs, all samples, all seeds).
    pub batch_lanes: usize,
}

/// Why a job did not complete.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The bounded submission queue was full (`try_submit` only).
    QueueFull,
    /// The client cancelled the ticket.
    Cancelled,
    /// The job's deadline passed before tracking started.
    DeadlineExceeded,
    /// The service is shutting down and no longer accepts or runs jobs.
    ShuttingDown,
    /// The job failed outright (e.g. device memory exhausted); the typed
    /// cause is shared so the ticket stays cheaply cloneable.
    Failed(Arc<tracto_trace::TractoError>),
}

impl JobError {
    /// Wrap a workspace error as a job failure.
    pub fn failed(err: tracto_trace::TractoError) -> Self {
        JobError::Failed(Arc::new(err))
    }

    /// Whether the batch worker may retry the job: only failures whose
    /// typed cause is a transient device fault qualify. Cancellations,
    /// deadlines, and exhausted capacity never retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::Failed(err) if err.is_retryable())
    }
}

impl PartialEq for JobError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JobError::QueueFull, JobError::QueueFull)
            | (JobError::Cancelled, JobError::Cancelled)
            | (JobError::DeadlineExceeded, JobError::DeadlineExceeded)
            | (JobError::ShuttingDown, JobError::ShuttingDown) => true,
            // Failures compare by error kind: callers match on what went
            // wrong, not the exact message.
            (JobError::Failed(a), JobError::Failed(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

impl Eq for JobError {}

impl From<tracto_trace::TractoError> for JobError {
    fn from(err: tracto_trace::TractoError) -> Self {
        match err {
            tracto_trace::TractoError::Cancelled => JobError::Cancelled,
            tracto_trace::TractoError::Deadline => JobError::DeadlineExceeded,
            other => JobError::Failed(Arc::new(other)),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::QueueFull => f.write_str("submission queue full"),
            JobError::Cancelled => f.write_str("cancelled by client"),
            JobError::DeadlineExceeded => f.write_str("deadline exceeded"),
            JobError::ShuttingDown => f.write_str("service shutting down"),
            JobError::Failed(err) => write!(f, "job failed: {err}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Failed(err) => Some(err.as_ref()),
            _ => None,
        }
    }
}

struct TicketState<T> {
    result: Mutex<Option<Result<T, JobError>>>,
    done: Condvar,
    cancelled: AtomicBool,
    attempts: AtomicU32,
}

/// A client's handle to a submitted job: blocks on the result, supports
/// cancellation. Cloneable so one waiter can hand the cancel side to
/// another thread.
pub struct Ticket<T> {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// When the job was accepted (deadlines are measured from here).
    pub accepted_at: Instant,
    state: Arc<TicketState<T>>,
}

impl<T> Clone for Ticket<T> {
    fn clone(&self) -> Self {
        Ticket {
            id: self.id,
            accepted_at: self.accepted_at,
            state: Arc::clone(&self.state),
        }
    }
}

impl<T: Clone> Ticket<T> {
    pub(crate) fn new(id: JobId) -> Self {
        Ticket {
            id,
            accepted_at: Instant::now(),
            state: Arc::new(TicketState {
                result: Mutex::new(None),
                done: Condvar::new(),
                cancelled: AtomicBool::new(false),
                attempts: AtomicU32::new(0),
            }),
        }
    }

    /// Deliver the result. The first fulfillment wins; later ones (e.g. a
    /// worker racing a cancellation) are dropped.
    pub(crate) fn fulfill(&self, result: Result<T, JobError>) {
        let mut slot = self.state.result.lock();
        if slot.is_none() {
            *slot = Some(result);
            self.state.done.notify_all();
        }
    }

    /// Request cancellation. Stages check this flag before doing work; a
    /// job already past the point of no return still completes normally.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether [`cancel`](Self::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Retries this job has consumed so far (0 until a device fault forces
    /// the first re-run).
    pub fn attempts(&self) -> u32 {
        self.state.attempts.load(Ordering::SeqCst)
    }

    /// Record one retry and return the new count (1 for the first retry).
    pub(crate) fn record_attempt(&self) -> u32 {
        self.state.attempts.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Non-blocking poll.
    pub fn try_result(&self) -> Option<Result<T, JobError>> {
        self.state.result.lock().clone()
    }

    /// Block until the job completes (or fails).
    pub fn wait(&self) -> Result<T, JobError> {
        let mut slot = self.state.result.lock();
        while slot.is_none() {
            self.state.done.wait(&mut slot);
        }
        slot.clone().expect("slot filled")
    }

    /// Block up to `timeout`; `None` when still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.result.lock();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state.done.wait_for(&mut slot, deadline - now);
        }
        slot.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_wait_sees_fulfillment() {
        let t: Ticket<u32> = Ticket::new(JobId(1));
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            t2.fulfill(Ok(7));
        });
        assert_eq!(t.wait(), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn first_fulfillment_wins() {
        let t: Ticket<u32> = Ticket::new(JobId(2));
        t.fulfill(Err(JobError::Cancelled));
        t.fulfill(Ok(9));
        assert_eq!(t.wait(), Err(JobError::Cancelled));
    }

    #[test]
    fn wait_timeout_on_pending() {
        let t: Ticket<u32> = Ticket::new(JobId(3));
        assert!(t.wait_timeout(Duration::from_millis(5)).is_none());
        assert!(t.try_result().is_none());
        t.fulfill(Ok(1));
        assert_eq!(t.wait_timeout(Duration::from_millis(5)), Some(Ok(1)));
    }

    #[test]
    fn cancel_sets_flag_only() {
        let t: Ticket<u32> = Ticket::new(JobId(4));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        // Cancellation is advisory: the result slot is untouched.
        assert!(t.try_result().is_none());
    }
}
