//! Job descriptions, results, and the completion tickets clients wait on.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto::diffusion::PriorConfig;
use tracto::mcmc::{ChainConfig, SampleVolumes};
use tracto::phantom::Dataset;
use tracto::pipeline::PipelineConfig;
use tracto::tracking::TrackingOutput;
use tracto_volume::Vec3;

/// Monotonic identifier the service assigns at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Run Step 1 (voxelwise MCMC) for a dataset and warm the sample cache.
#[derive(Clone)]
pub struct EstimateJob {
    /// The dataset to estimate (shared — many jobs can reference one).
    pub dataset: Arc<Dataset>,
    /// Posterior priors.
    pub prior: PriorConfig,
    /// Chain schedule.
    pub chain: ChainConfig,
    /// Master seed.
    pub seed: u64,
}

/// Run the full pipeline for a dataset: Step 1 via the sample cache, Step 2
/// batched with whatever other jobs are in flight.
#[derive(Clone)]
pub struct TrackJob {
    /// The dataset to track on.
    pub dataset: Arc<Dataset>,
    /// Full pipeline configuration (chain + prior + tracking + seed).
    pub config: PipelineConfig,
    /// Seed points; `None` seeds every fiber-bearing ground-truth voxel,
    /// exactly as [`tracto::Pipeline`] does.
    pub seeds: Option<Vec<Vec3>>,
    /// Give up if the job has not *started* tracking within this budget.
    pub deadline: Option<Duration>,
}

impl TrackJob {
    /// A job with default seeding and no deadline.
    pub fn new(dataset: Arc<Dataset>, config: PipelineConfig) -> Self {
        TrackJob {
            dataset,
            config,
            seeds: None,
            deadline: None,
        }
    }
}

/// Outcome of an [`EstimateJob`].
#[derive(Debug, Clone)]
pub struct EstimateResult {
    /// The posterior sample stack (shared with the cache).
    pub samples: Arc<SampleVolumes>,
    /// Whether the stack came from the cache rather than a fresh MCMC run.
    pub cache_hit: bool,
    /// Voxels estimated (0 on a cache hit).
    pub voxels: usize,
}

/// Outcome of a [`TrackJob`].
#[derive(Debug, Clone)]
pub struct TrackResult {
    /// Lengths, total steps, and optional connectivity — the same shape
    /// [`tracto::Pipeline`] returns.
    pub tracking: TrackingOutput,
    /// Whether Step 1 was skipped via the sample cache.
    pub cache_hit: bool,
    /// Number of jobs sharing the batch this job's lanes ran in.
    pub batch_jobs: usize,
    /// Total lanes in that batch (all jobs, all samples, all seeds).
    pub batch_lanes: usize,
}

/// What a completed job produced — the single result type behind
/// [`TractoService::submit`](crate::TractoService::submit). Estimation
/// jobs yield [`JobOutput::Estimate`], tracking jobs [`JobOutput::Track`];
/// the [`Ticket::wait_estimate`]/[`Ticket::wait_track`] helpers unwrap the
/// expected variant.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Result of an estimation job.
    Estimate(EstimateResult),
    /// Result of a tracking job.
    Track(TrackResult),
}

impl JobOutput {
    /// The tracking result, if this job tracked.
    pub fn into_track(self) -> Option<TrackResult> {
        match self {
            JobOutput::Track(r) => Some(r),
            JobOutput::Estimate(_) => None,
        }
    }

    /// The estimation result, if this job estimated.
    pub fn into_estimate(self) -> Option<EstimateResult> {
        match self {
            JobOutput::Estimate(r) => Some(r),
            JobOutput::Track(_) => None,
        }
    }
}

/// Why a job did not complete.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The bounded submission queue was full (`try_submit` only).
    QueueFull,
    /// The client cancelled the ticket.
    Cancelled,
    /// The job's deadline passed before tracking started.
    DeadlineExceeded,
    /// The service is shutting down and no longer accepts or runs jobs.
    ShuttingDown,
    /// The job failed outright (e.g. device memory exhausted); the typed
    /// cause is shared so the ticket stays cheaply cloneable.
    Failed(Arc<tracto_trace::TractoError>),
}

impl JobError {
    /// Wrap a workspace error as a job failure.
    pub fn failed(err: tracto_trace::TractoError) -> Self {
        JobError::Failed(Arc::new(err))
    }

    /// Whether the batch worker may retry the job: only failures whose
    /// typed cause is a transient device fault qualify. Cancellations,
    /// deadlines, and exhausted capacity never retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, JobError::Failed(err) if err.is_retryable())
    }
}

impl PartialEq for JobError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JobError::QueueFull, JobError::QueueFull)
            | (JobError::Cancelled, JobError::Cancelled)
            | (JobError::DeadlineExceeded, JobError::DeadlineExceeded)
            | (JobError::ShuttingDown, JobError::ShuttingDown) => true,
            // Failures compare by error kind: callers match on what went
            // wrong, not the exact message.
            (JobError::Failed(a), JobError::Failed(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

impl Eq for JobError {}

impl From<tracto_trace::TractoError> for JobError {
    fn from(err: tracto_trace::TractoError) -> Self {
        match err {
            tracto_trace::TractoError::Cancelled => JobError::Cancelled,
            tracto_trace::TractoError::Deadline => JobError::DeadlineExceeded,
            other => JobError::Failed(Arc::new(other)),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::QueueFull => f.write_str("submission queue full"),
            JobError::Cancelled => f.write_str("cancelled by client"),
            JobError::DeadlineExceeded => f.write_str("deadline exceeded"),
            JobError::ShuttingDown => f.write_str("service shutting down"),
            JobError::Failed(err) => write!(f, "job failed: {err}"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Failed(err) => Some(err.as_ref()),
            _ => None,
        }
    }
}

struct TicketState<T> {
    result: Mutex<Option<Result<T, JobError>>>,
    done: Condvar,
    cancelled: AtomicBool,
    attempts: AtomicU32,
}

/// A client's handle to a submitted job: blocks on the result, supports
/// cancellation. Cloneable so one waiter can hand the cancel side to
/// another thread.
pub struct Ticket<T> {
    /// Identifier assigned at submission.
    pub id: JobId,
    /// When the job was accepted (deadlines are measured from here).
    pub accepted_at: Instant,
    state: Arc<TicketState<T>>,
}

impl<T> Clone for Ticket<T> {
    fn clone(&self) -> Self {
        Ticket {
            id: self.id,
            accepted_at: self.accepted_at,
            state: Arc::clone(&self.state),
        }
    }
}

impl<T: Clone> Ticket<T> {
    pub(crate) fn new(id: JobId) -> Self {
        Ticket {
            id,
            accepted_at: Instant::now(),
            state: Arc::new(TicketState {
                result: Mutex::new(None),
                done: Condvar::new(),
                cancelled: AtomicBool::new(false),
                attempts: AtomicU32::new(0),
            }),
        }
    }

    /// Deliver the result. The first fulfillment wins; later ones (e.g. a
    /// worker racing a cancellation) are dropped. A successful result for
    /// a ticket whose [`cancel`](Self::cancel) won the race is converted to
    /// [`JobError::Cancelled`] *under the same lock* — the client that was
    /// told "cancelled" never observes a completed job. Returns what was
    /// actually stored, or `None` if the ticket was already fulfilled.
    pub(crate) fn fulfill(&self, result: Result<T, JobError>) -> Option<Result<T, JobError>> {
        let mut slot = self.state.result.lock();
        if slot.is_some() {
            return None;
        }
        let stored = if self.state.cancelled.load(Ordering::SeqCst) && result.is_ok() {
            Err(JobError::Cancelled)
        } else {
            result
        };
        *slot = Some(stored.clone());
        self.state.done.notify_all();
        Some(stored)
    }

    /// Request cancellation. Returns `true` if the cancel arrived before a
    /// result was stored — the job is then guaranteed to resolve to
    /// [`JobError::Cancelled`], even if a worker was mid-fulfilment
    /// (the cancelled flag and the result slot are settled under one lock,
    /// so there is no window where both "cancelled" and a completed result
    /// are observable). Returns `false` if the job had already finished.
    pub fn cancel(&self) -> bool {
        let slot = self.state.result.lock();
        self.state.cancelled.store(true, Ordering::SeqCst);
        slot.is_none()
    }

    /// Whether [`cancel`](Self::cancel) was called.
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// Retries this job has consumed so far (0 until a device fault forces
    /// the first re-run).
    pub fn attempts(&self) -> u32 {
        self.state.attempts.load(Ordering::SeqCst)
    }

    /// Record one retry and return the new count (1 for the first retry).
    pub(crate) fn record_attempt(&self) -> u32 {
        self.state.attempts.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Non-blocking poll.
    pub fn try_result(&self) -> Option<Result<T, JobError>> {
        self.state.result.lock().clone()
    }

    /// Block until the job completes (or fails).
    pub fn wait(&self) -> Result<T, JobError> {
        let mut slot = self.state.result.lock();
        while slot.is_none() {
            self.state.done.wait(&mut slot);
        }
        slot.clone().expect("slot filled")
    }

    /// Block up to `timeout`; `None` when still pending.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, JobError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.result.lock();
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state.done.wait_for(&mut slot, deadline - now);
        }
        slot.clone()
    }
}

impl Ticket<JobOutput> {
    /// [`wait`](Self::wait) and unwrap the tracking result.
    ///
    /// # Panics
    /// If the ticket belongs to an estimation job — waiting for the wrong
    /// kind is a caller bug, not a runtime condition.
    pub fn wait_track(&self) -> Result<TrackResult, JobError> {
        self.wait()
            .map(|o| o.into_track().expect("ticket is for an estimation job"))
    }

    /// [`wait`](Self::wait) and unwrap the estimation result.
    ///
    /// # Panics
    /// If the ticket belongs to a tracking job.
    pub fn wait_estimate(&self) -> Result<EstimateResult, JobError> {
        self.wait()
            .map(|o| o.into_estimate().expect("ticket is for a tracking job"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_wait_sees_fulfillment() {
        let t: Ticket<u32> = Ticket::new(JobId(1));
        let t2 = t.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            t2.fulfill(Ok(7));
        });
        assert_eq!(t.wait(), Ok(7));
        h.join().unwrap();
    }

    #[test]
    fn first_fulfillment_wins() {
        let t: Ticket<u32> = Ticket::new(JobId(2));
        assert!(t.fulfill(Err(JobError::Cancelled)).is_some());
        assert!(t.fulfill(Ok(9)).is_none(), "second fulfilment is dropped");
        assert_eq!(t.wait(), Err(JobError::Cancelled));
    }

    #[test]
    fn wait_timeout_on_pending() {
        let t: Ticket<u32> = Ticket::new(JobId(3));
        assert!(t.wait_timeout(Duration::from_millis(5)).is_none());
        assert!(t.try_result().is_none());
        t.fulfill(Ok(1));
        assert_eq!(t.wait_timeout(Duration::from_millis(5)), Some(Ok(1)));
    }

    #[test]
    fn cancel_reports_whether_it_won() {
        let t: Ticket<u32> = Ticket::new(JobId(4));
        assert!(!t.is_cancelled());
        assert!(t.cancel(), "no result yet: cancel wins");
        assert!(t.is_cancelled());
        let late: Ticket<u32> = Ticket::new(JobId(5));
        late.fulfill(Ok(3));
        assert!(!late.cancel(), "result stored: cancel loses");
        assert_eq!(late.wait(), Ok(3), "a lost cancel leaves the result");
    }

    /// Regression for the cancel/fulfil race: a cancel that returned `true`
    /// must never be followed by an observable completed result, even when
    /// a worker fulfils `Ok` immediately afterwards (the batch-admission
    /// race). The conversion happens under the result lock, so there is no
    /// interleaving where both outcomes are visible.
    #[test]
    fn winning_cancel_converts_late_success() {
        let t: Ticket<u32> = Ticket::new(JobId(6));
        assert!(t.cancel());
        let stored = t.fulfill(Ok(7)).expect("first fulfilment stores");
        assert_eq!(stored, Err(JobError::Cancelled));
        assert_eq!(t.wait(), Err(JobError::Cancelled));
        // Errors pass through unconverted — a deadline miss stays a
        // deadline miss even on a cancelled ticket.
        let t2: Ticket<u32> = Ticket::new(JobId(7));
        assert!(t2.cancel());
        assert_eq!(
            t2.fulfill(Err(JobError::DeadlineExceeded)),
            Some(Err(JobError::DeadlineExceeded))
        );
    }

    #[test]
    fn hammered_cancel_never_observes_success() {
        for round in 0..200 {
            let t: Ticket<u32> = Ticket::new(JobId(round));
            let worker = t.clone();
            let h = std::thread::spawn(move || {
                worker.fulfill(Ok(1));
            });
            let won = t.cancel();
            h.join().unwrap();
            let result = t.wait();
            if won {
                assert_eq!(result, Err(JobError::Cancelled), "round {round}");
            } else {
                assert_eq!(result, Ok(1), "round {round}");
            }
        }
    }
}
