//! The job-event bus: how lifecycle transitions reach v2 subscribers.
//!
//! The service publishes an [`Event`] at each transition the journal
//! already records — `admitted`, `checkpointed`, and the terminal
//! `completed`/`cancelled`/`failed` — and the socket reactor drains the
//! bus and fans events out to subscribed connections. Publication is a
//! no-op until a front end [`attach`](EventBus::attach)es, so an
//! in-process-only service pays one atomic load per transition and the
//! queue cannot grow without a consumer.
//!
//! The queue is bounded: if the reactor stalls long enough for
//! [`BUS_CAP`] events to pile up, the oldest are dropped (counted in
//! [`dropped`](EventBus::dropped)) rather than growing without bound —
//! subscribers are a monitoring surface, not a durability surface; the
//! journal remains the record of truth.

use crate::job::{JobError, JobOutput};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use tracto_proto::{Event, JobState, Outcome};

/// Most events held while the reactor is between drains.
pub(crate) const BUS_CAP: usize = 65_536;

/// A bounded, attach-gated queue of job lifecycle events.
#[derive(Default)]
pub(crate) struct EventBus {
    attached: AtomicBool,
    seq: AtomicU64,
    dropped: AtomicU64,
    queue: Mutex<VecDeque<Event>>,
}

impl EventBus {
    pub(crate) fn new() -> Self {
        EventBus::default()
    }

    /// Start buffering published events (called by the socket front end).
    pub(crate) fn attach(&self) {
        self.attached.store(true, Ordering::SeqCst);
    }

    /// Stop buffering and discard anything queued.
    pub(crate) fn detach(&self) {
        self.attached.store(false, Ordering::SeqCst);
        self.queue.lock().clear();
    }

    /// Whether a front end is consuming events. Callers with a nontrivial
    /// payload to build (a full terminal [`JobState`]) should check this
    /// first; `publish` itself also gates.
    pub(crate) fn attached(&self) -> bool {
        self.attached.load(Ordering::SeqCst)
    }

    /// Allocate the next event sequence number. Also used for synthetic
    /// terminal events pushed at subscribe time, so every event a client
    /// sees carries a server-unique, monotonically increasing `seq`.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Publish one transition. No-op while detached.
    pub(crate) fn publish(&self, job: u64, kind: &str, state: JobState) {
        if !self.attached.load(Ordering::SeqCst) {
            return;
        }
        let ev = Event {
            seq: self.next_seq(),
            job,
            kind: kind.to_string(),
            state,
        };
        let mut q = self.queue.lock();
        if q.len() >= BUS_CAP {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Move every queued event into `into` (oldest first).
    pub(crate) fn drain(&self, into: &mut Vec<Event>) {
        let mut q = self.queue.lock();
        into.extend(q.drain(..));
    }

    /// Events discarded because the queue was full.
    #[allow(dead_code)]
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The event `kind` string for a settled job result.
pub(crate) fn terminal_kind(stored: &Result<JobOutput, JobError>) -> &'static str {
    match stored {
        Ok(_) => "completed",
        Err(JobError::Cancelled) => "cancelled",
        Err(_) => "failed",
    }
}

/// The wire `kind` string for a job failure. Typed causes use their
/// [`ErrorKind`](tracto_trace::ErrorKind) display name so the client can
/// re-type them.
pub(crate) fn error_kind(err: &JobError) -> String {
    match err {
        JobError::QueueFull => "capacity".into(),
        JobError::Cancelled => "cancelled".into(),
        JobError::DeadlineExceeded => "deadline".into(),
        JobError::ShuttingDown => "shutdown".into(),
        JobError::Failed(cause) => cause.kind().to_string(),
    }
}

/// Flatten a ticket result into its wire form — shared by the status
/// path and the event bus so a pushed terminal event carries exactly the
/// state a `status` poll would have returned.
pub(crate) fn job_state(result: Option<Result<JobOutput, JobError>>) -> JobState {
    match result {
        None => JobState::Pending,
        Some(Err(e)) => JobState::Failed {
            kind: error_kind(&e),
            message: e.to_string(),
        },
        Some(Ok(JobOutput::Estimate(est))) => JobState::Done(Outcome::Estimate {
            voxels: est.voxels as u64,
            cache_hit: est.cache_hit,
        }),
        Some(Ok(JobOutput::Track(track))) => {
            let streamlines = track
                .tracking
                .lengths_by_sample
                .iter()
                .map(|s| s.len() as u64)
                .sum();
            JobState::Done(Outcome::Track {
                total_steps: track.tracking.total_steps,
                streamlines,
                lengths_digest: tracto_proto::lengths_digest(&track.tracking.lengths_by_sample),
                cache_hit: track.cache_hit,
                batch_jobs: track.batch_jobs as u64,
                batch_lanes: track.batch_lanes as u64,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_bus_buffers_nothing() {
        let bus = EventBus::new();
        bus.publish(1, "admitted", JobState::Pending);
        let mut out = Vec::new();
        bus.drain(&mut out);
        assert!(out.is_empty(), "publish before attach is a no-op");
    }

    #[test]
    fn attached_bus_orders_and_numbers_events() {
        let bus = EventBus::new();
        bus.attach();
        bus.publish(1, "admitted", JobState::Pending);
        bus.publish(1, "completed", JobState::Pending);
        bus.publish(2, "admitted", JobState::Pending);
        let mut out = Vec::new();
        bus.drain(&mut out);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(out[0].kind, "admitted");
        assert_eq!(out[1].job, 1);
        bus.detach();
        bus.publish(3, "admitted", JobState::Pending);
        out.clear();
        bus.drain(&mut out);
        assert!(out.is_empty(), "detach discards and gates");
    }

    #[test]
    fn full_bus_drops_oldest_and_counts() {
        let bus = EventBus::new();
        bus.attach();
        for i in 0..(BUS_CAP + 3) as u64 {
            bus.publish(i, "admitted", JobState::Pending);
        }
        let mut out = Vec::new();
        bus.drain(&mut out);
        assert_eq!(out.len(), BUS_CAP);
        assert_eq!(bus.dropped(), 3);
        assert_eq!(out[0].job, 3, "oldest three were dropped");
    }

    #[test]
    fn terminal_kinds_match_job_errors() {
        assert_eq!(terminal_kind(&Err(JobError::Cancelled)), "cancelled");
        assert_eq!(terminal_kind(&Err(JobError::DeadlineExceeded)), "failed");
        assert_eq!(error_kind(&JobError::DeadlineExceeded), "deadline");
    }
}
