//! Continuous batching of tracking work from many jobs into shared
//! GPU launches.
//!
//! The paper's segmentation keeps wavefronts full *within* one tracking
//! run by compacting lanes between launches. A job service can go one step
//! further: because every lane is independent (one walker, one sample
//! volume view), lanes from *different jobs* can share the same launch.
//! Merging the queue's pending jobs into one lane population keeps the
//! device saturated even when each individual job is too small to fill it,
//! and the compaction boundaries the paper already requires are exactly
//! where finished jobs' results are demultiplexed back out.
//!
//! Results are bit-identical to running each job alone through
//! [`tracto::tracking2::GpuTracker`]: lane initialization reproduces its
//! recipe exactly (jittered seed → initial direction → walker), stepping is
//! deterministic, and the per-job accumulators are order-independent sums.

use std::sync::Arc;
use tracto::tracking::connectivity::ConnectivityAccumulator;
use tracto::tracking::field::SampleFieldView;
use tracto::tracking::gpu::LANE_BYTES;
use tracto::tracking::probabilistic::{initial_direction, jittered_seed};
use tracto::tracking::walker::{StopReason, TrackingParams, Walker};
use tracto::tracking::{SegmentationStrategy, TrackingOutput};
use tracto_gpu_sim::{LaneStatus, MultiGpu, SimKernel, TimingLedger};
use tracto_mcmc::SampleVolumes;
use tracto_volume::{Mask, Vec3};

/// One job's contribution to a batch.
#[derive(Clone)]
pub struct BatchJob {
    /// Posterior sample stack (usually shared with the cache).
    pub samples: Arc<SampleVolumes>,
    /// Tracking parameters — may differ per job; each walker enforces its
    /// own `max_steps`, so a shared launch budget cannot overrun a job.
    pub params: TrackingParams,
    /// Seed positions.
    pub seeds: Vec<Vec3>,
    /// Optional tracking mask.
    pub mask: Option<Mask>,
    /// Sub-voxel jitter amplitude.
    pub jitter: f64,
    /// Run seed.
    pub run_seed: u64,
    /// Record per-voxel visits.
    pub record_visits: bool,
}

/// One lane of the merged population: a walker plus routing identity.
#[derive(Clone)]
pub struct BatchLane {
    walker: Walker,
    job: u32,
    sample: u32,
}

/// The batched tracking kernel: routes each lane's step through its own
/// job's sample volume, parameters, and mask.
struct BatchKernel<'a> {
    jobs: &'a [BatchJob],
}

impl SimKernel for BatchKernel<'_> {
    type Lane = BatchLane;

    #[inline]
    fn step(&self, lane: &mut BatchLane) -> LaneStatus {
        let job = &self.jobs[lane.job as usize];
        let field = SampleFieldView::new(&job.samples, lane.sample as usize);
        match lane.walker.step(&field, &job.params, job.mask.as_ref()) {
            StopReason::Running => LaneStatus::Continue,
            _ => LaneStatus::Finished,
        }
    }
}

/// One batched run's outcome.
pub struct BatchReport {
    /// Per-job results, in submission order, shaped exactly like the
    /// single-job pipeline output.
    pub per_job: Vec<TrackingOutput>,
    /// Aggregate device ledger for the batch (device-seconds).
    pub ledger: TimingLedger,
    /// Simulated wall-clock of the batch (kernels overlap across devices).
    pub wall_s: f64,
    /// What the same charges would have cost on the serialized host loop.
    pub serial_s: f64,
    /// Simulated wall time hidden by multi-stream overlap (`serial_s −
    /// wall_s` over this batch, ≥ 0; exactly 0 on the serialized path).
    pub overlap_saved_s: f64,
    /// Stream lanes the batch ran with (1 = serialized legacy path).
    pub streams: usize,
    /// Total lanes in the merged population.
    pub lanes: usize,
    /// Launches issued.
    pub launches: u64,
    /// Mean wavefront (SIMD) utilization across the batch's launches.
    pub utilization: f64,
}

/// Build the merged lane population for `job_indices` (in that order),
/// reproducing the solo tracker's lane recipe exactly — per-job results are
/// therefore independent of how jobs are grouped into batches or streams.
fn build_lanes(jobs: &[BatchJob], job_indices: impl Iterator<Item = usize>) -> Vec<BatchLane> {
    let mut lanes: Vec<BatchLane> = Vec::new();
    for job_idx in job_indices {
        let job = &jobs[job_idx];
        let num_samples = job.samples.num_samples();
        for sample in 0..num_samples {
            let field = SampleFieldView::new(&job.samples, sample);
            for (seed_idx, &seed) in job.seeds.iter().enumerate() {
                let pos = jittered_seed(seed, job.run_seed, sample, seed_idx, job.jitter);
                let dir =
                    initial_direction(&field, pos, job.params.min_fraction).unwrap_or(Vec3::ZERO);
                let mut walker = if job.record_visits {
                    Walker::new_recording(seed_idx as u32, pos, dir)
                } else {
                    Walker::new(seed_idx as u32, pos, dir)
                };
                if dir == Vec3::ZERO {
                    walker.stop = StopReason::NoDirection;
                }
                lanes.push(BatchLane {
                    walker,
                    job: job_idx as u32,
                    sample: sample as u32,
                });
            }
        }
    }
    lanes
}

fn fresh_accumulators(jobs: &[BatchJob]) -> Vec<JobAccum> {
    jobs.iter()
        .map(|j| {
            (
                vec![vec![0u32; j.seeds.len()]; j.samples.num_samples()],
                0u64,
                j.record_visits
                    .then(|| ConnectivityAccumulator::new(j.samples.dims())),
            )
        })
        .collect()
}

fn finish_accumulators(per_job: Vec<JobAccum>) -> Vec<TrackingOutput> {
    per_job
        .into_iter()
        .map(
            |(lengths_by_sample, total_steps, connectivity)| TrackingOutput {
                lengths_by_sample,
                total_steps,
                connectivity,
                streamlines: Vec::new(),
            },
        )
        .collect()
}

fn ledger_delta(before: &TimingLedger, after: &TimingLedger) -> TimingLedger {
    TimingLedger {
        kernel_s: after.kernel_s - before.kernel_s,
        reduction_s: after.reduction_s - before.reduction_s,
        transfer_s: after.transfer_s - before.transfer_s,
        launches: after.launches - before.launches,
        bytes_h2d: after.bytes_h2d - before.bytes_h2d,
        bytes_d2h: after.bytes_d2h - before.bytes_d2h,
        useful_iterations: after.useful_iterations - before.useful_iterations,
        charged_iterations: after.charged_iterations - before.charged_iterations,
        wall_kernel_s: after.wall_kernel_s - before.wall_kernel_s,
    }
}

/// [`run_batch`] driven through the stream-aware launch path: jobs are
/// round-robined onto `streams` stream lanes, each pinned to device
/// `stream % devices`, and every upload / kernel / readback / reduction is
/// charged to its stream — so one stream's host-side work hides behind
/// another stream's kernels on the simulated clock. Per-job results are
/// **bit-identical** to the serialized path for any stream count: lane
/// construction and stepping are per-job deterministic, and the per-job
/// accumulators are order-independent sums.
///
/// A device lost mid-stream fails over to the next alive device: residency
/// is re-uploaded and the failed launch replayed (a failed launch never
/// advances a lane), composing with [`FaultPlan`](tracto_gpu_sim::FaultPlan)
/// exactly as the serialized path does. Errors with a capacity error only
/// when every device is lost.
///
/// `streams <= 1` delegates to [`run_batch`] exactly.
pub fn run_batch_streamed(
    multi: &mut MultiGpu,
    jobs: &[BatchJob],
    strategy: &SegmentationStrategy,
    streams: usize,
) -> Result<BatchReport, tracto_trace::TractoError> {
    if streams <= 1 {
        return run_batch(multi, jobs, strategy);
    }
    assert!(!jobs.is_empty(), "empty batch");
    let ledger_before = multi.aggregate_ledger();
    let wall_before = multi.wall_s();
    let serial_before = multi.serial_s();

    struct StreamState {
        stream: usize,
        device: usize,
        /// Resident job volumes on the stream's device.
        volume_bytes: u64,
        /// Total reservation currently held on `device`.
        alloc_bytes: u64,
        lanes: Vec<BatchLane>,
    }

    let n_dev = multi.num_devices();
    let k = streams.min(jobs.len());
    let mut states: Vec<StreamState> = Vec::with_capacity(k);
    let mut total_lanes = 0usize;
    for s in 0..k {
        let lanes = build_lanes(jobs, (s..jobs.len()).step_by(k));
        let volume_bytes: u64 = (s..jobs.len())
            .step_by(k)
            .map(|i| {
                6 * jobs[i].samples.dims().len() as u64 * jobs[i].samples.num_samples() as u64 * 4
            })
            .sum();
        let device = multi
            .next_alive_device(s % n_dev)
            .ok_or_else(|| tracto_trace::TractoError::capacity("gpu devices", 1, 0))?;
        total_lanes += lanes.len();
        states.push(StreamState {
            stream: s,
            device,
            volume_bytes,
            alloc_bytes: 0,
            lanes,
        });
    }

    // Residency per stream on its pinned device: its jobs' sample stacks
    // plus its share of the merged lane buffers.
    for st in states.iter_mut() {
        let bytes = st.volume_bytes + st.lanes.len() as u64 * LANE_BYTES;
        multi.stream_alloc(st.device, bytes)?;
        st.alloc_bytes = bytes;
    }

    /// Re-home a stream after a device loss: claim the next alive device,
    /// reserve memory there, and re-upload the stream's full residency.
    /// Loops because the replacement can itself be scheduled to fail.
    fn fail_over(
        multi: &mut MultiGpu,
        st: &mut StreamState,
    ) -> Result<(), tracto_trace::TractoError> {
        loop {
            let next = multi.stream_failover(st.device, st.lanes.len())?;
            st.device = next;
            multi.stream_alloc(next, st.alloc_bytes)?;
            let residency = st.volume_bytes + st.lanes.len() as u64 * LANE_BYTES;
            match multi.stream_upload(st.stream, next, residency) {
                Ok(_) => return Ok(()),
                Err(_) => continue,
            }
        }
    }

    let max_steps = jobs
        .iter()
        .map(|j| j.params.max_steps)
        .max()
        .expect("non-empty");
    let budgets = strategy.budgets(max_steps);

    let mut per_job = fresh_accumulators(jobs);
    let kernel = BatchKernel { jobs };
    let mut launches = 0u64;
    let mut charged = 0u64;
    let mut useful = 0u64;

    // Initial residency uploads, one per stream, issued round-robin so the
    // clock can pipeline them against each other's devices.
    for st in states.iter_mut() {
        let residency = st.volume_bytes + st.lanes.len() as u64 * LANE_BYTES;
        if multi
            .stream_upload(st.stream, st.device, residency)
            .is_err()
        {
            fail_over(multi, st)?;
        }
    }

    // Shared segmentation schedule, interleaved across streams per segment:
    // submission order is issue order on the simulated clock, so the
    // round-robin is what lets stream s+1's upload hide behind stream s's
    // kernel (and readbacks hide behind the next stream's kernels).
    for (seg_idx, &budget) in budgets.iter().enumerate() {
        let mut any = false;
        for st in states.iter_mut() {
            if st.lanes.is_empty() {
                continue;
            }
            any = true;
            if seg_idx > 0 {
                // Re-upload the compacted population.
                if multi
                    .stream_upload(st.stream, st.device, st.lanes.len() as u64 * LANE_BYTES)
                    .is_err()
                {
                    fail_over(multi, st)?;
                }
            }
            // A failed launch never advances a lane, so replaying it on the
            // failover device is bit-identical to a fault-free run.
            let stats = loop {
                match multi.stream_launch(st.stream, st.device, &kernel, &mut st.lanes, budget) {
                    Ok(stats) => break stats,
                    Err(_) => fail_over(multi, st)?,
                }
            };
            launches += 1;
            charged += stats.charged_iterations;
            useful += stats.useful_iterations;
            if multi
                .stream_readback(st.stream, st.device, st.lanes.len() as u64 * LANE_BYTES)
                .is_err()
            {
                fail_over(multi, st)?;
                multi.stream_readback(st.stream, st.device, st.lanes.len() as u64 * LANE_BYTES)?;
            }
            multi.stream_reduce(st.stream, st.device, st.lanes.len() as u64);

            // Compact: retire finished lanes into their job's accumulators.
            let mut still_running = Vec::with_capacity(st.lanes.len());
            for lane in st.lanes.drain(..) {
                if lane.walker.alive() {
                    still_running.push(lane);
                } else {
                    retire(&lane, &mut per_job);
                }
            }
            st.lanes = still_running;
        }
        if !any {
            break;
        }
    }
    for st in states.iter_mut() {
        debug_assert!(st.lanes.is_empty(), "lanes survived the full budget");
        for lane in st.lanes.drain(..) {
            retire(&lane, &mut per_job);
        }
        multi.stream_free(st.device, st.alloc_bytes);
    }

    let wall_s = multi.wall_s() - wall_before;
    let serial_s = multi.serial_s() - serial_before;
    Ok(BatchReport {
        per_job: finish_accumulators(per_job),
        ledger: ledger_delta(&ledger_before, &multi.aggregate_ledger()),
        wall_s,
        serial_s,
        overlap_saved_s: (serial_s - wall_s).max(0.0),
        streams: k,
        lanes: total_lanes,
        launches,
        utilization: if charged == 0 {
            1.0
        } else {
            useful as f64 / charged as f64
        },
    })
}

/// Run `jobs` as one merged lane population on `multi`, under one shared
/// segmentation schedule. The report's ledger and wall clock are deltas
/// over this call, so a long-lived device group yields per-batch numbers.
pub fn run_batch(
    multi: &mut MultiGpu,
    jobs: &[BatchJob],
    strategy: &SegmentationStrategy,
) -> Result<BatchReport, tracto_trace::TractoError> {
    assert!(!jobs.is_empty(), "empty batch");
    let ledger_before = multi.aggregate_ledger();
    let wall_before = multi.wall_s();
    let serial_before = multi.serial_s();

    // Residency: every job's full sample stack on every device (lanes from
    // all samples are in flight together), plus the merged lane buffers.
    let volume_bytes: u64 = jobs
        .iter()
        .map(|j| 6 * j.samples.dims().len() as u64 * j.samples.num_samples() as u64 * 4)
        .sum();

    let mut lanes = build_lanes(jobs, 0..jobs.len());
    let total_lanes = lanes.len();
    let lane_bytes = total_lanes as u64 * LANE_BYTES;

    multi.device_alloc_all(volume_bytes + lane_bytes)?;
    multi.broadcast_to_devices(volume_bytes);
    multi.scatter_to_devices(lane_bytes);

    // One shared schedule covers the longest job; shorter jobs' walkers
    // stop at their own max_steps and retire at the next compaction.
    let max_steps = jobs
        .iter()
        .map(|j| j.params.max_steps)
        .max()
        .expect("non-empty");
    let budgets = strategy.budgets(max_steps);

    let mut per_job = fresh_accumulators(jobs);

    let kernel = BatchKernel { jobs };
    let mut launches = 0u64;
    let mut charged = 0u64;
    let mut useful = 0u64;

    for (seg_idx, &budget) in budgets.iter().enumerate() {
        if lanes.is_empty() {
            break;
        }
        if seg_idx > 0 {
            // Re-upload the compacted population.
            multi.scatter_to_devices(lanes.len() as u64 * LANE_BYTES);
        }
        let stats = multi.launch_partitioned(&kernel, &mut lanes, budget)?;
        launches += stats.len() as u64;
        for s in &stats {
            charged += s.charged_iterations;
            useful += s.useful_iterations;
        }
        multi.gather_to_host(lanes.len() as u64 * LANE_BYTES);
        multi.host_reduction(lanes.len() as u64);

        // Compact: retire finished lanes into their job's accumulators.
        let mut still_running = Vec::with_capacity(lanes.len());
        for lane in lanes.drain(..) {
            if lane.walker.alive() {
                still_running.push(lane);
            } else {
                retire(&lane, &mut per_job);
            }
        }
        lanes = still_running;
    }
    debug_assert!(lanes.is_empty(), "lanes survived the full budget");
    for lane in lanes.drain(..) {
        retire(&lane, &mut per_job);
    }

    multi.device_free_all(volume_bytes + lane_bytes);

    let wall_s = multi.wall_s() - wall_before;
    let serial_s = multi.serial_s() - serial_before;
    Ok(BatchReport {
        per_job: finish_accumulators(per_job),
        ledger: ledger_delta(&ledger_before, &multi.aggregate_ledger()),
        wall_s,
        serial_s,
        overlap_saved_s: (serial_s - wall_s).max(0.0),
        streams: 1,
        lanes: total_lanes,
        launches,
        utilization: if charged == 0 {
            1.0
        } else {
            useful as f64 / charged as f64
        },
    })
}

/// Per-job accumulation during a batch: lengths by (sample, seed),
/// total steps, and the optional connectivity accumulator.
type JobAccum = (Vec<Vec<u32>>, u64, Option<ConnectivityAccumulator>);

fn retire(lane: &BatchLane, per_job: &mut [JobAccum]) {
    let (lengths, total_steps, connectivity) = &mut per_job[lane.job as usize];
    let seed = lane.walker.seed_id as usize;
    lengths[lane.sample as usize][seed] = lane.walker.steps;
    *total_steps += lane.walker.steps as u64;
    if let Some(acc) = connectivity.as_mut() {
        if lane.walker.path.is_empty() {
            acc.add_empty();
        } else {
            acc.add_path(&lane.walker.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto::tracking2::{GpuTracker, SeedOrdering};
    use tracto_gpu_sim::{DeviceConfig, Gpu};
    use tracto_volume::Dim3;

    fn x_samples(dims: Dim3, n: usize) -> Arc<SampleVolumes> {
        let mut sv = SampleVolumes::zeros(dims, n);
        for c in dims.iter() {
            for s in 0..n {
                sv.f1.set(c, s, 0.6);
                sv.th1.set(c, s, std::f64::consts::FRAC_PI_2 as f32);
                sv.ph1.set(c, s, 0.0);
            }
        }
        Arc::new(sv)
    }

    fn params(max_steps: u32) -> TrackingParams {
        TrackingParams {
            step_length: 0.5,
            angular_threshold: 0.8,
            max_steps,
            min_fraction: 0.05,
            interp: tracto::tracking::field::InterpMode::Nearest,
        }
    }

    fn device() -> DeviceConfig {
        DeviceConfig {
            wavefront_size: 4,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        }
    }

    fn line_seeds(dims: Dim3) -> Vec<Vec3> {
        (0..dims.nx)
            .map(|i| Vec3::new(i as f64, 2.0, 2.0))
            .collect()
    }

    fn batch_job(sv: &Arc<SampleVolumes>, seeds: Vec<Vec3>, run_seed: u64, max: u32) -> BatchJob {
        BatchJob {
            samples: Arc::clone(sv),
            params: params(max),
            seeds,
            mask: None,
            jitter: 0.4,
            run_seed,
            record_visits: false,
        }
    }

    fn solo_report(job: &BatchJob, strategy: &SegmentationStrategy) -> (Vec<Vec<u32>>, u64) {
        let tracker = GpuTracker {
            samples: &job.samples,
            params: job.params,
            seeds: job.seeds.clone(),
            mask: job.mask.as_ref(),
            strategy: strategy.clone(),
            ordering: SeedOrdering::Natural,
            jitter: job.jitter,
            run_seed: job.run_seed,
            record_visits: job.record_visits,
        };
        let r = tracker.run(&mut Gpu::new(device()));
        (r.lengths_by_sample, r.total_steps)
    }

    #[test]
    fn batched_results_match_solo_runs() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let strategy = SegmentationStrategy::paper_b();
        let jobs = vec![
            batch_job(&sv, line_seeds(dims), 5, 200),
            batch_job(&sv, line_seeds(dims), 77, 200),
            // A job with a smaller step cap under the shared schedule.
            batch_job(&sv, line_seeds(dims), 5, 9),
        ];
        let mut multi = MultiGpu::new(device(), 2);
        let report = run_batch(&mut multi, &jobs, &strategy).unwrap();
        assert_eq!(report.per_job.len(), 3);
        assert_eq!(report.lanes, 3 * 3 * 12);
        for (job, out) in jobs.iter().zip(&report.per_job) {
            let (lengths, total) = solo_report(job, &strategy);
            assert_eq!(
                out.lengths_by_sample, lengths,
                "batching must not change results"
            );
            assert_eq!(out.total_steps, total);
        }
    }

    #[test]
    fn batched_connectivity_matches_solo() {
        let dims = Dim3::new(10, 6, 6);
        let sv = x_samples(dims, 2);
        let strategy = SegmentationStrategy::paper_c();
        let mut job = batch_job(&sv, vec![Vec3::new(0.0, 2.0, 2.0)], 3, 200);
        job.record_visits = true;
        job.jitter = 0.0;
        let mut multi = MultiGpu::new(device(), 1);
        let report = run_batch(&mut multi, std::slice::from_ref(&job), &strategy).unwrap();
        let batched = report.per_job[0].connectivity.as_ref().unwrap();

        let tracker = GpuTracker {
            samples: &job.samples,
            params: job.params,
            seeds: job.seeds.clone(),
            mask: None,
            strategy: strategy.clone(),
            ordering: SeedOrdering::Natural,
            jitter: 0.0,
            run_seed: 3,
            record_visits: true,
        };
        let solo = tracker.run(&mut Gpu::new(device()));
        let solo_acc = solo.connectivity.unwrap();
        assert_eq!(batched.total_streamlines(), solo_acc.total_streamlines());
        assert_eq!(batched.probability_volume(), solo_acc.probability_volume());
    }

    #[test]
    fn results_invariant_to_batch_composition() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 2);
        let strategy = SegmentationStrategy::paper_b();
        let a = batch_job(&sv, line_seeds(dims), 11, 200);
        let b = batch_job(&sv, line_seeds(dims), 22, 150);
        let mut multi = MultiGpu::new(device(), 2);
        let together = run_batch(&mut multi, &[a.clone(), b.clone()], &strategy).unwrap();
        let mut m1 = MultiGpu::new(device(), 2);
        let alone_a = run_batch(&mut m1, std::slice::from_ref(&a), &strategy).unwrap();
        let mut m2 = MultiGpu::new(device(), 2);
        let alone_b = run_batch(&mut m2, std::slice::from_ref(&b), &strategy).unwrap();
        assert_eq!(
            together.per_job[0].lengths_by_sample,
            alone_a.per_job[0].lengths_by_sample
        );
        assert_eq!(
            together.per_job[1].lengths_by_sample,
            alone_b.per_job[0].lengths_by_sample
        );
    }

    #[test]
    fn merged_batch_fewer_launches_than_sequential() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 2);
        let strategy = SegmentationStrategy::paper_b();
        let jobs: Vec<BatchJob> = (0..4)
            .map(|i| batch_job(&sv, line_seeds(dims), i, 200))
            .collect();
        let mut merged = MultiGpu::new(device(), 1);
        let batch = run_batch(&mut merged, &jobs, &strategy).unwrap();
        let sequential: u64 = jobs
            .iter()
            .map(|j| {
                let mut m = MultiGpu::new(device(), 1);
                run_batch(&mut m, std::slice::from_ref(j), &strategy)
                    .unwrap()
                    .launches
            })
            .sum();
        assert!(
            batch.launches < sequential,
            "merged {} vs sequential {}",
            batch.launches,
            sequential
        );
        assert!(batch.utilization > 0.0 && batch.utilization <= 1.0);
    }

    fn assert_reports_identical(a: &BatchReport, b: &BatchReport) {
        assert_eq!(a.per_job.len(), b.per_job.len());
        for (x, y) in a.per_job.iter().zip(&b.per_job) {
            assert_eq!(x.lengths_by_sample, y.lengths_by_sample);
            assert_eq!(x.total_steps, y.total_steps);
            match (&x.connectivity, &y.connectivity) {
                (None, None) => {}
                (Some(ca), Some(cb)) => {
                    assert_eq!(ca.total_streamlines(), cb.total_streamlines());
                    assert_eq!(ca.probability_volume(), cb.probability_volume());
                }
                _ => panic!("connectivity presence differs"),
            }
        }
    }

    fn stream_jobs(sv: &Arc<SampleVolumes>, dims: Dim3) -> Vec<BatchJob> {
        let mut jobs: Vec<BatchJob> = (0..5u64)
            .map(|i| batch_job(sv, line_seeds(dims), 10 + i, 200))
            .collect();
        jobs[1].params.max_steps = 9;
        jobs[3].record_visits = true;
        jobs
    }

    #[test]
    fn streamed_batch_bit_identical_to_serialized() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let strategy = SegmentationStrategy::paper_b();
        let jobs = stream_jobs(&sv, dims);
        let mut base = MultiGpu::new(device(), 2);
        let serial = run_batch(&mut base, &jobs, &strategy).unwrap();
        assert_eq!(serial.streams, 1);
        assert_eq!(serial.overlap_saved_s, 0.0);
        for streams in [2usize, 3, 5, 9] {
            let mut multi = MultiGpu::new(device(), 2);
            let streamed = run_batch_streamed(&mut multi, &jobs, &strategy, streams).unwrap();
            assert_reports_identical(&serial, &streamed);
            assert_eq!(streamed.streams, streams.min(jobs.len()));
            assert_eq!(streamed.lanes, serial.lanes);
        }
    }

    #[test]
    fn streamed_batch_overlaps_host_work_behind_kernels() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let strategy = SegmentationStrategy::paper_b();
        let jobs = stream_jobs(&sv, dims);
        let mut multi = MultiGpu::new(device(), 2);
        let report = run_batch_streamed(&mut multi, &jobs, &strategy, 4).unwrap();
        assert!(
            report.overlap_saved_s > 0.0,
            "expected overlap, saved = {}",
            report.overlap_saved_s
        );
        assert!(report.wall_s < report.serial_s);
    }

    #[test]
    fn single_stream_delegates_to_serialized_path() {
        let dims = Dim3::new(10, 6, 6);
        let sv = x_samples(dims, 2);
        let strategy = SegmentationStrategy::paper_b();
        let jobs = stream_jobs(&sv, dims);
        let mut a = MultiGpu::new(device(), 2);
        let legacy = run_batch(&mut a, &jobs, &strategy).unwrap();
        let mut b = MultiGpu::new(device(), 2);
        let delegated = run_batch_streamed(&mut b, &jobs, &strategy, 1).unwrap();
        assert_reports_identical(&legacy, &delegated);
        assert_eq!(legacy.wall_s, delegated.wall_s);
        assert_eq!(delegated.streams, 1);
        assert_eq!(delegated.overlap_saved_s, 0.0);
    }

    #[test]
    fn streamed_batch_composes_with_device_loss() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 3);
        let strategy = SegmentationStrategy::paper_b();
        let jobs = stream_jobs(&sv, dims);
        let mut clean = MultiGpu::new(device(), 2);
        let expected = run_batch_streamed(&mut clean, &jobs, &strategy, 3).unwrap();

        // Device 0 dies on its second launch: mid-schedule, with lanes in
        // flight on both stream lanes pinned to it.
        let plan = tracto_gpu_sim::FaultPlan::parse("fault 0 1 device-lost").unwrap();
        let mut faulted = MultiGpu::new(device(), 2);
        faulted.set_fault_plan(&plan);
        let report = run_batch_streamed(&mut faulted, &jobs, &strategy, 3).unwrap();
        assert!(faulted.failovers() >= 1, "the fault must actually fire");
        assert_reports_identical(&expected, &report);
    }

    #[test]
    fn streamed_batch_pool_exhausted_reports_capacity() {
        let dims = Dim3::new(10, 6, 6);
        let sv = x_samples(dims, 2);
        let plan = tracto_gpu_sim::FaultPlan::parse("fault 0 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(device(), 1);
        multi.set_fault_plan(&plan);
        let jobs = vec![
            batch_job(&sv, line_seeds(dims), 1, 100),
            batch_job(&sv, line_seeds(dims), 2, 100),
        ];
        match run_batch_streamed(&mut multi, &jobs, &SegmentationStrategy::paper_b(), 2) {
            Err(err) => assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity),
            Ok(_) => panic!("expected pool-exhausted error"),
        }
    }

    #[test]
    fn insufficient_memory_reported() {
        let dims = Dim3::new(12, 6, 6);
        let sv = x_samples(dims, 2);
        let tiny = DeviceConfig {
            memory_bytes: 64,
            ..device()
        };
        let mut multi = MultiGpu::new(tiny, 1);
        let job = batch_job(&sv, line_seeds(dims), 1, 100);
        match run_batch(
            &mut multi,
            std::slice::from_ref(&job),
            &SegmentationStrategy::Single,
        ) {
            Err(err) => {
                assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
                assert!(err.to_string().contains("device memory"));
            }
            other => panic!("expected memory error, got {:?}", other.map(|_| "report")),
        }
    }
}
