//! Posterior sample-volume caching.
//!
//! Step 1 (voxelwise MCMC) dominates end-to-end cost, yet its output
//! depends only on the dataset content and the estimation configuration —
//! both fully hashable. The service therefore keys a byte-bounded cache of
//! [`SampleVolumes`] stacks (victim choice per [`EvictionPolicy`]) on a
//! content hash of `(dataset, PriorConfig, ChainConfig, seed)`, so a
//! repeated `TrackJob` against a known dataset
//! skips Step 1 entirely. A directory-backed variant persists entries in
//! the CLI's TRV4 sample format so `tracto track --cache-dir` shares them
//! across processes.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;
use tracto::diffusion::{Acquisition, NoiseLikelihood, PriorConfig};
use tracto::mcmc::{AdaptScheme, ChainConfig, SampleVolumes};
use tracto::phantom::Dataset;
use tracto_trace::{Tracer, TractoError, TractoResult, Value};
use tracto_volume::io::{read_volume4, write_volume4};
use tracto_volume::{Mask, Volume4};

/// How the byte-bounded cache tiers pick a victim when full.
///
/// The default is the winner of the eviction ablation in EXPERIMENTS.md,
/// run under the `tracto loadgen` repeat-rate distributions; the others
/// stay selectable via `--cache-policy` for re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry.
    Lru,
    /// Evict the least frequently used entry (hits since admission;
    /// ties broken toward the least recently used).
    Lfu,
    /// Evict the entry with the least retained benefit per byte:
    /// `(hits + 1) × recompute-cost / bytes`, falling back to plain
    /// frequency when no recompute cost was recorded. Keeps entries that
    /// are expensive to rebuild relative to the space they occupy.
    #[default]
    CostAware,
}

impl EvictionPolicy {
    /// Canonical CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::CostAware => "cost",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> TractoResult<Self> {
        match s {
            "lru" => Ok(EvictionPolicy::Lru),
            "lfu" => Ok(EvictionPolicy::Lfu),
            "cost" | "cost-aware" => Ok(EvictionPolicy::CostAware),
            other => Err(TractoError::config(format!(
                "unknown eviction policy `{other}` (lru|lfu|cost)"
            ))),
        }
    }
}

/// Content hash identifying one Step-1 computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SampleKey(pub u64);

impl SampleKey {
    /// Hex form used for on-disk directory names.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// FNV-1a accumulator over the typed fields that determine Step-1 output.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn f32(&mut self, v: f32) {
        self.u64(v.to_bits() as u64);
    }
}

/// Hash everything Step 1 reads: DWI signal bits, white-matter mask,
/// acquisition protocol, priors, chain schedule, and the master seed.
/// Estimation is deterministic, so equal keys imply bit-identical
/// [`SampleVolumes`].
pub fn sample_key(
    dataset: &Dataset,
    prior: &PriorConfig,
    chain: &ChainConfig,
    seed: u64,
) -> SampleKey {
    sample_key_parts(
        &dataset.dwi,
        &dataset.wm_mask,
        &dataset.acq,
        prior,
        chain,
        seed,
    )
}

/// [`sample_key`] over the raw dataset parts, for callers (like the CLI)
/// holding a stored dataset rather than a [`Dataset`] struct.
pub fn sample_key_parts(
    dwi: &Volume4<f32>,
    wm_mask: &Mask,
    acq: &Acquisition,
    prior: &PriorConfig,
    chain: &ChainConfig,
    seed: u64,
) -> SampleKey {
    let mut h = Fnv::new();
    let dims = dwi.dims();
    h.u64(dims.nx as u64);
    h.u64(dims.ny as u64);
    h.u64(dims.nz as u64);
    h.u64(dwi.nt() as u64);
    for &v in dwi.as_slice() {
        h.f32(v);
    }
    for idx in wm_mask.indices() {
        h.u64(idx as u64);
    }
    for (&b, g) in acq.bvals().iter().zip(acq.grads()) {
        h.f64(b);
        h.f64(g.x);
        h.f64(g.y);
        h.f64(g.z);
    }
    h.f64(prior.d_max);
    h.f64(prior.sigma_max);
    match prior.ard_weight {
        None => h.u64(0),
        Some(w) => {
            h.u64(1);
            h.f64(w);
        }
    }
    h.u64(match prior.likelihood {
        NoiseLikelihood::Gaussian => 0,
        NoiseLikelihood::Rician => 1,
    });
    h.u64(prior.max_sticks as u64);
    h.u64(chain.num_burnin as u64);
    h.u64(chain.num_samples as u64);
    h.u64(chain.sample_interval as u64);
    match chain.adapt {
        AdaptScheme::Fixed => h.u64(0),
        AdaptScheme::Band {
            interval,
            lo,
            hi,
            grow,
            shrink,
        } => {
            h.u64(1);
            h.u64(interval as u64);
            h.f64(lo);
            h.f64(hi);
            h.f64(grow);
            h.f64(shrink);
        }
    }
    h.u64(seed);
    SampleKey(h.0)
}

/// Device-resident footprint of one cached stack: six f32 fields over
/// `dims × num_samples`.
pub fn sample_bytes(samples: &SampleVolumes) -> u64 {
    6 * samples.dims().len() as u64 * samples.num_samples() as u64 * 4
}

struct CacheEntry {
    key: SampleKey,
    samples: Arc<SampleVolumes>,
    bytes: u64,
    /// Hits since admission (refreshing an entry preserves its count).
    hits: u64,
    /// Wall-clock cost of the estimation that produced this entry, in
    /// milliseconds; `0.0` when unknown (e.g. promoted from disk).
    cost_ms: f64,
}

impl CacheEntry {
    /// Cost-aware retention score: benefit per byte. Entries with no
    /// recorded cost score by frequency alone (cost cancels bytes).
    fn score(&self) -> f64 {
        let cost = if self.cost_ms > 0.0 {
            self.cost_ms
        } else {
            self.bytes as f64
        };
        (self.hits + 1) as f64 * cost / (self.bytes.max(1)) as f64
    }
}

/// Pick an eviction victim's index from `(hits, cost-aware score)` pairs.
/// Callers keep entries in recency order (front = least recently used), so
/// index 0 is the LRU victim and the first-occurrence argmin used by the
/// other policies breaks ties toward the least recently used entry.
fn victim_index(policy: EvictionPolicy, entries: impl Iterator<Item = (u64, f64)>) -> usize {
    match policy {
        EvictionPolicy::Lru => 0,
        EvictionPolicy::Lfu => entries
            .enumerate()
            .min_by_key(|&(_, (hits, _))| hits)
            .map_or(0, |(i, _)| i),
        EvictionPolicy::CostAware => entries
            .enumerate()
            .min_by(|(_, (_, a)), (_, (_, b))| a.total_cmp(b))
            .map_or(0, |(i, _)| i),
    }
}

struct CacheInner {
    // Recency order: front = least recently used.
    entries: Vec<CacheEntry>,
    bytes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Byte-bounded cache of posterior sample stacks. The victim choice when
/// full is pluggable ([`EvictionPolicy`], default the ablation winner).
pub struct SampleCache {
    max_bytes: u64,
    policy: EvictionPolicy,
    inner: Mutex<CacheInner>,
    tracer: Tracer,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to respect the byte bound.
    pub evictions: u64,
    /// Bytes currently held.
    pub bytes: u64,
    /// Entries currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (1.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 1.0;
        }
        self.hits as f64 / total as f64
    }
}

impl SampleCache {
    /// Create a cache bounded to `max_bytes` of sample data.
    pub fn new(max_bytes: u64) -> Self {
        SampleCache {
            max_bytes,
            policy: EvictionPolicy::default(),
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                bytes: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            tracer: Tracer::disabled(),
        }
    }

    /// Emit hit/miss/eviction events into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Choose the eviction policy (default: [`EvictionPolicy::default`]).
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Whether a key is resident, without touching recency, frequency, or
    /// the hit/miss counters — admission probes must not skew eviction.
    pub fn contains(&self, key: SampleKey) -> bool {
        self.inner.lock().entries.iter().any(|e| e.key == key)
    }

    /// Look up a key, refreshing its recency and frequency.
    pub fn get(&self, key: SampleKey) -> Option<Arc<SampleVolumes>> {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.entries.iter().position(|e| e.key == key) {
            let mut entry = inner.entries.remove(pos);
            entry.hits += 1;
            let samples = Arc::clone(&entry.samples);
            inner.entries.push(entry);
            inner.hits += 1;
            drop(inner);
            if self.tracer.enabled() {
                self.tracer
                    .emit("serve.cache_hit", &[("key", Value::Text(key.hex()))]);
            }
            Some(samples)
        } else {
            inner.misses += 1;
            drop(inner);
            if self.tracer.enabled() {
                self.tracer
                    .emit("serve.cache_miss", &[("key", Value::Text(key.hex()))]);
            }
            None
        }
    }

    /// Insert (or refresh) an entry, evicting policy-chosen victims until
    /// the byte bound holds. An entry larger than the whole bound is
    /// simply not retained.
    pub fn insert(&self, key: SampleKey, samples: Arc<SampleVolumes>) {
        self.insert_with_cost(key, samples, 0.0);
    }

    /// [`insert`](Self::insert), recording the wall-clock cost (ms) of the
    /// estimation that produced the entry so the cost-aware policy can
    /// keep expensive-to-rebuild stacks preferentially.
    pub fn insert_with_cost(&self, key: SampleKey, samples: Arc<SampleVolumes>, cost_ms: f64) {
        let bytes = sample_bytes(&samples);
        let mut inner = self.inner.lock();
        let mut hits = 0;
        if let Some(pos) = inner.entries.iter().position(|e| e.key == key) {
            let entry = inner.entries.remove(pos);
            inner.bytes -= entry.bytes;
            hits = entry.hits;
        }
        if bytes > self.max_bytes {
            return;
        }
        while inner.bytes + bytes > self.max_bytes {
            let victim = victim_index(
                self.policy,
                inner.entries.iter().map(|e| (e.hits, e.score())),
            );
            let evicted = inner.entries.remove(victim);
            inner.bytes -= evicted.bytes;
            inner.evictions += 1;
            if self.tracer.enabled() {
                self.tracer.emit(
                    "serve.cache_evict",
                    &[
                        ("key", Value::Text(evicted.key.hex())),
                        ("bytes", evicted.bytes.into()),
                        ("policy", Value::Str(self.policy.as_str())),
                    ],
                );
            }
        }
        inner.bytes += bytes;
        inner.entries.push(CacheEntry {
            key,
            samples,
            bytes,
            hits,
            cost_ms,
        });
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes: inner.bytes,
            entries: inner.entries.len(),
        }
    }
}

const DISK_FIELDS: [&str; 6] = ["f1", "f2", "th1", "ph1", "th2", "ph2"];

/// Directory-backed sample cache in the CLI's TRV4 layout: one
/// subdirectory per key (`<dir>/<hex key>/{f1,f2,th1,ph1,th2,ph2}.trv4`).
///
/// Optionally byte-capped: with [`DiskSampleCache::with_limit`] the cache
/// evicts policy-chosen entry directories on insert until the bound
/// holds. Recency survives restarts via file modification times — a hit
/// touches the entry's `f1.trv4`, and [`DiskSampleCache::open`] rebuilds
/// the recency order from the on-disk timestamps.
pub struct DiskSampleCache {
    dir: PathBuf,
    max_bytes: Option<u64>,
    policy: EvictionPolicy,
    tracer: Tracer,
    state: Mutex<DiskState>,
}

struct DiskEntry {
    key: SampleKey,
    /// Summed file sizes of the entry directory.
    bytes: u64,
    /// Hits since this process opened the cache (frequency does not
    /// survive a restart; a reopened cache warms its counts from zero).
    hits: u64,
    /// Recompute cost (ms) read from the entry's `cost` sidecar file;
    /// `0.0` when the entry predates cost recording.
    cost_ms: f64,
}

impl DiskEntry {
    /// Same retained-benefit-per-byte score as the memory tier.
    fn score(&self) -> f64 {
        let cost = if self.cost_ms > 0.0 {
            self.cost_ms
        } else {
            self.bytes as f64
        };
        (self.hits + 1) as f64 * cost / (self.bytes.max(1)) as f64
    }
}

struct DiskState {
    // Recency order: front = least recently used.
    entries: Vec<DiskEntry>,
    bytes: u64,
}

fn dir_entry_stats(dir: &Path) -> (u64, Option<SystemTime>) {
    let mut bytes = 0u64;
    let mut newest: Option<SystemTime> = None;
    if let Ok(read) = std::fs::read_dir(dir) {
        for file in read.flatten() {
            if let Ok(meta) = file.metadata() {
                bytes += meta.len();
                if let Ok(modified) = meta.modified() {
                    newest = Some(newest.map_or(modified, |n| n.max(modified)));
                }
            }
        }
    }
    (bytes, newest)
}

impl DiskSampleCache {
    /// Open (creating if needed) a cache rooted at `dir`, rebuilding the
    /// recency order from entry modification times.
    pub fn open(dir: &Path) -> TractoResult<Self> {
        std::fs::create_dir_all(dir)
            .map_err(|e| TractoError::io(format!("create cache dir {}", dir.display()), e))?;
        let read = std::fs::read_dir(dir)
            .map_err(|e| TractoError::io(format!("scan cache dir {}", dir.display()), e))?;
        let mut scanned: Vec<(SampleKey, u64, f64, Option<SystemTime>)> = Vec::new();
        for entry in read.flatten() {
            let name = entry.file_name();
            let Some(key) = name
                .to_str()
                .filter(|n| n.len() == 16)
                .and_then(|n| u64::from_str_radix(n, 16).ok())
            else {
                continue; // unrelated file/dir — not ours to manage
            };
            if !entry.path().is_dir() {
                continue;
            }
            let (bytes, modified) = dir_entry_stats(&entry.path());
            let cost_ms = std::fs::read_to_string(entry.path().join("cost"))
                .ok()
                .and_then(|s| s.trim().parse::<f64>().ok())
                .filter(|c| c.is_finite() && *c > 0.0)
                .unwrap_or(0.0);
            scanned.push((SampleKey(key), bytes, cost_ms, modified));
        }
        scanned.sort_by_key(|&(key, _, _, modified)| (modified, key));
        let bytes = scanned.iter().map(|&(_, b, _, _)| b).sum();
        Ok(DiskSampleCache {
            dir: dir.to_path_buf(),
            max_bytes: None,
            policy: EvictionPolicy::default(),
            tracer: Tracer::disabled(),
            state: Mutex::new(DiskState {
                entries: scanned
                    .into_iter()
                    .map(|(key, bytes, cost_ms, _)| DiskEntry {
                        key,
                        bytes,
                        hits: 0,
                        cost_ms,
                    })
                    .collect(),
                bytes,
            }),
        })
    }

    /// Cap the cache at `max_bytes`, evicting least-recently-used entries
    /// immediately if the existing contents already exceed the bound.
    pub fn with_limit(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        let mut state = self.state.lock();
        self.enforce_cap(&mut state);
        drop(state);
        self
    }

    /// Emit hit/miss/eviction/poisoned-entry events into `tracer`.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Choose the eviction policy (default: [`EvictionPolicy::default`]).
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Entries currently tracked.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// True when the cache tracks no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently held on disk (tracked entries only).
    pub fn bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    fn entry_dir(&self, key: SampleKey) -> PathBuf {
        self.dir.join(key.hex())
    }

    /// Whether a key is present on disk, without opening or verifying the
    /// entry (admission probes only need residency, not bytes).
    pub fn contains(&self, key: SampleKey) -> bool {
        self.state.lock().entries.iter().any(|e| e.key == key)
    }

    fn forget(state: &mut DiskState, key: SampleKey) -> u64 {
        if let Some(pos) = state.entries.iter().position(|e| e.key == key) {
            let entry = state.entries.remove(pos);
            state.bytes -= entry.bytes;
            return entry.hits;
        }
        0
    }

    /// Delete the policy-chosen victim; false when nothing is left.
    fn evict_one(&self, state: &mut DiskState) -> bool {
        if state.entries.is_empty() {
            return false;
        }
        let victim = victim_index(
            self.policy,
            state.entries.iter().map(|e| (e.hits, e.score())),
        );
        let DiskEntry { key, bytes, .. } = state.entries.remove(victim);
        state.bytes -= bytes;
        std::fs::remove_dir_all(self.entry_dir(key)).ok();
        if self.tracer.enabled() {
            self.tracer.emit(
                "serve.disk_cache_evict",
                &[
                    ("key", Value::Text(key.hex())),
                    ("bytes", bytes.into()),
                    ("policy", Value::Str(self.policy.as_str())),
                ],
            );
        }
        true
    }

    fn enforce_cap(&self, state: &mut DiskState) {
        let Some(max) = self.max_bytes else { return };
        while state.bytes > max && self.evict_one(state) {}
    }

    /// Load an entry. `Ok(None)` is a clean miss. A present-but-unreadable
    /// entry (truncated or corrupt file) is quarantined — deleted from disk,
    /// dropped from the index, reported via a `serve.cache_quarantine` trace
    /// event — and also returns `Ok(None)` so callers fall through to a
    /// recompute instead of failing the job.
    pub fn get(&self, key: SampleKey) -> TractoResult<Option<SampleVolumes>> {
        let dir = self.entry_dir(key);
        if !dir.is_dir() {
            if self.tracer.enabled() {
                self.tracer
                    .emit("serve.disk_cache_miss", &[("key", Value::Text(key.hex()))]);
            }
            return Ok(None);
        }
        match self.read_entry(&dir) {
            Ok(samples) => {
                let mut state = self.state.lock();
                if let Some(pos) = state.entries.iter().position(|e| e.key == key) {
                    let mut entry = state.entries.remove(pos);
                    entry.hits += 1;
                    state.entries.push(entry);
                }
                drop(state);
                // Touch the entry so recency survives a restart (best
                // effort — a read-only cache dir still works, it just
                // degrades to scan order).
                if let Ok(f) = std::fs::File::options()
                    .write(true)
                    .open(dir.join("f1.trv4"))
                {
                    f.set_modified(SystemTime::now()).ok();
                }
                if self.tracer.enabled() {
                    self.tracer
                        .emit("serve.disk_cache_hit", &[("key", Value::Text(key.hex()))]);
                }
                Ok(Some(samples))
            }
            Err(err) => {
                // Quarantine: a present-but-unreadable entry (truncated or
                // corrupt file) is deleted and forgotten so it can never
                // poison the cache twice, then reported as a clean miss —
                // the caller recomputes and `put` repopulates the slot.
                std::fs::remove_dir_all(&dir).ok();
                let mut state = self.state.lock();
                Self::forget(&mut state, key);
                drop(state);
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "serve.cache_quarantine",
                        &[
                            ("key", Value::Text(key.hex())),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
                Ok(None)
            }
        }
    }

    fn read_entry(&self, dir: &Path) -> TractoResult<SampleVolumes> {
        let mut vols: Vec<Volume4<f32>> = Vec::with_capacity(6);
        for name in DISK_FIELDS {
            let path = dir.join(format!("{name}.trv4"));
            let data = std::fs::read(&path)
                .map_err(|e| TractoError::io(format!("read cache entry {}", path.display()), e))?;
            let vol = read_volume4(&mut data.as_slice()).map_err(|e| {
                TractoError::format_with(format!("corrupt cache entry {}", path.display()), e)
            })?;
            vols.push(vol);
        }
        let [f1, f2, th1, ph1, th2, ph2]: [Volume4<f32>; 6] = vols
            .try_into()
            .map_err(|_| TractoError::format("cache entry field count"))?;
        Ok(SampleVolumes {
            f1,
            f2,
            th1,
            ph1,
            th2,
            ph2,
        })
    }

    /// Persist an entry (overwrites), then evict policy-chosen victims
    /// while the byte cap is exceeded.
    pub fn put(&self, key: SampleKey, samples: &SampleVolumes) -> TractoResult<()> {
        self.put_with_cost(key, samples, 0.0)
    }

    /// [`put`](Self::put), recording the wall-clock estimation cost (ms)
    /// in a `cost` sidecar file so the cost-aware policy survives a
    /// restart (unlike hit counts, which reset per process).
    pub fn put_with_cost(
        &self,
        key: SampleKey,
        samples: &SampleVolumes,
        cost_ms: f64,
    ) -> TractoResult<()> {
        let dir = self.entry_dir(key);
        std::fs::create_dir_all(&dir)
            .map_err(|e| TractoError::io(format!("create cache entry {}", dir.display()), e))?;
        let fields = [
            ("f1", &samples.f1),
            ("f2", &samples.f2),
            ("th1", &samples.th1),
            ("ph1", &samples.ph1),
            ("th2", &samples.th2),
            ("ph2", &samples.ph2),
        ];
        let mut written = 0u64;
        for (name, vol) in fields {
            let mut buf = Vec::new();
            write_volume4(&mut buf, vol)
                .map_err(|e| TractoError::format_with(format!("encode {name}.trv4"), e))?;
            let path = dir.join(format!("{name}.trv4"));
            written += buf.len() as u64;
            std::fs::write(&path, buf)
                .map_err(|e| TractoError::io(format!("write cache entry {}", path.display()), e))?;
        }
        if cost_ms > 0.0 {
            // Best-effort sidecar: a missing cost file only degrades the
            // cost-aware score to frequency, never the entry itself.
            let text = format!("{cost_ms:.3}\n");
            if std::fs::write(dir.join("cost"), text.as_bytes()).is_ok() {
                written += text.len() as u64;
            }
        }
        let mut state = self.state.lock();
        let hits = Self::forget(&mut state, key);
        // Mirror the memory tier: the fresh entry is never its own victim
        // (an LFU/cost-aware scan would otherwise always pick the zero-hit
        // newcomer) — evict among existing entries, then admit. An entry
        // larger than the whole cap is simply not retained.
        if let Some(max) = self.max_bytes {
            while state.bytes + written > max && self.evict_one(&mut state) {}
            if written > max {
                drop(state);
                std::fs::remove_dir_all(&dir).ok();
                return Ok(());
            }
        }
        state.entries.push(DiskEntry {
            key,
            bytes: written,
            hits,
            cost_ms,
        });
        state.bytes += written;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_volume::Dim3;

    fn stack(dims: Dim3, n: usize, fill: f32) -> Arc<SampleVolumes> {
        let mut sv = SampleVolumes::zeros(dims, n);
        for c in dims.iter() {
            for s in 0..n {
                sv.f1.set(c, s, fill);
            }
        }
        Arc::new(sv)
    }

    #[test]
    fn key_sensitive_to_each_input() {
        let ds = tracto::phantom::datasets::single_bundle(Dim3::new(6, 4, 4), Some(20.0), 3);
        let prior = PriorConfig::default();
        let chain = ChainConfig::fast_test();
        let base = sample_key(&ds, &prior, &chain, 42);
        assert_eq!(base, sample_key(&ds, &prior, &chain, 42), "deterministic");
        assert_ne!(base, sample_key(&ds, &prior, &chain, 43), "seed matters");
        let other_chain = ChainConfig {
            num_samples: chain.num_samples + 1,
            ..chain
        };
        assert_ne!(
            base,
            sample_key(&ds, &prior, &other_chain, 42),
            "chain matters"
        );
        let other_prior = PriorConfig {
            d_max: prior.d_max * 2.0,
            ..prior
        };
        assert_ne!(
            base,
            sample_key(&ds, &other_prior, &chain, 42),
            "prior matters"
        );
        let ds2 = tracto::phantom::datasets::single_bundle(Dim3::new(6, 4, 4), Some(20.0), 4);
        assert_ne!(
            base,
            sample_key(&ds2, &prior, &chain, 42),
            "dataset content matters"
        );
    }

    #[test]
    fn lru_evicts_oldest_under_byte_bound() {
        let dims = Dim3::new(4, 4, 4);
        let per = sample_bytes(&stack(dims, 2, 0.0));
        let cache = SampleCache::new(2 * per).with_policy(EvictionPolicy::Lru);
        cache.insert(SampleKey(1), stack(dims, 2, 0.1));
        cache.insert(SampleKey(2), stack(dims, 2, 0.2));
        assert!(cache.get(SampleKey(1)).is_some(), "refresh key 1");
        cache.insert(SampleKey(3), stack(dims, 2, 0.3));
        // Key 2 was least recently used, so it went.
        assert!(cache.get(SampleKey(2)).is_none());
        assert!(cache.get(SampleKey(1)).is_some());
        assert!(cache.get(SampleKey(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(stats.bytes <= 2 * per);
    }

    #[test]
    fn lfu_evicts_the_coldest_entry_even_when_recently_used() {
        let dims = Dim3::new(4, 4, 4);
        let per = sample_bytes(&stack(dims, 2, 0.0));
        let cache = SampleCache::new(2 * per).with_policy(EvictionPolicy::Lfu);
        cache.insert(SampleKey(1), stack(dims, 2, 0.1));
        cache.insert(SampleKey(2), stack(dims, 2, 0.2));
        assert!(cache.get(SampleKey(1)).is_some());
        assert!(cache.get(SampleKey(1)).is_some());
        assert!(cache.get(SampleKey(2)).is_some());
        // Recency order is now [1, 2] — LRU would evict key 1 here, but
        // key 2 has fewer hits (1 vs 2), so LFU picks it.
        cache.insert(SampleKey(3), stack(dims, 2, 0.3));
        assert!(cache.get(SampleKey(2)).is_none(), "coldest entry evicted");
        assert!(cache.get(SampleKey(1)).is_some());
        assert!(cache.get(SampleKey(3)).is_some());
    }

    #[test]
    fn cost_aware_keeps_expensive_entries_over_hot_cheap_ones() {
        let dims = Dim3::new(4, 4, 4);
        let per = sample_bytes(&stack(dims, 2, 0.0));
        let cache = SampleCache::new(2 * per).with_policy(EvictionPolicy::CostAware);
        cache.insert_with_cost(SampleKey(1), stack(dims, 2, 0.1), 5_000.0);
        cache.insert_with_cost(SampleKey(2), stack(dims, 2, 0.2), 1.0);
        // Key 2 is both more recent and more frequent — but nearly free to
        // recompute, so it scores below the expensive key 1.
        assert!(cache.get(SampleKey(2)).is_some());
        cache.insert_with_cost(SampleKey(3), stack(dims, 2, 0.3), 100.0);
        assert!(cache.get(SampleKey(2)).is_none(), "cheap entry evicted");
        assert!(cache.get(SampleKey(1)).is_some(), "expensive entry kept");
        assert!(cache.get(SampleKey(3)).is_some());
    }

    #[test]
    fn oversized_entry_not_retained() {
        let dims = Dim3::new(4, 4, 4);
        let cache = SampleCache::new(10);
        cache.insert(SampleKey(1), stack(dims, 2, 0.5));
        assert!(cache.get(SampleKey(1)).is_none());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn hit_rate_counts() {
        let dims = Dim3::new(4, 4, 4);
        let cache = SampleCache::new(u64::MAX);
        assert_eq!(cache.stats().hit_rate(), 1.0);
        cache.insert(SampleKey(7), stack(dims, 1, 0.5));
        assert!(cache.get(SampleKey(7)).is_some());
        assert!(cache.get(SampleKey(8)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dims = Dim3::new(3, 2, 2);
        let dir = std::env::temp_dir().join(format!("tracto-serve-cache-{}", std::process::id()));
        let cache = DiskSampleCache::open(&dir).unwrap();
        let key = SampleKey(0xABCD);
        assert!(cache.get(key).unwrap().is_none());
        let sv = stack(dims, 2, 0.75);
        cache.put(key, &sv).unwrap();
        let back = cache.get(key).unwrap().expect("entry persisted");
        assert_eq!(back.f1, sv.f1);
        assert_eq!(back.num_samples(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_cache_byte_cap_evicts_lru_and_traces() {
        use tracto_trace::{RingSink, Tracer};

        let dims = Dim3::new(3, 2, 2);
        let dir = std::env::temp_dir().join(format!(
            "tracto-serve-disk-lru-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let ring = Arc::new(RingSink::new(128));
        let cache = DiskSampleCache::open(&dir)
            .unwrap()
            .with_tracer(Tracer::shared(ring.clone()));
        let sv = stack(dims, 2, 0.5);
        cache.put(SampleKey(1), &sv).unwrap();
        let per = cache.bytes();
        assert!(per > 0);

        // Re-open with a cap that fits exactly two entries.
        drop(cache);
        let cache = DiskSampleCache::open(&dir)
            .unwrap()
            .with_limit(2 * per)
            .with_policy(EvictionPolicy::Lru)
            .with_tracer(Tracer::shared(ring.clone()));
        assert_eq!(cache.len(), 1);
        cache.put(SampleKey(2), &sv).unwrap();
        // Refresh key 1 so key 2 becomes the LRU.
        assert!(cache.get(SampleKey(1)).unwrap().is_some());
        cache.put(SampleKey(3), &sv).unwrap();

        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= 2 * per);
        assert!(cache.get(SampleKey(2)).unwrap().is_none(), "LRU evicted");
        assert!(cache.get(SampleKey(1)).unwrap().is_some());
        assert!(cache.get(SampleKey(3)).unwrap().is_some());
        let evicts = ring.named("serve.disk_cache_evict");
        assert_eq!(evicts.len(), 1);
        assert_eq!(
            evicts[0].field("key"),
            Some(&tracto_trace::Value::Text(SampleKey(2).hex()))
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_lfu_evicts_coldest_and_cost_sidecar_survives_reopen() {
        let dims = Dim3::new(3, 2, 2);
        let dir = std::env::temp_dir().join(format!(
            "tracto-serve-disk-policy-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cache = DiskSampleCache::open(&dir).unwrap();
        let sv = stack(dims, 2, 0.5);
        cache.put(SampleKey(1), &sv).unwrap();
        let per = cache.bytes();
        drop(cache);

        // LFU on disk: key 1 is hotter (2 hits) than key 2 (1 hit), so
        // the third put evicts key 2 even though key 1 is less recent.
        let cache = DiskSampleCache::open(&dir)
            .unwrap()
            .with_policy(EvictionPolicy::Lfu)
            .with_limit(2 * per + 64);
        cache.put(SampleKey(2), &sv).unwrap();
        assert!(cache.get(SampleKey(1)).unwrap().is_some());
        assert!(cache.get(SampleKey(1)).unwrap().is_some());
        assert!(cache.get(SampleKey(2)).unwrap().is_some());
        cache.put(SampleKey(3), &sv).unwrap();
        assert!(
            cache.get(SampleKey(2)).unwrap().is_none(),
            "coldest evicted"
        );
        assert!(cache.get(SampleKey(1)).unwrap().is_some());
        drop(cache);

        // Cost sidecars persist across a reopen: the expensive entry
        // survives a cap squeeze even with all hit counts reset to zero.
        std::fs::remove_dir_all(&dir).ok();
        let cache = DiskSampleCache::open(&dir).unwrap();
        cache.put_with_cost(SampleKey(10), &sv, 9_000.0).unwrap();
        cache.put(SampleKey(11), &sv).unwrap();
        let both = cache.bytes();
        drop(cache);
        let cache = DiskSampleCache::open(&dir)
            .unwrap()
            .with_policy(EvictionPolicy::CostAware)
            .with_limit(both - 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(SampleKey(11)).unwrap().is_none(), "cheap evicted");
        let back = cache.get(SampleKey(10)).unwrap();
        assert!(back.is_some(), "expensive entry kept via persisted cost");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_disk_entry_is_quarantined_with_trace_event() {
        use tracto_trace::{RingSink, Tracer, Value};

        let dims = Dim3::new(3, 2, 2);
        let dir = std::env::temp_dir().join(format!(
            "tracto-serve-disk-poison-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let ring = Arc::new(RingSink::new(32));
        let cache = DiskSampleCache::open(&dir)
            .unwrap()
            .with_tracer(Tracer::shared(ring.clone()));
        let key = SampleKey(0xBEEF);
        let sv = stack(dims, 2, 0.25);
        cache.put(key, &sv).unwrap();

        // Truncate one field mid-header: the entry is now poisoned.
        let entry_dir = dir.join(key.hex());
        let poisoned = entry_dir.join("th1.trv4");
        let full = std::fs::read(&poisoned).unwrap();
        std::fs::write(&poisoned, &full[..7.min(full.len())]).unwrap();

        // A poisoned entry is quarantined (deleted + forgotten) and reads
        // as a clean miss — never an error, never a panic.
        assert!(cache.get(key).unwrap().is_none(), "quarantined entry");
        assert!(!entry_dir.exists(), "entry dir removed from disk");
        assert_eq!(cache.len(), 0, "entry dropped from index");
        assert_eq!(cache.bytes(), 0);
        let events = ring.named("serve.cache_quarantine");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("key"), Some(&Value::Text(key.hex())));
        assert!(matches!(
            events[0].field("error"),
            Some(Value::Text(msg)) if msg.contains("th1.trv4")
        ));

        // The slot is immediately reusable: a fresh put round-trips.
        cache.put(key, &sv).unwrap();
        let back = cache.get(key).unwrap().expect("repopulated entry");
        assert_eq!(back.f1, sv.f1);

        // Garbage bytes (bad magic) are quarantined the same way.
        std::fs::write(entry_dir.join("f1.trv4"), b"not a volume at all").unwrap();
        assert!(cache.get(key).unwrap().is_none());
        assert_eq!(ring.count("serve.cache_quarantine"), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
