//! The unified job-submission payload and its wire conversion.
//!
//! [`JobSpec`] is the one way work enters the service:
//! [`TractoService::submit`](crate::TractoService::submit) takes it whether
//! the caller is in-process (datasets passed as `Arc<Dataset>`) or remote
//! (datasets named as deterministic phantom recipes that the server
//! materializes — and memoizes — itself). The wire-to-serve conversion
//! lives here, in exactly one function ([`JobSpec::from_wire`]), so the
//! socket front end and an in-process caller building from the same
//! [`tracto_proto::JobSpec`] run byte-for-byte identical jobs.

use crate::job::{EstimateJob, TrackJob};
use std::sync::Arc;
use std::time::Duration;
use tracto::phantom::{datasets, Dataset};
use tracto::pipeline::PipelineConfig;
use tracto::tracking::getter::Modality;
use tracto_diffusion::PriorConfig;
use tracto_mcmc::mh::AdaptScheme;
use tracto_mcmc::ChainConfig;
use tracto_proto::{CachePolicy, JobKind, Priority};
use tracto_trace::{TractoError, TractoResult};
use tracto_volume::{Dim3, Mask, Vec3};

/// Where a job's dataset comes from.
#[derive(Clone)]
pub enum DatasetSource {
    /// An in-process dataset, shared by reference.
    Loaded(Arc<Dataset>),
    /// A deterministic phantom recipe (the only form that crosses the
    /// wire). The service materializes it once per distinct recipe and
    /// shares the result between jobs.
    Phantom(tracto_proto::DatasetSpec),
}

impl From<Arc<Dataset>> for DatasetSource {
    fn from(ds: Arc<Dataset>) -> Self {
        DatasetSource::Loaded(ds)
    }
}

impl From<tracto_proto::DatasetSpec> for DatasetSource {
    fn from(spec: tracto_proto::DatasetSpec) -> Self {
        DatasetSource::Phantom(spec)
    }
}

/// What the job runs.
#[derive(Clone)]
pub enum Work {
    /// Step 1 only: estimate posteriors, warm the sample cache.
    Estimate {
        /// Posterior priors.
        prior: PriorConfig,
        /// Chain schedule.
        chain: ChainConfig,
        /// Master seed.
        seed: u64,
    },
    /// The full pipeline: Step 1 via the cache, Step 2 batched.
    Track {
        /// Full pipeline configuration (chain + prior + tracking + seed +
        /// modality + optional stop percentile).
        config: PipelineConfig,
        /// Seed points; `None` seeds every fiber-bearing ground-truth
        /// voxel, exactly as [`tracto::Pipeline`] does.
        seeds: Option<Vec<Vec3>>,
        /// Explicit stop mask (streamlines stop on leaving it). Only
        /// in-process callers can pass one — file masks do not cross the
        /// wire; remote jobs express stop masks as a percentile of the
        /// dataset's mean DWI via `config.stop_percentile`.
        stop_mask: Option<Mask>,
    },
}

/// The one job-submission payload. Every submission — estimation or
/// tracking, local or remote — is a `JobSpec`.
#[derive(Clone)]
pub struct JobSpec {
    /// The dataset to run on.
    pub dataset: DatasetSource,
    /// Estimate or track.
    pub work: Work,
    /// Give up if the job has not started tracking within this budget.
    pub deadline: Option<Duration>,
    /// Batch-admission priority.
    pub priority: Priority,
    /// Per-job override of the service-wide retry budget.
    pub retry_budget: Option<u32>,
    /// How this job interacts with the sample cache.
    pub cache: CachePolicy,
    /// Accounting tenant for rate limits and fair admission
    /// ([`tracto_proto::DEFAULT_TENANT`] for unlabelled traffic).
    pub tenant: String,
    /// The wire-level spec this job was converted from, when it came
    /// through [`JobSpec::from_wire`]. This is what the job journal
    /// persists: wire specs name datasets as deterministic recipes, so a
    /// journaled job can be re-run bit-identically after a crash. Jobs
    /// built from in-process `Arc<Dataset>`s have no wire form and are
    /// not journaled.
    pub wire: Option<tracto_proto::JobSpec>,
}

impl JobSpec {
    /// An estimation job with default priors and scheduling knobs.
    pub fn estimate(dataset: impl Into<DatasetSource>, chain: ChainConfig, seed: u64) -> Self {
        JobSpec {
            dataset: dataset.into(),
            work: Work::Estimate {
                prior: PriorConfig::default(),
                chain,
                seed,
            },
            deadline: None,
            priority: Priority::Normal,
            retry_budget: None,
            cache: CachePolicy::ReadWrite,
            tenant: tracto_proto::DEFAULT_TENANT.to_string(),
            wire: None,
        }
    }

    /// A tracking job with default scheduling knobs.
    pub fn track(dataset: impl Into<DatasetSource>, config: PipelineConfig) -> Self {
        JobSpec {
            dataset: dataset.into(),
            work: Work::Track {
                config,
                seeds: None,
                stop_mask: None,
            },
            deadline: None,
            priority: Priority::Normal,
            retry_budget: None,
            cache: CachePolicy::ReadWrite,
            tenant: tracto_proto::DEFAULT_TENANT.to_string(),
            wire: None,
        }
    }

    /// Set a deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Use explicit seed points instead of mask-derived ones.
    ///
    /// # Panics
    /// On estimation jobs, which have no seeds.
    pub fn with_seeds(mut self, points: Vec<Vec3>) -> Self {
        match &mut self.work {
            Work::Track { seeds, .. } => *seeds = Some(points),
            Work::Estimate { .. } => panic!("estimation jobs take no seed points"),
        }
        self
    }

    /// Select the tracking modality (which direction getter drives
    /// Step 2). Returns a typed [`TractoError::Config`] on estimation
    /// jobs — modality only changes Step 2, so requesting one on a job
    /// with no Step 2 is a caller bug worth surfacing, not ignoring.
    pub fn with_modality(mut self, modality: Modality) -> TractoResult<Self> {
        match &mut self.work {
            Work::Track { config, .. } => {
                config.modality = modality;
                Ok(self)
            }
            Work::Estimate { .. } => Err(TractoError::config(
                "modality applies to track jobs only (estimation has no Step 2)",
            )),
        }
    }

    /// Attach an explicit stop mask: streamlines stop on leaving it.
    /// Returns a typed [`TractoError::Config`] on estimation jobs.
    pub fn with_stop_mask(mut self, mask: Mask) -> TractoResult<Self> {
        match &mut self.work {
            Work::Track { stop_mask, .. } => {
                *stop_mask = Some(mask);
                Ok(self)
            }
            Work::Estimate { .. } => Err(TractoError::config(
                "stop masks apply to track jobs only (estimation has no Step 2)",
            )),
        }
    }

    /// Override the service-wide retry budget for this job.
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = Some(budget);
        self
    }

    /// Set the cache policy.
    pub fn with_cache(mut self, cache: CachePolicy) -> Self {
        self.cache = cache;
        self
    }

    /// Set the accounting tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Convert a wire-level spec. This is the *only* wire-to-serve
    /// conversion: the socket listener and any in-process caller that
    /// starts from a [`tracto_proto::JobSpec`] both go through here, so
    /// the two paths cannot drift apart — which is what makes socket
    /// results bit-identical to in-process ones.
    pub fn from_wire(wire: &tracto_proto::JobSpec) -> TractoResult<Self> {
        let chain = ChainConfig {
            num_burnin: wire.chain.burnin,
            num_samples: wire.chain.samples,
            sample_interval: wire.chain.interval,
            adapt: AdaptScheme::paper_default(),
        };
        if chain.num_samples == 0 || chain.sample_interval == 0 {
            return Err(TractoError::config(
                "chain samples and interval must be positive",
            ));
        }
        let work = match &wire.kind {
            JobKind::Estimate => {
                // Modality and stop thresholds only change Step 2; a
                // Step-1-only job carrying them is a client bug.
                if wire.modality != tracto_proto::Modality::Mcmc || wire.stop_percentile.is_some() {
                    return Err(TractoError::config(
                        "modality and stop thresholds apply to track jobs only",
                    ));
                }
                Work::Estimate {
                    prior: PriorConfig::default(),
                    chain,
                    seed: wire.seed,
                }
            }
            JobKind::Track(t) => {
                if t.step <= 0.0 || !(0.0..=1.0).contains(&t.threshold) || t.max_steps == 0 {
                    return Err(TractoError::config("invalid tracking parameters"));
                }
                if let Some(pct) = wire.stop_percentile {
                    if !pct.is_finite() || !(0.0..=100.0).contains(&pct) {
                        return Err(TractoError::config(
                            "stop percentile must be a finite value in [0, 100]",
                        ));
                    }
                }
                let mut config = PipelineConfig {
                    chain,
                    seed: wire.seed,
                    modality: modality_from_wire(wire.modality),
                    stop_percentile: wire.stop_percentile,
                    ..PipelineConfig::fast()
                };
                config.tracking.step_length = t.step;
                config.tracking.angular_threshold = t.threshold;
                config.tracking.max_steps = t.max_steps;
                Work::Track {
                    config,
                    seeds: None,
                    stop_mask: None,
                }
            }
        };
        Ok(JobSpec {
            dataset: DatasetSource::Phantom(wire.dataset.clone()),
            work,
            deadline: wire.deadline_ms.map(Duration::from_millis),
            priority: wire.priority,
            retry_budget: wire.retry_budget,
            cache: wire.cache,
            tenant: wire.tenant.clone(),
            wire: Some(wire.clone()),
        })
    }
}

/// Wire modality → domain modality. The two enums exist so the tracking
/// crate never depends on the protocol; this is the one crossing point.
pub fn modality_from_wire(m: tracto_proto::Modality) -> Modality {
    match m {
        tracto_proto::Modality::Mcmc => Modality::Mcmc,
        tracto_proto::Modality::Tensorline => Modality::Tensorline,
        tracto_proto::Modality::Analytic => Modality::Analytic,
    }
}

impl From<EstimateJob> for JobSpec {
    fn from(job: EstimateJob) -> Self {
        JobSpec {
            dataset: DatasetSource::Loaded(job.dataset),
            work: Work::Estimate {
                prior: job.prior,
                chain: job.chain,
                seed: job.seed,
            },
            deadline: None,
            priority: Priority::Normal,
            retry_budget: None,
            cache: CachePolicy::ReadWrite,
            tenant: tracto_proto::DEFAULT_TENANT.to_string(),
            wire: None,
        }
    }
}

impl From<TrackJob> for JobSpec {
    fn from(job: TrackJob) -> Self {
        JobSpec {
            dataset: DatasetSource::Loaded(job.dataset),
            work: Work::Track {
                config: job.config,
                seeds: job.seeds,
                stop_mask: None,
            },
            deadline: job.deadline,
            priority: Priority::Normal,
            retry_budget: None,
            cache: CachePolicy::ReadWrite,
            tenant: tracto_proto::DEFAULT_TENANT.to_string(),
            wire: None,
        }
    }
}

/// Materialize a phantom recipe into a dataset. Deterministic in the
/// recipe: the same `(kind, scale, seed, snr)` always builds the same
/// volumes, which is what lets the wire carry recipes instead of data.
pub fn materialize_dataset(spec: &tracto_proto::DatasetSpec) -> TractoResult<Dataset> {
    let scale = spec.scale;
    if !(0.0..=1.0).contains(&scale) || scale == 0.0 {
        return Err(TractoError::config("dataset scale must be in (0, 1]"));
    }
    match spec.kind.as_str() {
        "1" | "2" => {
            let mut phantom = if spec.kind == "1" {
                datasets::DatasetSpec::paper_dataset1()
            } else {
                datasets::DatasetSpec::paper_dataset2()
            }
            .scaled(scale);
            phantom.seed = spec.seed;
            phantom.snr = spec.snr;
            Ok(phantom.build())
        }
        "single" => {
            let n = ((32.0 * scale * 4.0).round() as usize).max(8);
            Ok(datasets::single_bundle(
                Dim3::new(n, n / 2 + 2, n / 2 + 2),
                spec.snr,
                spec.seed,
            ))
        }
        "crossing" => {
            let n = ((40.0 * scale * 4.0).round() as usize).max(10);
            Ok(datasets::crossing(
                Dim3::new(n, n, (n / 3).max(5)),
                90.0,
                spec.snr,
                spec.seed,
            ))
        }
        other => Err(TractoError::config(format!(
            "unknown dataset kind `{other}` (1|2|single|crossing)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_proto::{DatasetSpec as WireDataset, TrackSpec};
    use tracto_trace::ErrorKind;

    fn wire_ds() -> WireDataset {
        WireDataset {
            kind: "single".into(),
            scale: 0.05,
            seed: 3,
            snr: None,
            upload: None,
        }
    }

    #[test]
    fn materialization_is_deterministic() {
        let a = materialize_dataset(&wire_ds()).unwrap();
        let b = materialize_dataset(&wire_ds()).unwrap();
        assert_eq!(a.dwi.dims(), b.dwi.dims());
        assert_eq!(a.dwi.as_slice(), b.dwi.as_slice(), "bit-identical volumes");
        let mut other = wire_ds();
        other.seed = 4;
        let c = materialize_dataset(&other).unwrap();
        assert_ne!(a.dwi.as_slice(), c.dwi.as_slice(), "seed changes data");
    }

    #[test]
    fn bad_recipes_are_config_errors() {
        let mut bad_kind = wire_ds();
        bad_kind.kind = "moebius".into();
        assert_eq!(
            materialize_dataset(&bad_kind).unwrap_err().kind(),
            ErrorKind::Config
        );
        let mut bad_scale = wire_ds();
        bad_scale.scale = 0.0;
        assert_eq!(
            materialize_dataset(&bad_scale).unwrap_err().kind(),
            ErrorKind::Config
        );
    }

    #[test]
    fn from_wire_validates_tracking_parameters() {
        let mut wire = tracto_proto::JobSpec::track(wire_ds());
        wire.kind = tracto_proto::JobKind::Track(TrackSpec {
            step: 0.0,
            threshold: 0.9,
            max_steps: 100,
        });
        assert_eq!(
            JobSpec::from_wire(&wire).err().expect("must fail").kind(),
            ErrorKind::Config
        );
        let mut wire = tracto_proto::JobSpec::estimate(wire_ds());
        wire.chain.samples = 0;
        assert_eq!(
            JobSpec::from_wire(&wire).err().expect("must fail").kind(),
            ErrorKind::Config
        );
    }

    #[test]
    fn modality_builders_reject_estimation_jobs() {
        let ds = Arc::new(materialize_dataset(&wire_ds()).unwrap());
        let track = JobSpec::track(ds.clone(), PipelineConfig::fast())
            .with_modality(Modality::Analytic)
            .expect("track jobs take a modality");
        match &track.work {
            Work::Track { config, .. } => assert_eq!(config.modality, Modality::Analytic),
            Work::Estimate { .. } => panic!("track spec became estimate"),
        }
        let dims = ds.dwi.dims();
        let track = JobSpec::track(ds.clone(), PipelineConfig::fast())
            .with_stop_mask(Mask::full(dims))
            .expect("track jobs take a stop mask");
        match &track.work {
            Work::Track { stop_mask, .. } => assert!(stop_mask.is_some()),
            Work::Estimate { .. } => panic!("track spec became estimate"),
        }
        // Estimation has no Step 2: both builders are typed config errors.
        let est = JobSpec::estimate(ds.clone(), ChainConfig::fast_test(), 1);
        assert_eq!(
            est.with_modality(Modality::Tensorline)
                .err()
                .expect("must fail")
                .kind(),
            ErrorKind::Config
        );
        let est = JobSpec::estimate(ds, ChainConfig::fast_test(), 1);
        assert_eq!(
            est.with_stop_mask(Mask::full(dims))
                .err()
                .expect("must fail")
                .kind(),
            ErrorKind::Config
        );
    }

    #[test]
    fn from_wire_rejects_modality_work_mismatches() {
        // Estimate + non-default modality is a client bug.
        let mut wire = tracto_proto::JobSpec::estimate(wire_ds());
        wire.modality = tracto_proto::Modality::Analytic;
        assert_eq!(
            JobSpec::from_wire(&wire).err().expect("must fail").kind(),
            ErrorKind::Config
        );
        let mut wire = tracto_proto::JobSpec::estimate(wire_ds());
        wire.stop_percentile = Some(50.0);
        assert_eq!(
            JobSpec::from_wire(&wire).err().expect("must fail").kind(),
            ErrorKind::Config
        );
        // Out-of-range percentiles are rejected before any dataset work.
        let mut wire = tracto_proto::JobSpec::track(wire_ds());
        wire.stop_percentile = Some(150.0);
        assert_eq!(
            JobSpec::from_wire(&wire).err().expect("must fail").kind(),
            ErrorKind::Config
        );
        // A valid modality + percentile lands in the pipeline config.
        let mut wire = tracto_proto::JobSpec::track(wire_ds());
        wire.modality = tracto_proto::Modality::Tensorline;
        wire.stop_percentile = Some(60.0);
        match JobSpec::from_wire(&wire).unwrap().work {
            Work::Track { config, .. } => {
                assert_eq!(config.modality, Modality::Tensorline);
                assert_eq!(config.stop_percentile, Some(60.0));
            }
            Work::Estimate { .. } => panic!("track spec converted to estimate"),
        }
    }

    #[test]
    fn from_wire_carries_scheduling_envelope() {
        let mut wire = tracto_proto::JobSpec::track(wire_ds());
        wire.deadline_ms = Some(750);
        wire.priority = Priority::High;
        wire.retry_budget = Some(4);
        wire.cache = CachePolicy::Bypass;
        let spec = JobSpec::from_wire(&wire).unwrap();
        assert_eq!(spec.deadline, Some(Duration::from_millis(750)));
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.retry_budget, Some(4));
        assert_eq!(spec.cache, CachePolicy::Bypass);
        match spec.work {
            Work::Track { config, .. } => assert_eq!(config.seed, wire.seed),
            Work::Estimate { .. } => panic!("track spec converted to estimate"),
        }
    }
}
