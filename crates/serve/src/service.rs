//! The job service: submission queues, estimation workers, and the
//! continuous-batching tracking worker.
//!
//! Topology:
//!
//! ```text
//! clients ──submit──▶ [bounded prep queue] ──▶ estimation workers (1 Gpu each)
//!                                                │  cache miss → run_mcmc_gpu
//!                                                │  cache hit  → Arc clone
//!                                                ▼
//!                            [bounded ready queue] ──▶ batch worker (MultiGpu)
//!                                                        collects a window of
//!                                                        ready jobs, merges
//!                                                        their lanes, runs one
//!                                                        shared segmented
//!                                                        launch sequence,
//!                                                        demuxes per job
//! ```
//!
//! Backpressure: both queues are bounded; `submit_*` blocks when the prep
//! queue is full, `try_submit_*` fails fast with [`JobError::QueueFull`].
//! Shutdown drops the submission side, lets the workers drain, and joins
//! them; `drain` blocks until no job is queued or running.

use crate::batch::{run_batch, BatchJob};
use crate::cache::{sample_key, DiskSampleCache, SampleCache, SampleKey};
use crate::job::{EstimateJob, EstimateResult, JobError, JobId, Ticket, TrackJob, TrackResult};
use crate::metrics::{Metrics, MetricsSnapshot};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto::mcmc::SampleVolumes;
use tracto::run_mcmc_gpu;
use tracto::tracking::probabilistic::seeds_from_mask;
use tracto::tracking::SegmentationStrategy;
use tracto_gpu_sim::{DeviceConfig, FaultPlan, Gpu, MultiGpu};
use tracto_trace::{Tracer, Value};
use tracto_volume::Vec3;

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Simulated device model.
    pub device: DeviceConfig,
    /// Devices in the tracking worker's group.
    pub devices: usize,
    /// Estimation worker threads (each owns one simulated GPU).
    pub estimate_workers: usize,
    /// Bound of both submission queues.
    pub queue_capacity: usize,
    /// Most jobs merged into one batch.
    pub max_batch_jobs: usize,
    /// How long the batch worker waits for more jobs after the first.
    pub batch_window: Duration,
    /// Segmentation schedule for batched launches. Results are invariant
    /// to this choice (it only shapes timing), so one service-wide
    /// schedule serves jobs that asked for different ones.
    pub strategy: SegmentationStrategy,
    /// In-memory sample-cache bound in bytes.
    pub cache_bytes: u64,
    /// Optional on-disk sample cache shared with `tracto track --cache-dir`.
    pub disk_cache: Option<PathBuf>,
    /// Byte cap for the disk tier; `None` leaves it unbounded.
    pub disk_cache_bytes: Option<u64>,
    /// Deterministic fault schedule installed on the batch worker's device
    /// pool (chaos testing); `None` runs fault-free.
    pub fault_plan: Option<FaultPlan>,
    /// Times a job may be re-queued after a device fault escapes the pool
    /// before it fails with the typed cause.
    pub retry_budget: u32,
    /// Backoff before the first retry; doubles per retry, capped at 1024×.
    pub retry_backoff: Duration,
    /// Structured-event sink for job lifecycle, cache, batch, and GPU
    /// events. Disabled by default.
    pub tracer: Tracer,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            device: DeviceConfig::radeon_5870(),
            devices: 1,
            estimate_workers: 2,
            queue_capacity: 64,
            max_batch_jobs: 16,
            batch_window: Duration::from_millis(20),
            strategy: SegmentationStrategy::paper_table2(),
            cache_bytes: 256 * 1024 * 1024,
            disk_cache: None,
            disk_cache_bytes: None,
            fault_plan: None,
            retry_budget: 2,
            retry_backoff: Duration::from_millis(5),
            tracer: Tracer::disabled(),
        }
    }
}

enum PrepTask {
    Estimate {
        job: EstimateJob,
        ticket: Ticket<EstimateResult>,
    },
    Track {
        job: TrackJob,
        seeds: Vec<Vec3>,
        ticket: Ticket<TrackResult>,
    },
}

struct ReadyTrack {
    job: TrackJob,
    seeds: Vec<Vec3>,
    samples: Arc<SampleVolumes>,
    cache_hit: bool,
    deadline_at: Option<Instant>,
    ticket: Ticket<TrackResult>,
}

struct Shared {
    cache: SampleCache,
    disk: Option<DiskSampleCache>,
    metrics: Metrics,
    in_flight: Mutex<u64>,
    idle: Condvar,
    next_id: AtomicU64,
    tracer: Tracer,
}

impl Shared {
    fn job_started(&self) {
        *self.in_flight.lock() += 1;
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    }

    fn job_finished(&self) {
        let mut n = self.in_flight.lock();
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    /// Fulfill a ticket and settle the per-outcome counters.
    fn complete<T: Clone>(&self, ticket: &Ticket<T>, result: Result<T, JobError>) {
        let (counter, event) = match &result {
            Ok(_) => (&self.metrics.completed, "serve.job_completed"),
            Err(JobError::Cancelled) => (&self.metrics.cancelled, "serve.job_cancelled"),
            Err(JobError::DeadlineExceeded) => {
                (&self.metrics.deadline_exceeded, "serve.job_deadline")
            }
            Err(_) => (&self.metrics.failed, "serve.job_failed"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if self.tracer.enabled() {
            match &result {
                Err(JobError::Failed(err)) => self.tracer.emit(
                    event,
                    &[
                        ("job", ticket.id.0.into()),
                        ("error", Value::Text(err.to_string())),
                    ],
                ),
                _ => self.tracer.emit(event, &[("job", ticket.id.0.into())]),
            }
        }
        ticket.fulfill(result);
        self.job_finished();
    }

    /// Resolve a sample stack through memory cache → disk cache → fresh
    /// MCMC. Returns `(samples, cache_hit, voxels_estimated)`.
    fn resolve_samples(
        &self,
        gpu: &mut Gpu,
        key: SampleKey,
        job: &EstimateJob,
    ) -> (Arc<SampleVolumes>, bool, usize) {
        if let Some(samples) = self.cache.get(key) {
            return (samples, true, 0);
        }
        if let Some(disk) = &self.disk {
            // A poisoned entry was quarantined by `get` (deleted, with a
            // `serve.cache_quarantine` event) and reads as a miss, so the
            // job falls through to a fresh estimation.
            if let Ok(Some(samples)) = disk.get(key) {
                let samples = Arc::new(samples);
                self.cache.insert(key, Arc::clone(&samples));
                return (samples, true, 0);
            }
        }
        let report = run_mcmc_gpu(
            gpu,
            &job.dataset.acq,
            &job.dataset.dwi,
            &job.dataset.wm_mask,
            job.prior,
            job.chain,
            job.seed,
        );
        self.metrics.estimations_run.fetch_add(1, Ordering::Relaxed);
        self.metrics.accum.lock().estimation_sim_s += report.ledger.total_s();
        let samples = Arc::new(report.samples);
        self.cache.insert(key, Arc::clone(&samples));
        if let Some(disk) = &self.disk {
            // Disk persistence is best-effort; the in-memory result stands.
            let _ = disk.put(key, &samples);
        }
        (samples, false, report.voxels)
    }
}

/// The running service. Dropping it without calling
/// [`shutdown`](Self::shutdown) aborts queued jobs with
/// [`JobError::ShuttingDown`] and joins the workers.
pub struct TractoService {
    config: ServiceConfig,
    shared: Arc<Shared>,
    prep_tx: Option<Sender<PrepTask>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TractoService {
    /// Bring up the worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(
            config.estimate_workers >= 1,
            "need at least one estimation worker"
        );
        assert!(config.max_batch_jobs >= 1, "need a positive batch bound");
        let disk = config.disk_cache.as_ref().map(|dir| {
            let mut cache = DiskSampleCache::open(dir)
                .expect("open disk cache")
                .with_tracer(config.tracer.clone());
            if let Some(cap) = config.disk_cache_bytes {
                cache = cache.with_limit(cap);
            }
            cache
        });
        let shared = Arc::new(Shared {
            cache: SampleCache::new(config.cache_bytes).with_tracer(config.tracer.clone()),
            disk,
            metrics: Metrics::default(),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            next_id: AtomicU64::new(1),
            tracer: config.tracer.clone(),
        });

        let (prep_tx, prep_rx) = bounded::<PrepTask>(config.queue_capacity);
        let (ready_tx, ready_rx) = bounded::<ReadyTrack>(config.queue_capacity);

        let mut workers = Vec::new();
        for i in 0..config.estimate_workers {
            let rx = prep_rx.clone();
            let tx = ready_tx.clone();
            let shared = Arc::clone(&shared);
            let device = config.device.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tracto-estimate-{i}"))
                    .spawn(move || estimate_worker(i, rx, tx, shared, device))
                    .expect("spawn estimation worker"),
            );
        }
        // The clones above keep the channel alive; drop the originals so
        // the pipeline collapses cleanly once the senders go away.
        drop(prep_rx);
        drop(ready_tx);

        {
            let shared = Arc::clone(&shared);
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("tracto-batch".into())
                    .spawn(move || batch_worker(ready_rx, shared, cfg))
                    .expect("spawn batch worker"),
            );
        }

        TractoService {
            config,
            shared,
            prep_tx: Some(prep_tx),
            workers,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn next_id(&self) -> JobId {
        JobId(self.shared.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn trace_submit(&self, id: JobId, kind: &'static str) {
        if self.shared.tracer.enabled() {
            self.shared.tracer.emit(
                "serve.job_submitted",
                &[("job", id.0.into()), ("kind", kind.into())],
            );
        }
    }

    /// Submit an estimation job, blocking while the queue is full.
    pub fn submit_estimate(&self, job: EstimateJob) -> Ticket<EstimateResult> {
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, "estimate");
        self.shared.job_started();
        let task = PrepTask::Estimate {
            job,
            ticket: ticket.clone(),
        };
        let sent = match &self.prep_tx {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.complete(&ticket, Err(JobError::ShuttingDown));
        }
        ticket
    }

    /// Submit a tracking job, blocking while the queue is full.
    pub fn submit_track(&self, job: TrackJob) -> Ticket<TrackResult> {
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, "track");
        let seeds = job
            .seeds
            .clone()
            .unwrap_or_else(|| seeds_from_mask(&job.dataset.truth.fiber_mask()));
        self.shared.job_started();
        let task = PrepTask::Track {
            job,
            seeds,
            ticket: ticket.clone(),
        };
        let sent = match &self.prep_tx {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        };
        if !sent {
            self.shared.complete(&ticket, Err(JobError::ShuttingDown));
        }
        ticket
    }

    /// Submit a tracking job without blocking; fails with
    /// [`JobError::QueueFull`] when the bounded queue is at capacity.
    pub fn try_submit_track(&self, job: TrackJob) -> Result<Ticket<TrackResult>, JobError> {
        let ticket = Ticket::new(self.next_id());
        let seeds = job
            .seeds
            .clone()
            .unwrap_or_else(|| seeds_from_mask(&job.dataset.truth.fiber_mask()));
        let Some(tx) = &self.prep_tx else {
            return Err(JobError::ShuttingDown);
        };
        self.trace_submit(ticket.id, "track");
        self.shared.job_started();
        match tx.try_send(PrepTask::Track {
            job,
            seeds,
            ticket: ticket.clone(),
        }) {
            Ok(()) => Ok(ticket),
            Err(TrySendError::Full(_)) => {
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.shared.job_finished();
                Err(JobError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.shared.job_finished();
                Err(JobError::ShuttingDown)
            }
        }
    }

    /// Block until every accepted job has completed (successfully or not).
    pub fn drain(&self) {
        let mut n = self.shared.in_flight.lock();
        while *n > 0 {
            self.shared.idle.wait(&mut n);
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let in_flight = *self.shared.in_flight.lock();
        self.shared
            .metrics
            .snapshot(in_flight, self.shared.cache.stats())
    }

    /// Stop accepting jobs, drain the queues, and join the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        self.prep_tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TractoService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn estimate_worker(
    index: usize,
    rx: Receiver<PrepTask>,
    tx: Sender<ReadyTrack>,
    shared: Arc<Shared>,
    device: DeviceConfig,
) {
    let mut gpu = Gpu::new(device);
    gpu.set_tracer(shared.tracer.clone(), index as u32);
    while let Ok(task) = rx.recv() {
        match task {
            PrepTask::Estimate { job, ticket } => {
                if ticket.is_cancelled() {
                    shared.complete(&ticket, Err(JobError::Cancelled));
                    continue;
                }
                let key = sample_key(&job.dataset, &job.prior, &job.chain, job.seed);
                let (samples, cache_hit, voxels) = shared.resolve_samples(&mut gpu, key, &job);
                shared.complete(
                    &ticket,
                    Ok(EstimateResult {
                        samples,
                        cache_hit,
                        voxels,
                    }),
                );
            }
            PrepTask::Track { job, seeds, ticket } => {
                let deadline_at = job.deadline.map(|d| ticket.accepted_at + d);
                if ticket.is_cancelled() {
                    shared.complete(&ticket, Err(JobError::Cancelled));
                    continue;
                }
                if deadline_at.is_some_and(|t| Instant::now() >= t) {
                    shared.complete(&ticket, Err(JobError::DeadlineExceeded));
                    continue;
                }
                let estimate = EstimateJob {
                    dataset: Arc::clone(&job.dataset),
                    prior: job.config.prior,
                    chain: job.config.chain,
                    seed: job.config.seed,
                };
                let key = sample_key(
                    &job.dataset,
                    &job.config.prior,
                    &job.config.chain,
                    job.config.seed,
                );
                let (samples, cache_hit, _) = shared.resolve_samples(&mut gpu, key, &estimate);
                let ready = ReadyTrack {
                    job,
                    seeds,
                    samples,
                    cache_hit,
                    deadline_at,
                    ticket,
                };
                if let Err(send_err) = tx.send(ready) {
                    let ReadyTrack { ticket, .. } = send_err.0;
                    shared.complete(&ticket, Err(JobError::ShuttingDown));
                }
            }
        }
    }
}

/// Admission order for the batch worker's pending window: jobs with the
/// nearest deadlines go first; jobs without a deadline keep their FIFO
/// order behind every dated job (the sort is stable).
fn cmp_deadlines(a: Option<Instant>, b: Option<Instant>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Less,
        (None, Some(_)) => Greater,
        (None, None) => Equal,
    }
}

/// Pull up to `max_jobs` jobs out of `pending` in deadline order.
fn admit_batch(pending: &mut Vec<ReadyTrack>, max_jobs: usize) -> Vec<ReadyTrack> {
    pending.sort_by(|a, b| cmp_deadlines(a.deadline_at, b.deadline_at));
    let take = max_jobs.min(pending.len());
    pending.drain(..take).collect()
}

/// Device-pool counter values already copied into the service metrics; the
/// pool's counters are cumulative, so the worker settles deltas after each
/// batch.
#[derive(Default)]
struct FaultCounters {
    faults: u64,
    retries: u64,
    failovers: u64,
}

fn settle_fault_metrics(multi: &MultiGpu, shared: &Shared, last: &mut FaultCounters) {
    let faults = multi.faults_injected();
    let retries = multi.fault_retries();
    let failovers = multi.failovers();
    shared
        .metrics
        .faults_injected
        .fetch_add(faults - last.faults, Ordering::Relaxed);
    shared
        .metrics
        .device_retries
        .fetch_add(retries - last.retries, Ordering::Relaxed);
    shared
        .metrics
        .failovers
        .fetch_add(failovers - last.failovers, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(multi.alive_devices() as u64, Ordering::Relaxed);
    *last = FaultCounters {
        faults,
        retries,
        failovers,
    };
}

fn batch_worker(rx: Receiver<ReadyTrack>, shared: Arc<Shared>, cfg: ServiceConfig) {
    let mut multi = MultiGpu::new(cfg.device.clone(), cfg.devices);
    multi.set_tracer(&shared.tracer);
    if let Some(plan) = &cfg.fault_plan {
        multi.set_fault_plan(plan);
    }
    let total_devices = multi.num_devices();
    shared
        .metrics
        .devices_total
        .store(total_devices as u64, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(total_devices as u64, Ordering::Relaxed);
    let mut pending: Vec<ReadyTrack> = Vec::new();
    // Jobs re-queued after a device fault, held until their backoff expires.
    let mut delayed: Vec<(ReadyTrack, Instant)> = Vec::new();
    let mut counters = FaultCounters::default();
    let mut prev_alive = multi.alive_devices();
    let mut channel_open = true;
    loop {
        // Promote retries whose backoff has expired.
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].1 <= now {
                pending.push(delayed.swap_remove(i).0);
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            if !channel_open {
                if delayed.is_empty() {
                    break;
                }
                // Shutdown with retries still cooling down: run them now
                // rather than abandoning them mid-backoff.
                pending.extend(delayed.drain(..).map(|(r, _)| r));
            } else if let Some(due) = delayed.iter().map(|&(_, at)| at).min() {
                // Idle but with retries pending: sleep on the channel only
                // until the earliest backoff expires.
                match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                    Ok(t) => pending.push(t),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => channel_open = false,
                }
                continue;
            } else {
                match rx.recv() {
                    Ok(t) => pending.push(t),
                    Err(_) => channel_open = false,
                }
                continue;
            }
        }
        // Continuous batching: hold the window open briefly to merge work
        // from other clients into this launch sequence. A backlog wider
        // than one batch skips the wait and drains immediately. A degraded
        // pool shrinks the window proportionally — fewer devices means
        // piling up a full-width batch only adds queueing delay.
        let alive = multi.alive_devices().max(1);
        let window = cfg
            .batch_window
            .mul_f64(alive as f64 / total_devices.max(1) as f64);
        let window_end = Instant::now() + window;
        while channel_open && pending.len() < cfg.max_batch_jobs {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(t) => pending.push(t),
                Err(RecvTimeoutError::Timeout) => break,
                // The held jobs still run; the next iteration observes the
                // closed channel.
                Err(RecvTimeoutError::Disconnected) => {
                    channel_open = false;
                    break;
                }
            }
        }

        let admitted = admit_batch(&mut pending, cfg.max_batch_jobs);
        let mut live = Vec::with_capacity(admitted.len());
        for r in admitted {
            if r.ticket.is_cancelled() {
                shared.complete(&r.ticket, Err(JobError::Cancelled));
            } else if r.deadline_at.is_some_and(|t| Instant::now() >= t) {
                shared.complete(&r.ticket, Err(JobError::DeadlineExceeded));
            } else {
                live.push(r);
            }
        }
        if !live.is_empty() {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_formed",
                    &[("jobs", live.len().into()), ("held", pending.len().into())],
                );
            }
            execute_batch(&mut multi, &shared, &cfg, live, &mut delayed);
            settle_fault_metrics(&multi, &shared, &mut counters);
            let alive_now = multi.alive_devices();
            if alive_now < prev_alive {
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.pool_degraded",
                        &[
                            ("alive", (alive_now as u64).into()),
                            ("total", (total_devices as u64).into()),
                        ],
                    );
                }
                prev_alive = alive_now;
            }
        }
    }
    // Complete anything still buffered after the senders vanished (pending
    // and delayed are empty here — the loop drains both before exiting).
    for r in pending {
        shared.complete(&r.ticket, Err(JobError::ShuttingDown));
    }
    while let Ok(r) = rx.try_recv() {
        shared.complete(&r.ticket, Err(JobError::ShuttingDown));
    }
}

fn execute_batch(
    multi: &mut MultiGpu,
    shared: &Shared,
    cfg: &ServiceConfig,
    live: Vec<ReadyTrack>,
    delayed: &mut Vec<(ReadyTrack, Instant)>,
) {
    let jobs: Vec<BatchJob> = live
        .iter()
        .map(|r| BatchJob {
            samples: Arc::clone(&r.samples),
            params: r.job.config.tracking,
            seeds: r.seeds.clone(),
            mask: None,
            jitter: r.job.config.jitter,
            run_seed: r.job.config.seed,
            record_visits: r.job.config.record_connectivity,
        })
        .collect();

    match run_batch(multi, &jobs, &cfg.strategy) {
        Ok(report) => {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_done",
                    &[
                        ("jobs", live.len().into()),
                        ("lanes", report.lanes.into()),
                        ("launches", report.launches.into()),
                        ("utilization", report.utilization.into()),
                    ],
                );
            }
            shared.metrics.add_batch(
                live.len() as u64,
                report.lanes as u64,
                report.launches,
                report.wall_s,
                report.utilization,
            );
            let batch_jobs = live.len();
            for (r, out) in live.into_iter().zip(report.per_job) {
                shared.complete(
                    &r.ticket,
                    Ok(TrackResult {
                        tracking: out,
                        cache_hit: r.cache_hit,
                        batch_jobs,
                        batch_lanes: report.lanes,
                    }),
                );
            }
        }
        Err(err) if err.is_retryable() => {
            // A transient device fault escaped the pool before any lane ran
            // (mid-launch faults are absorbed by failover, so lanes never
            // run twice). Re-queue each job with exponential backoff until
            // its budget is spent, then fail it with the typed cause.
            let err = Arc::new(err);
            for r in live {
                let attempt = r.ticket.record_attempt();
                if attempt > cfg.retry_budget {
                    shared.complete(&r.ticket, Err(JobError::Failed(Arc::clone(&err))));
                    continue;
                }
                let backoff = cfg
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(10));
                shared.metrics.job_retries.fetch_add(1, Ordering::Relaxed);
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.job_retry",
                        &[
                            ("job", r.ticket.id.0.into()),
                            ("attempt", u64::from(attempt).into()),
                            ("backoff_ms", (backoff.as_millis() as u64).into()),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
                delayed.push((r, Instant::now() + backoff));
            }
        }
        Err(err) => {
            if live.len() > 1 {
                // The merged working set didn't fit: fall back to running
                // each job alone, which halves residency per attempt.
                for r in live {
                    execute_batch(multi, shared, cfg, vec![r], delayed);
                }
            } else {
                let r = &live[0];
                shared.complete(&r.ticket, Err(JobError::from(err)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto::phantom::datasets::DatasetSpec;
    use tracto::pipeline::PipelineConfig;
    use tracto_volume::Dim3;

    fn tiny_dataset(seed: u64) -> Arc<tracto::phantom::Dataset> {
        Arc::new(
            DatasetSpec {
                name: format!("svc-{seed}"),
                dims: Dim3::new(8, 6, 6),
                spacing_mm: 2.5,
                n_dirs: 9,
                n_b0: 1,
                bval: 1000.0,
                snr: None,
                seed,
            }
            .build(),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            device: DeviceConfig {
                wavefront_size: 4,
                num_compute_units: 2,
                waves_per_cu: 2,
                ..DeviceConfig::radeon_5870()
            },
            devices: 2,
            estimate_workers: 2,
            queue_capacity: 8,
            max_batch_jobs: 4,
            batch_window: Duration::from_millis(10),
            ..ServiceConfig::default()
        }
    }

    fn fast_pipeline(seed: u64) -> PipelineConfig {
        PipelineConfig {
            seed,
            chain: tracto::mcmc::ChainConfig {
                num_burnin: 40,
                num_samples: 3,
                sample_interval: 2,
                ..tracto::mcmc::ChainConfig::fast_test()
            },
            ..PipelineConfig::fast()
        }
    }

    #[test]
    fn deadline_ordering_admits_urgent_job_first() {
        let now = Instant::now();
        let long = Some(now + Duration::from_secs(60));
        let short = Some(now + Duration::from_secs(1));
        // FIFO arrival: no-deadline, long-deadline, short-deadline.
        let mut window = [(0u32, None), (1, long), (2, short), (3, None)];
        window.sort_by(|a, b| cmp_deadlines(a.1, b.1));
        let order: Vec<u32> = window.iter().map(|(id, _)| *id).collect();
        // The short-deadline job jumps the queue; undated jobs keep FIFO
        // order behind every dated one.
        assert_eq!(order, vec![2, 1, 0, 3]);
    }

    #[test]
    fn short_deadline_job_completes_under_load() {
        let mut cfg = small_config();
        cfg.max_batch_jobs = 2;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(7);
        // Warm the cache so the batch worker sees all jobs close together.
        service
            .submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(2)))
            .wait()
            .expect("warm job");
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(2))));
        }
        let mut urgent = TrackJob::new(Arc::clone(&ds), fast_pipeline(2));
        urgent.deadline = Some(Duration::from_secs(30));
        let urgent = service.submit_track(urgent);
        urgent.wait().expect("urgent job completes");
        for t in tickets {
            t.wait().expect("background jobs complete");
        }
        service.shutdown();
    }

    #[test]
    fn estimate_then_track_hits_cache() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(1);
        let cfg = fast_pipeline(7);
        let est = service.submit_estimate(EstimateJob {
            dataset: Arc::clone(&ds),
            prior: cfg.prior,
            chain: cfg.chain,
            seed: cfg.seed,
        });
        let est = est.wait().expect("estimation succeeds");
        assert!(!est.cache_hit, "first estimation is a miss");
        assert!(est.voxels > 0);

        let track = service.submit_track(TrackJob::new(Arc::clone(&ds), cfg));
        let result = track.wait().expect("tracking succeeds");
        assert!(result.cache_hit, "warm cache skips Step 1");
        assert!(result.tracking.total_steps > 0);

        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.estimations_run, 1, "only the cold job ran MCMC");
        assert!(snap.cache.hits >= 1);
    }

    #[test]
    fn concurrent_jobs_share_batches() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(2);
        // Warm the cache so all four jobs arrive at the batch worker close
        // together.
        let warm = service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(3)));
        warm.wait().expect("warm job");
        // Same dataset + estimation config ⇒ same cache key for all four.
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(3))))
            .collect();
        for t in &tickets {
            let r = t.wait().expect("batched job succeeds");
            assert!(r.batch_jobs >= 1);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 5);
        // Four cache-warm jobs cannot need four cold MCMC runs.
        assert_eq!(snap.estimations_run, 1);
        assert!(snap.mean_batch_occupancy >= 1.0);
    }

    #[test]
    fn cancellation_before_work() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(3);
        let ticket = service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(1)));
        ticket.cancel();
        // Depending on timing the job is either cancelled or completed —
        // cancellation is advisory — but it must terminate either way.
        let result = ticket.wait();
        if let Err(e) = &result {
            assert_eq!(*e, JobError::Cancelled);
        }
        service.drain();
        let snap = service.shutdown();
        assert_eq!(snap.cancelled + snap.completed, 1);
    }

    #[test]
    fn immediate_deadline_rejected() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(4);
        let mut job = TrackJob::new(Arc::clone(&ds), fast_pipeline(1));
        job.deadline = Some(Duration::ZERO);
        let err = service
            .submit_track(job)
            .wait()
            .expect_err("deadline must fire");
        assert_eq!(err, JobError::DeadlineExceeded);
        let snap = service.shutdown();
        assert_eq!(snap.deadline_exceeded, 1);
    }

    #[test]
    fn drain_waits_for_everything() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(5);
        let tickets: Vec<_> = (0..3)
            .map(|i| service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(i))))
            .collect();
        service.drain();
        for t in tickets {
            assert!(
                t.try_result().is_some(),
                "drain returned before a job finished"
            );
        }
        assert_eq!(service.metrics().in_flight, 0);
    }

    #[test]
    fn device_loss_mid_service_jobs_still_complete() {
        let mut cfg = small_config();
        // One transient launch failure on device 0 and a permanent loss of
        // device 1: every job must still complete via retry + failover.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 launch-fail\nfault 1 0 device-lost").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(11);
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(4))))
            .collect();
        for t in tickets {
            t.wait().expect("jobs survive device loss via failover");
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.faults_injected, 2, "both plan events fired");
        assert_eq!(snap.device_retries, 1);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.devices_total, 2);
        assert_eq!(snap.devices_alive, 1);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_typed_device_error() {
        use std::error::Error;
        use tracto_trace::ErrorKind;

        let mut cfg = small_config();
        cfg.devices = 1;
        cfg.retry_budget = 1;
        cfg.retry_backoff = Duration::from_millis(1);
        // Allocation faults escape the pool (nothing to fail over to for an
        // admission-time fault), so the first run and the one retry both
        // die; the budget is then spent.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 alloc-fail\nfault 0 1 alloc-fail").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(12);
        let err = service
            .submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(5)))
            .wait()
            .expect_err("retry budget must run out");
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Device);
                assert!(cause.to_string().contains("device"));
            }
            other => panic!("expected a typed device failure, got {other}"),
        }
        assert!(err.source().is_some(), "typed cause stays chained");
        let snap = service.shutdown();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.job_retries, 1, "exactly one backoff retry ran");
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn try_submit_backpressure_shape() {
        let mut cfg = small_config();
        cfg.queue_capacity = 1;
        cfg.estimate_workers = 1;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(6);
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..16 {
            match service.try_submit_track(TrackJob::new(Arc::clone(&ds), fast_pipeline(i))) {
                Ok(t) => accepted.push(t),
                Err(JobError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!accepted.is_empty(), "some jobs must get through");
        for t in accepted {
            t.wait().expect("accepted jobs complete");
        }
        let snap = service.shutdown();
        // Every submission is accounted for: completed or rejected.
        assert_eq!(snap.completed + rejected, 16);
    }
}
