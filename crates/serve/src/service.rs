//! The job service: submission queues, estimation workers, and the
//! continuous-batching tracking worker.
//!
//! Topology:
//!
//! ```text
//! clients ──submit──▶ [bounded prep queue] ──▶ estimation workers (1 Gpu each)
//!                                                │  cache miss → run_mcmc_gpu
//!                                                │  cache hit  → Arc clone
//!                                                ▼
//!                            [bounded ready queue] ──▶ batch worker (MultiGpu)
//!                                                        collects a window of
//!                                                        ready jobs, merges
//!                                                        their lanes, runs one
//!                                                        shared segmented
//!                                                        launch sequence,
//!                                                        demuxes per job
//! ```
//!
//! Work enters through exactly one door: [`TractoService::submit`] takes a
//! [`JobSpec`] — estimation or tracking, in-process dataset or phantom
//! recipe — and returns a [`Ticket<JobOutput>`]. The legacy
//! `submit_estimate`/`submit_track` methods survive as deprecated shims
//! that convert to a `JobSpec` and call `submit`.
//!
//! Backpressure: both queues are bounded; `submit` blocks when the prep
//! queue is full, `try_submit` fails fast with [`JobError::QueueFull`].
//! Shutdown drops the submission side, lets the workers drain, and joins
//! them; `drain` blocks until no job is queued or running.

use crate::batch::{run_batch_streamed, BatchJob};
use crate::cache::{sample_key, DiskSampleCache, SampleCache, SampleKey};
use crate::config::ServiceConfig;
use crate::events::EventBus;
use crate::job::{
    EstimateJob, EstimateResult, JobError, JobId, JobOutput, Ticket, TrackJob, TrackResult,
};
use crate::journal::{JobJournal, RecoveredJob};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::spec::{materialize_dataset, DatasetSource, JobSpec, Work};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tracto::mcmc::{ChainConfig, CheckpointPolicy, CheckpointStore, SampleVolumes};
use tracto::phantom::Dataset;
use tracto::pipeline::{mean_dwi_volume, PipelineConfig};
use tracto::tracking::analytic::{analytic_params, mean_posterior};
use tracto::tracking::getter::Modality;
use tracto::tracking::probabilistic::seeds_from_mask;
use tracto::tracking::stop::mask_from_percentile;
use tracto::tracking::tensorline::TensorField;
use tracto::{run_mcmc_gpu, run_mcmc_gpu_checkpointed, PersistentCheckpoint};
use tracto_diffusion::PriorConfig;
use tracto_gpu_sim::{DeviceConfig, Gpu, MultiGpu};
use tracto_proto::{CachePolicy, JobState, Priority};
use tracto_trace::{Tracer, Value};
use tracto_volume::{Mask, Vec3};

struct PrepTask {
    spec: JobSpec,
    ticket: Ticket<JobOutput>,
}

struct ReadyTrack {
    config: PipelineConfig,
    seeds: Vec<Vec3>,
    samples: Arc<SampleVolumes>,
    /// Stop mask: explicit (in-process callers) or derived from the
    /// job's stop percentile over the dataset's mean DWI.
    stop_mask: Option<Mask>,
    cache_hit: bool,
    deadline_at: Option<Instant>,
    priority: Priority,
    retry_budget: Option<u32>,
    ticket: Ticket<JobOutput>,
}

/// Rewrite a ready job onto the analytic fast tier: collapse the posterior
/// stack to its mean, switch to voxel-length hops with the same reach, and
/// force the (deterministic) tier's jitter off. Callers guard on the
/// *previous* modality so the transform runs exactly once per job even
/// when a fault-retried job passes through admission again.
fn apply_analytic_tier(r: &mut ReadyTrack) {
    r.samples = Arc::new(mean_posterior(&r.samples));
    r.config.tracking = analytic_params(&r.config.tracking);
    r.config.modality = Modality::Analytic;
    r.config.jitter = 0.0;
}

struct Shared {
    cache: SampleCache,
    disk: Option<DiskSampleCache>,
    /// Materialized phantom recipes, keyed by canonical recipe string, so
    /// repeated remote submissions of the same recipe build once.
    phantoms: Mutex<HashMap<String, Arc<Dataset>>>,
    metrics: Metrics,
    in_flight: Mutex<u64>,
    idle: Condvar,
    next_id: AtomicU64,
    /// Write-ahead journal of wire-form job lifecycles (crash recovery).
    journal: Option<Arc<JobJournal>>,
    /// Persistent MCMC snapshot store under the state dir.
    ckpt_store: Option<Arc<CheckpointStore>>,
    /// Persist a snapshot every N launch segments (0 = off).
    checkpoint_every: u32,
    tracer: Tracer,
    /// Lifecycle event bus for v2 subscribers; publishes are no-ops until
    /// a socket front end attaches.
    bus: Arc<EventBus>,
    /// Committed volume uploads (`<state-dir>/uploads`), resolvable as
    /// `kind: "upload"` datasets.
    upload_dir: Option<std::path::PathBuf>,
}

impl Shared {
    fn job_started(&self) {
        *self.in_flight.lock() += 1;
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
    }

    fn job_finished(&self) {
        let mut n = self.in_flight.lock();
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    /// Fulfill a ticket and settle the per-outcome counters. The counters
    /// follow what the ticket actually *stored* — a cancel that won the
    /// race converts a late success into `Cancelled`, and the cancelled
    /// counter (not the completed one) must tick.
    fn complete(&self, ticket: &Ticket<JobOutput>, result: Result<JobOutput, JobError>) {
        if let Some(stored) = ticket.fulfill(result) {
            let (counter, event) = match &stored {
                Ok(_) => (&self.metrics.completed, "serve.job_completed"),
                Err(JobError::Cancelled) => (&self.metrics.cancelled, "serve.job_cancelled"),
                Err(JobError::DeadlineExceeded) => {
                    (&self.metrics.deadline_exceeded, "serve.job_deadline")
                }
                Err(_) => (&self.metrics.failed, "serve.job_failed"),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if let Some(journal) = &self.journal {
                // The terminal record is a no-op for jobs that were never
                // journaled (in-process submissions).
                match &stored {
                    Ok(_) => journal.completed(ticket.id.0),
                    Err(JobError::Cancelled) => journal.cancelled(ticket.id.0),
                    Err(_) => journal.failed(ticket.id.0, ticket.attempts()),
                }
            }
            if self.tracer.enabled() {
                match &stored {
                    Err(JobError::Failed(err)) => self.tracer.emit(
                        event,
                        &[
                            ("job", ticket.id.0.into()),
                            ("error", Value::Text(err.to_string())),
                        ],
                    ),
                    _ => self.tracer.emit(event, &[("job", ticket.id.0.into())]),
                }
            }
            // Terminal push carries the full wire state, so a subscriber
            // needs no follow-up status poll. Gated on `attached` because
            // building the state clones the result.
            if self.bus.attached() {
                self.bus.publish(
                    ticket.id.0,
                    crate::events::terminal_kind(&stored),
                    crate::events::job_state(Some(stored)),
                );
            }
        }
        self.job_finished();
    }

    /// Resolve a job's dataset: an in-process `Arc` passes through, a
    /// phantom recipe is materialized once and memoized by its canonical
    /// string, and an `upload` spec is decoded from its committed TRDS
    /// blob under the state dir (memoized the same way — the canonical
    /// key embeds the content hash).
    fn resolve_dataset(&self, source: &DatasetSource) -> Result<Arc<Dataset>, JobError> {
        match source {
            DatasetSource::Loaded(ds) => Ok(Arc::clone(ds)),
            DatasetSource::Phantom(spec) => {
                let key = spec.canonical();
                if let Some(ds) = self.phantoms.lock().get(&key) {
                    return Ok(Arc::clone(ds));
                }
                // Build outside the lock — materialization is seconds of
                // work at full scale and must not serialize other workers.
                // A racing duplicate build is wasted work, not an error;
                // first insert wins so every job shares one copy.
                let built = if spec.kind == "upload" {
                    self.load_upload(spec)
                } else {
                    materialize_dataset(spec)
                };
                let built = Arc::new(built.map_err(|e| JobError::Failed(Arc::new(e)))?);
                let mut memo = self.phantoms.lock();
                Ok(Arc::clone(memo.entry(key).or_insert(built)))
            }
        }
    }

    /// Decode an uploaded TRDS container into a runnable dataset,
    /// re-verifying the content hash so a corrupted blob fails the job
    /// rather than silently changing its results.
    fn load_upload(&self, spec: &tracto_proto::DatasetSpec) -> tracto_trace::TractoResult<Dataset> {
        use tracto_trace::TractoError;
        let hash = spec
            .upload
            .as_deref()
            .ok_or_else(|| TractoError::config("upload dataset spec is missing its hash"))?;
        let dir = self
            .upload_dir
            .as_ref()
            .ok_or_else(|| TractoError::config("uploads require --state-dir"))?;
        let path = dir.join(format!("{hash}.trds"));
        let bytes = std::fs::read(&path).map_err(|_| {
            TractoError::config(format!("unknown upload volume {hash} (upload it first)"))
        })?;
        let actual = format!("{:016x}", tracto_proto::content_digest(&bytes));
        if actual != hash {
            return Err(TractoError::format(format!(
                "upload {hash} hashes to {actual}: corrupt blob"
            )));
        }
        tracto::loaded::dataset_from_trds(format!("upload:{hash}"), &bytes)
    }

    /// Resolve a sample stack through memory cache → disk cache → fresh
    /// MCMC, honoring the job's cache policy: `Bypass` never touches
    /// either tier, `ReadOnly` reads hits but never writes fresh results
    /// back. Returns `(samples, cache_hit, voxels_estimated)`.
    #[allow(clippy::too_many_arguments)]
    fn resolve_samples(
        &self,
        gpu: &mut Gpu,
        key: SampleKey,
        dataset: &Dataset,
        prior: PriorConfig,
        chain: ChainConfig,
        seed: u64,
        policy: CachePolicy,
        job: JobId,
    ) -> (Arc<SampleVolumes>, bool, usize) {
        if policy != CachePolicy::Bypass {
            if let Some(samples) = self.cache.get(key) {
                return (samples, true, 0);
            }
            if let Some(disk) = &self.disk {
                // A poisoned entry was quarantined by `get` (deleted, with a
                // `serve.cache_quarantine` event) and reads as a miss, so the
                // job falls through to a fresh estimation.
                if let Ok(Some(samples)) = disk.get(key) {
                    let samples = Arc::new(samples);
                    if policy == CachePolicy::ReadWrite {
                        self.cache.insert(key, Arc::clone(&samples));
                    }
                    return (samples, true, 0);
                }
            }
        }
        let report = self.run_estimation(gpu, key, dataset, prior, chain, seed, job);
        self.metrics.estimations_run.fetch_add(1, Ordering::Relaxed);
        self.metrics.accum.lock().estimation_sim_s += report.ledger.total_s();
        let samples = Arc::new(report.samples);
        if policy == CachePolicy::ReadWrite {
            self.cache.insert(key, Arc::clone(&samples));
            if let Some(disk) = &self.disk {
                // Disk persistence is best-effort; the in-memory result stands.
                let _ = disk.put(key, &samples);
            }
        }
        (samples, false, report.voxels)
    }

    /// Run a fresh MCMC estimation, through the persistent-checkpoint
    /// runner when a state dir is configured: the run saves a resumable
    /// snapshot every `checkpoint_every` segments under the sample key, so
    /// a crash mid-estimation costs at most one checkpoint interval. The
    /// journal records the binding so recovery can report which snapshot a
    /// re-run resumes from.
    #[allow(clippy::too_many_arguments)]
    fn run_estimation(
        &self,
        gpu: &mut Gpu,
        key: SampleKey,
        dataset: &Dataset,
        prior: PriorConfig,
        chain: ChainConfig,
        seed: u64,
        job: JobId,
    ) -> tracto::McmcGpuReport {
        if let (Some(store), every) = (&self.ckpt_store, self.checkpoint_every) {
            if every > 0 {
                let key_hex = key.hex();
                if let Some(journal) = &self.journal {
                    journal.checkpointed(job.0, &key_hex);
                }
                self.bus.publish(job.0, "checkpointed", JobState::Pending);
                let persist = PersistentCheckpoint {
                    store: store.as_ref(),
                    key: key_hex,
                    tracer: self.tracer.clone(),
                };
                match run_mcmc_gpu_checkpointed(
                    gpu,
                    &dataset.acq,
                    &dataset.dwi,
                    &dataset.wm_mask,
                    prior,
                    chain,
                    seed,
                    CheckpointPolicy::every(every),
                    &persist,
                ) {
                    Ok(report) => return report,
                    Err(err) => {
                        // Snapshot-store I/O trouble must not kill the job:
                        // fall back to a plain (non-resumable) run.
                        if self.tracer.enabled() {
                            self.tracer.emit(
                                "serve.ckpt_error",
                                &[
                                    ("job", job.0.into()),
                                    ("error", Value::Text(err.to_string())),
                                ],
                            );
                        }
                    }
                }
            }
        }
        run_mcmc_gpu(
            gpu,
            &dataset.acq,
            &dataset.dwi,
            &dataset.wm_mask,
            prior,
            chain,
            seed,
        )
    }
}

/// The running service. Dropping it without calling
/// [`shutdown`](Self::shutdown) aborts queued jobs with
/// [`JobError::ShuttingDown`] and joins the workers.
pub struct TractoService {
    config: ServiceConfig,
    shared: Arc<Shared>,
    prep_tx: Option<Sender<PrepTask>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Unfinished journaled jobs found at startup, waiting for
    /// [`recover`](Self::recover) to re-enqueue them.
    recovered: Mutex<Vec<RecoveredJob>>,
}

impl TractoService {
    /// Bring up the worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(
            config.estimate_workers >= 1,
            "need at least one estimation worker"
        );
        assert!(config.max_batch_jobs >= 1, "need a positive batch bound");
        let disk = config.disk_cache.as_ref().map(|dir| {
            let mut cache = DiskSampleCache::open(dir)
                .expect("open disk cache")
                .with_tracer(config.tracer.clone());
            if let Some(cap) = config.disk_cache_bytes {
                cache = cache.with_limit(cap);
            }
            cache
        });
        let mut recovered = Vec::new();
        let mut max_seen_id = 0;
        let (journal, ckpt_store) = match &config.state_dir {
            Some(dir) => {
                let (journal, recovery) = JobJournal::open(dir, config.tracer.clone())
                    .expect("open job journal in state dir");
                let store = CheckpointStore::open(&dir.join("checkpoints"))
                    .expect("open checkpoint store in state dir");
                recovered = recovery.jobs;
                max_seen_id = recovery.max_seen_id;
                let journal = Arc::new(journal);
                // Fleet replication: tee every subsequent journal append to
                // a detached replicator thread, seeded with the compacted
                // on-disk snapshot. Wired before any submission is possible,
                // so no record can slip between snapshot and mirror. The
                // thread is not joined: it exits when the journal (holding
                // the channel sender) drops, which happens after
                // `shutdown_inner` joins the workers — joining it here
                // would deadlock.
                if let (Some(target), Some(member)) = (&config.replicate_to, &config.member) {
                    let (tx, rx) = crossbeam::channel::unbounded();
                    let snapshot: Vec<String> = journal
                        .snapshot_text()
                        .lines()
                        .map(|l| l.to_string())
                        .collect();
                    journal.set_mirror(tx);
                    crate::fleet::spawn_replicator(
                        member.clone(),
                        target.clone(),
                        snapshot,
                        rx,
                        config.tracer.clone(),
                    );
                }
                (Some(journal), Some(Arc::new(store)))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            cache: SampleCache::new(config.cache_bytes).with_tracer(config.tracer.clone()),
            disk,
            phantoms: Mutex::new(HashMap::new()),
            metrics: Metrics::default(),
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            // Fresh ids allocate strictly above every id the journal has
            // ever issued, so recovered and new jobs never collide.
            next_id: AtomicU64::new(max_seen_id + 1),
            journal,
            ckpt_store,
            checkpoint_every: config.checkpoint_every,
            tracer: config.tracer.clone(),
            bus: Arc::new(EventBus::new()),
            upload_dir: config.state_dir.as_ref().map(|d| d.join("uploads")),
        });

        let (prep_tx, prep_rx) = bounded::<PrepTask>(config.queue_capacity);
        let (ready_tx, ready_rx) = bounded::<ReadyTrack>(config.queue_capacity);

        let mut workers = Vec::new();
        for i in 0..config.estimate_workers {
            let rx = prep_rx.clone();
            let tx = ready_tx.clone();
            let shared = Arc::clone(&shared);
            let device = config.device.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tracto-estimate-{i}"))
                    .spawn(move || estimate_worker(i, rx, tx, shared, device))
                    .expect("spawn estimation worker"),
            );
        }
        // The clones above keep the channel alive; drop the originals so
        // the pipeline collapses cleanly once the senders go away.
        drop(prep_rx);
        drop(ready_tx);

        {
            let shared = Arc::clone(&shared);
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("tracto-batch".into())
                    .spawn(move || batch_worker(ready_rx, shared, cfg))
                    .expect("spawn batch worker"),
            );
        }

        TractoService {
            config,
            shared,
            prep_tx: Some(prep_tx),
            workers,
            recovered: Mutex::new(recovered),
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The lifecycle event bus (attached by the socket front end).
    pub(crate) fn event_bus(&self) -> Arc<EventBus> {
        Arc::clone(&self.shared.bus)
    }

    fn next_id(&self) -> JobId {
        JobId(self.shared.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn trace_submit(&self, id: JobId, kind: &'static str) {
        if self.shared.tracer.enabled() {
            self.shared.tracer.emit(
                "serve.job_submitted",
                &[("job", id.0.into()), ("kind", kind.into())],
            );
        }
    }

    /// Submit any job, blocking while the queue is full. This is the one
    /// submission door: estimation and tracking, in-process datasets and
    /// phantom recipes, all enter as a [`JobSpec`].
    pub fn submit(&self, spec: impl Into<JobSpec>) -> Ticket<JobOutput> {
        let spec = spec.into();
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, work_kind(&spec.work));
        // Write-ahead: a wire-form job is durable before acceptance becomes
        // observable, so a crash after this point cannot lose it.
        if let (Some(journal), Some(wire)) = (&self.shared.journal, &spec.wire) {
            journal.submitted(ticket.id.0, wire);
        }
        self.shared.job_started();
        let task = PrepTask {
            spec,
            ticket: ticket.clone(),
        };
        let sent = match &self.prep_tx {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        };
        if sent {
            if let Some(journal) = &self.shared.journal {
                journal.admitted(ticket.id.0);
            }
            self.shared
                .bus
                .publish(ticket.id.0, "admitted", JobState::Pending);
        } else {
            self.shared.complete(&ticket, Err(JobError::ShuttingDown));
        }
        ticket
    }

    /// Submit any job without blocking; fails with
    /// [`JobError::QueueFull`] when the bounded queue is at capacity.
    pub fn try_submit(&self, spec: impl Into<JobSpec>) -> Result<Ticket<JobOutput>, JobError> {
        let spec = spec.into();
        let Some(tx) = &self.prep_tx else {
            return Err(JobError::ShuttingDown);
        };
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, work_kind(&spec.work));
        if let (Some(journal), Some(wire)) = (&self.shared.journal, &spec.wire) {
            journal.submitted(ticket.id.0, wire);
        }
        self.shared.job_started();
        match tx.try_send(PrepTask {
            spec,
            ticket: ticket.clone(),
        }) {
            Ok(()) => {
                if let Some(journal) = &self.shared.journal {
                    journal.admitted(ticket.id.0);
                }
                self.shared
                    .bus
                    .publish(ticket.id.0, "admitted", JobState::Pending);
                Ok(ticket)
            }
            Err(TrySendError::Full(_)) => {
                if let Some(journal) = &self.shared.journal {
                    journal.failed(ticket.id.0, 0);
                }
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.shared.job_finished();
                Err(JobError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                if let Some(journal) = &self.shared.journal {
                    journal.failed(ticket.id.0, 0);
                }
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.shared.job_finished();
                Err(JobError::ShuttingDown)
            }
        }
    }

    /// Re-enqueue every unfinished journaled job found in the state dir at
    /// startup, preserving original job ids — clients that were polling a
    /// job id across the crash keep a valid handle. Returns `(id, ticket)`
    /// pairs so a front end can rebind them (see
    /// [`SocketServer::adopt_jobs`](crate::SocketServer::adopt_jobs)).
    ///
    /// A recovered estimation resumes from its latest persistent
    /// checkpoint automatically: it recomputes the same sample key and the
    /// checkpointed runner finds the snapshot, so at most one checkpoint
    /// interval of MCMC work is repeated.
    pub fn recover(&self) -> Vec<(u64, Ticket<JobOutput>)> {
        let jobs = std::mem::take(&mut *self.recovered.lock());
        let mut out = Vec::with_capacity(jobs.len());
        for r in jobs {
            let ticket = Ticket::new(JobId(r.id));
            if self.shared.tracer.enabled() {
                self.shared.tracer.emit(
                    "serve.job_recovered",
                    &[
                        ("job", r.id.into()),
                        (
                            "checkpoint",
                            Value::Text(r.checkpoint.clone().unwrap_or_default()),
                        ),
                    ],
                );
            }
            self.shared.job_started();
            match JobSpec::from_wire(&r.spec) {
                Ok(spec) => {
                    let task = PrepTask {
                        spec,
                        ticket: ticket.clone(),
                    };
                    let sent = match &self.prep_tx {
                        Some(tx) => tx.send(task).is_ok(),
                        None => false,
                    };
                    if sent {
                        if let Some(journal) = &self.shared.journal {
                            journal.admitted(r.id);
                        }
                        self.shared.bus.publish(r.id, "admitted", JobState::Pending);
                    } else {
                        self.shared.complete(&ticket, Err(JobError::ShuttingDown));
                    }
                }
                Err(err) => {
                    // A journaled spec that no longer converts (protocol
                    // drift across the restart) fails terminally — and
                    // observably — rather than vanishing.
                    self.shared
                        .complete(&ticket, Err(JobError::Failed(Arc::new(err))));
                }
            }
            out.push((r.id, ticket));
        }
        out
    }

    /// Submit an estimation job.
    #[deprecated(note = "use `submit(JobSpec)`; wait with `wait_estimate()`")]
    pub fn submit_estimate(&self, job: EstimateJob) -> Ticket<JobOutput> {
        self.submit(JobSpec::from(job))
    }

    /// Submit a tracking job.
    #[deprecated(note = "use `submit(JobSpec)`; wait with `wait_track()`")]
    pub fn submit_track(&self, job: TrackJob) -> Ticket<JobOutput> {
        self.submit(JobSpec::from(job))
    }

    /// Submit a tracking job without blocking.
    #[deprecated(note = "use `try_submit(JobSpec)`; wait with `wait_track()`")]
    pub fn try_submit_track(&self, job: TrackJob) -> Result<Ticket<JobOutput>, JobError> {
        self.try_submit(JobSpec::from(job))
    }

    /// Block until every accepted job has completed (successfully or not).
    pub fn drain(&self) {
        let mut n = self.shared.in_flight.lock();
        while *n > 0 {
            self.shared.idle.wait(&mut n);
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let in_flight = *self.shared.in_flight.lock();
        self.shared
            .metrics
            .snapshot(in_flight, self.shared.cache.stats())
    }

    /// Stop accepting jobs, drain the queues, and join the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        self.prep_tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TractoService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn work_kind(work: &Work) -> &'static str {
    match work {
        Work::Estimate { .. } => "estimate",
        Work::Track { .. } => "track",
    }
}

fn estimate_worker(
    index: usize,
    rx: Receiver<PrepTask>,
    tx: Sender<ReadyTrack>,
    shared: Arc<Shared>,
    device: DeviceConfig,
) {
    let mut gpu = Gpu::new(device);
    gpu.set_tracer(shared.tracer.clone(), index as u32);
    while let Ok(PrepTask { spec, ticket }) = rx.recv() {
        if ticket.is_cancelled() {
            shared.complete(&ticket, Err(JobError::Cancelled));
            continue;
        }
        let deadline_at = spec.deadline.map(|d| ticket.accepted_at + d);
        if deadline_at.is_some_and(|t| Instant::now() >= t) {
            shared.complete(&ticket, Err(JobError::DeadlineExceeded));
            continue;
        }
        let dataset = match shared.resolve_dataset(&spec.dataset) {
            Ok(ds) => ds,
            Err(err) => {
                shared.complete(&ticket, Err(err));
                continue;
            }
        };
        match spec.work {
            Work::Estimate { prior, chain, seed } => {
                let key = sample_key(&dataset, &prior, &chain, seed);
                let (samples, cache_hit, voxels) = shared.resolve_samples(
                    &mut gpu, key, &dataset, prior, chain, seed, spec.cache, ticket.id,
                );
                shared.complete(
                    &ticket,
                    Ok(JobOutput::Estimate(EstimateResult {
                        samples,
                        cache_hit,
                        voxels,
                    })),
                );
            }
            Work::Track {
                config,
                seeds,
                stop_mask,
            } => {
                let seeds = seeds.unwrap_or_else(|| seeds_from_mask(&dataset.truth.fiber_mask()));
                // Derive the stop mask here, where the dataset is
                // materialized: remote jobs carry only the percentile.
                let stop_mask = stop_mask.or_else(|| {
                    config
                        .stop_percentile
                        .and_then(|pct| mask_from_percentile(&mean_dwi_volume(&dataset.dwi), pct))
                });
                let (samples, cache_hit) = if config.modality == Modality::Tensorline {
                    // The tensorline tier skips MCMC entirely: Step 1 is
                    // the closed-form tensor fit. It must bypass the
                    // sample cache — a fit stored under the dataset+chain
                    // key would poison later MCMC jobs (and vice versa).
                    (
                        Arc::new(TensorField::fit(&dataset.acq, &dataset.dwi).to_sample_volumes()),
                        false,
                    )
                } else {
                    let key = sample_key(&dataset, &config.prior, &config.chain, config.seed);
                    let (samples, cache_hit, _) = shared.resolve_samples(
                        &mut gpu,
                        key,
                        &dataset,
                        config.prior,
                        config.chain,
                        config.seed,
                        spec.cache,
                        ticket.id,
                    );
                    (samples, cache_hit)
                };
                let mut ready = ReadyTrack {
                    config,
                    seeds,
                    samples,
                    stop_mask,
                    cache_hit,
                    deadline_at,
                    priority: spec.priority,
                    retry_budget: spec.retry_budget,
                    ticket,
                };
                match ready.config.modality {
                    Modality::Analytic => apply_analytic_tier(&mut ready),
                    // Deterministic tiers never jitter their seeds.
                    Modality::Tensorline => ready.config.jitter = 0.0,
                    Modality::Mcmc => {}
                }
                if let Err(send_err) = tx.send(ready) {
                    let ReadyTrack { ticket, .. } = send_err.0;
                    shared.complete(&ticket, Err(JobError::ShuttingDown));
                }
            }
        }
    }
}

/// Admission order for the batch worker's pending window: higher-priority
/// jobs first; within a priority band, jobs with the nearest deadlines go
/// first and jobs without a deadline keep their FIFO order behind every
/// dated job (the sort is stable).
fn cmp_admission(a: &ReadyTrack, b: &ReadyTrack) -> std::cmp::Ordering {
    b.priority
        .cmp(&a.priority)
        .then_with(|| cmp_deadlines(a.deadline_at, b.deadline_at))
}

fn cmp_deadlines(a: Option<Instant>, b: Option<Instant>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Less,
        (None, Some(_)) => Greater,
        (None, None) => Equal,
    }
}

/// Pull up to `max_jobs` jobs out of `pending` in admission order.
fn admit_batch(pending: &mut Vec<ReadyTrack>, max_jobs: usize) -> Vec<ReadyTrack> {
    pending.sort_by(cmp_admission);
    let take = max_jobs.min(pending.len());
    pending.drain(..take).collect()
}

/// Device-pool counter values already copied into the service metrics; the
/// pool's counters are cumulative, so the worker settles deltas after each
/// batch.
#[derive(Default)]
struct FaultCounters {
    faults: u64,
    retries: u64,
    failovers: u64,
}

fn settle_fault_metrics(multi: &MultiGpu, shared: &Shared, last: &mut FaultCounters) {
    let faults = multi.faults_injected();
    let retries = multi.fault_retries();
    let failovers = multi.failovers();
    shared
        .metrics
        .faults_injected
        .fetch_add(faults - last.faults, Ordering::Relaxed);
    shared
        .metrics
        .device_retries
        .fetch_add(retries - last.retries, Ordering::Relaxed);
    shared
        .metrics
        .failovers
        .fetch_add(failovers - last.failovers, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(multi.alive_devices() as u64, Ordering::Relaxed);
    *last = FaultCounters {
        faults,
        retries,
        failovers,
    };
}

fn batch_worker(rx: Receiver<ReadyTrack>, shared: Arc<Shared>, cfg: ServiceConfig) {
    let mut multi = MultiGpu::new(cfg.device.clone(), cfg.devices);
    multi.set_tracer(&shared.tracer);
    if let Some(plan) = &cfg.fault_plan {
        multi.set_fault_plan(plan);
    }
    let total_devices = multi.num_devices();
    shared
        .metrics
        .devices_total
        .store(total_devices as u64, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(total_devices as u64, Ordering::Relaxed);
    let mut pending: Vec<ReadyTrack> = Vec::new();
    // Jobs re-queued after a device fault, held until their backoff expires.
    let mut delayed: Vec<(ReadyTrack, Instant)> = Vec::new();
    let mut counters = FaultCounters::default();
    let mut prev_alive = multi.alive_devices();
    let mut channel_open = true;
    loop {
        // Promote retries whose backoff has expired.
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].1 <= now {
                pending.push(delayed.swap_remove(i).0);
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            if !channel_open {
                if delayed.is_empty() {
                    break;
                }
                // Shutdown with retries still cooling down: run them now
                // rather than abandoning them mid-backoff.
                pending.extend(delayed.drain(..).map(|(r, _)| r));
            } else if let Some(due) = delayed.iter().map(|&(_, at)| at).min() {
                // Idle but with retries pending: sleep on the channel only
                // until the earliest backoff expires.
                match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                    Ok(t) => pending.push(t),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => channel_open = false,
                }
                continue;
            } else {
                match rx.recv() {
                    Ok(t) => pending.push(t),
                    Err(_) => channel_open = false,
                }
                continue;
            }
        }
        // Continuous batching: hold the window open briefly to merge work
        // from other clients into this launch sequence. A backlog wider
        // than one batch skips the wait and drains immediately. A degraded
        // pool shrinks the window proportionally — fewer devices means
        // piling up a full-width batch only adds queueing delay.
        let alive = multi.alive_devices().max(1);
        let window = cfg
            .batch_window
            .mul_f64(alive as f64 / total_devices.max(1) as f64);
        let window_end = Instant::now() + window;
        while channel_open && pending.len() < cfg.max_batch_jobs {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(t) => pending.push(t),
                Err(RecvTimeoutError::Timeout) => break,
                // The held jobs still run; the next iteration observes the
                // closed channel.
                Err(RecvTimeoutError::Disconnected) => {
                    channel_open = false;
                    break;
                }
            }
        }

        let admitted = admit_batch(&mut pending, cfg.max_batch_jobs);
        let mut live = Vec::with_capacity(admitted.len());
        for mut r in admitted {
            if r.ticket.is_cancelled() {
                shared.complete(&r.ticket, Err(JobError::Cancelled));
            } else if r.deadline_at.is_some_and(|t| Instant::now() >= t) {
                shared.complete(&r.ticket, Err(JobError::DeadlineExceeded));
            } else {
                // Opt-in approximate tier: demote low-priority MCMC jobs
                // to the analytic getter at admission. The modality guard
                // keeps fault-retried jobs from being transformed twice.
                if cfg.approx_low
                    && r.priority == Priority::Low
                    && r.config.modality == Modality::Mcmc
                {
                    apply_analytic_tier(&mut r);
                    if shared.tracer.enabled() {
                        shared.tracer.emit(
                            "serve.job_demoted",
                            &[
                                ("job", r.ticket.id.0.into()),
                                ("modality", Value::Text("analytic".into())),
                            ],
                        );
                    }
                }
                live.push(r);
            }
        }
        if !live.is_empty() {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_formed",
                    &[("jobs", live.len().into()), ("held", pending.len().into())],
                );
            }
            execute_batch(&mut multi, &shared, &cfg, live, &mut delayed);
            settle_fault_metrics(&multi, &shared, &mut counters);
            let alive_now = multi.alive_devices();
            if alive_now < prev_alive {
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.pool_degraded",
                        &[
                            ("alive", (alive_now as u64).into()),
                            ("total", (total_devices as u64).into()),
                        ],
                    );
                }
                prev_alive = alive_now;
            }
        }
    }
    // Complete anything still buffered after the senders vanished (pending
    // and delayed are empty here — the loop drains both before exiting).
    for r in pending {
        shared.complete(&r.ticket, Err(JobError::ShuttingDown));
    }
    while let Ok(r) = rx.try_recv() {
        shared.complete(&r.ticket, Err(JobError::ShuttingDown));
    }
}

fn execute_batch(
    multi: &mut MultiGpu,
    shared: &Shared,
    cfg: &ServiceConfig,
    live: Vec<ReadyTrack>,
    delayed: &mut Vec<(ReadyTrack, Instant)>,
) {
    let jobs: Vec<BatchJob> = live
        .iter()
        .map(|r| BatchJob {
            samples: Arc::clone(&r.samples),
            params: r.config.tracking,
            seeds: r.seeds.clone(),
            mask: r.stop_mask.clone(),
            jitter: r.config.jitter,
            run_seed: r.config.seed,
            record_visits: r.config.record_connectivity,
        })
        .collect();

    match run_batch_streamed(multi, &jobs, &cfg.strategy, cfg.streams) {
        Ok(report) => {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_done",
                    &[
                        ("jobs", live.len().into()),
                        ("lanes", report.lanes.into()),
                        ("launches", report.launches.into()),
                        ("utilization", report.utilization.into()),
                        ("streams", report.streams.into()),
                        ("overlap_saved_s", report.overlap_saved_s.into()),
                    ],
                );
            }
            shared.metrics.add_batch(crate::metrics::BatchSample {
                jobs: live.len() as u64,
                lanes: report.lanes as u64,
                launches: report.launches,
                wall_s: report.wall_s,
                serial_s: report.serial_s,
                overlap_saved_s: report.overlap_saved_s,
                utilization: report.utilization,
            });
            let batch_jobs = live.len();
            for (r, out) in live.into_iter().zip(report.per_job) {
                shared.complete(
                    &r.ticket,
                    Ok(JobOutput::Track(TrackResult {
                        tracking: out,
                        cache_hit: r.cache_hit,
                        batch_jobs,
                        batch_lanes: report.lanes,
                    })),
                );
            }
        }
        Err(err) if err.is_retryable() => {
            // A transient device fault escaped the pool before any lane ran
            // (mid-launch faults are absorbed by failover, so lanes never
            // run twice). Re-queue each job with exponential backoff until
            // its budget is spent, then fail it with the typed cause.
            let err = Arc::new(err);
            for r in live {
                let attempt = r.ticket.record_attempt();
                let budget = r.retry_budget.unwrap_or(cfg.retry_budget);
                if attempt > budget {
                    shared.complete(&r.ticket, Err(JobError::Failed(Arc::clone(&err))));
                    continue;
                }
                let backoff = cfg
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(10));
                shared.metrics.job_retries.fetch_add(1, Ordering::Relaxed);
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.job_retry",
                        &[
                            ("job", r.ticket.id.0.into()),
                            ("attempt", u64::from(attempt).into()),
                            ("backoff_ms", (backoff.as_millis() as u64).into()),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
                delayed.push((r, Instant::now() + backoff));
            }
        }
        Err(err) => {
            if live.len() > 1 {
                // The merged working set didn't fit: fall back to running
                // each job alone, which halves residency per attempt.
                for r in live {
                    execute_batch(multi, shared, cfg, vec![r], delayed);
                }
            } else {
                let r = &live[0];
                shared.complete(&r.ticket, Err(JobError::from(err)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tracto::phantom::datasets::DatasetSpec;
    use tracto_gpu_sim::FaultPlan;

    fn tiny_dataset(seed: u64) -> Arc<tracto::phantom::Dataset> {
        Arc::new(
            DatasetSpec {
                name: format!("svc-{seed}"),
                dims: tracto_volume::Dim3::new(8, 6, 6),
                spacing_mm: 2.5,
                n_dirs: 9,
                n_b0: 1,
                bval: 1000.0,
                snr: None,
                seed,
            }
            .build(),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            device: DeviceConfig {
                wavefront_size: 4,
                num_compute_units: 2,
                waves_per_cu: 2,
                ..DeviceConfig::radeon_5870()
            },
            devices: 2,
            estimate_workers: 2,
            queue_capacity: 8,
            max_batch_jobs: 4,
            batch_window: Duration::from_millis(10),
            ..ServiceConfig::default()
        }
    }

    fn fast_pipeline(seed: u64) -> PipelineConfig {
        PipelineConfig {
            seed,
            chain: tracto::mcmc::ChainConfig {
                num_burnin: 40,
                num_samples: 3,
                sample_interval: 2,
                ..tracto::mcmc::ChainConfig::fast_test()
            },
            ..PipelineConfig::fast()
        }
    }

    fn ready(priority: Priority, deadline_at: Option<Instant>) -> ReadyTrack {
        ReadyTrack {
            config: fast_pipeline(0),
            seeds: Vec::new(),
            samples: Arc::new(SampleVolumes::zeros(tracto_volume::Dim3::new(1, 1, 1), 1)),
            stop_mask: None,
            cache_hit: false,
            deadline_at,
            priority,
            retry_budget: None,
            ticket: Ticket::new(JobId(0)),
        }
    }

    #[test]
    fn admission_orders_priority_then_deadline() {
        let now = Instant::now();
        let long = Some(now + Duration::from_secs(60));
        let short = Some(now + Duration::from_secs(1));
        // FIFO arrival: normal/no-deadline, normal/long, normal/short,
        // low/short, high/no-deadline.
        let mut window = [
            (0u32, ready(Priority::Normal, None)),
            (1, ready(Priority::Normal, long)),
            (2, ready(Priority::Normal, short)),
            (3, ready(Priority::Low, short)),
            (4, ready(Priority::High, None)),
        ];
        window.sort_by(|a, b| cmp_admission(&a.1, &b.1));
        let order: Vec<u32> = window.iter().map(|(id, _)| *id).collect();
        // High priority beats any deadline in a lower band; within the
        // normal band the short-deadline job jumps the queue and undated
        // jobs keep FIFO order behind every dated one.
        assert_eq!(order, vec![4, 2, 1, 0, 3]);
    }

    #[test]
    fn short_deadline_job_completes_under_load() {
        let mut cfg = small_config();
        cfg.max_batch_jobs = 2;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(7);
        // Warm the cache so the batch worker sees all jobs close together.
        service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(2)))
            .wait_track()
            .expect("warm job");
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(2))));
        }
        let urgent = service.submit(
            JobSpec::track(Arc::clone(&ds), fast_pipeline(2))
                .with_priority(Priority::High)
                .with_deadline(Duration::from_secs(30)),
        );
        urgent.wait_track().expect("urgent job completes");
        for t in tickets {
            t.wait_track().expect("background jobs complete");
        }
        service.shutdown();
    }

    #[test]
    fn estimate_then_track_hits_cache() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(1);
        let cfg = fast_pipeline(7);
        let est = service.submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed));
        let est = est.wait_estimate().expect("estimation succeeds");
        assert!(!est.cache_hit, "first estimation is a miss");
        assert!(est.voxels > 0);

        let track = service.submit(JobSpec::track(Arc::clone(&ds), cfg));
        let result = track.wait_track().expect("tracking succeeds");
        assert!(result.cache_hit, "warm cache skips Step 1");
        assert!(result.tracking.total_steps > 0);

        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.estimations_run, 1, "only the cold job ran MCMC");
        assert!(snap.cache.hits >= 1);
    }

    #[test]
    fn cache_bypass_always_recomputes() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(9);
        let cfg = fast_pipeline(5);
        // Two bypass jobs: neither reads nor warms the cache.
        for _ in 0..2 {
            service
                .submit(
                    JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed)
                        .with_cache(CachePolicy::Bypass),
                )
                .wait_estimate()
                .expect("bypass estimation succeeds");
        }
        // A read-only job misses (nothing was written) and writes nothing.
        let ro = service
            .submit(
                JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed)
                    .with_cache(CachePolicy::ReadOnly),
            )
            .wait_estimate()
            .expect("read-only estimation succeeds");
        assert!(!ro.cache_hit, "bypass jobs must not have warmed the cache");
        // A read-write job still misses, then warms the cache for the last.
        let rw = service
            .submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed))
            .wait_estimate()
            .expect("read-write estimation succeeds");
        assert!(!rw.cache_hit, "read-only jobs must not have written");
        let warm = service
            .submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed))
            .wait_estimate()
            .expect("warm estimation succeeds");
        assert!(warm.cache_hit, "read-write job warmed the cache");
        let snap = service.shutdown();
        assert_eq!(snap.estimations_run, 4, "only the warm job skipped MCMC");
    }

    #[test]
    fn phantom_datasets_materialize_once() {
        let service = TractoService::start(small_config());
        let recipe = tracto_proto::DatasetSpec {
            kind: "single".into(),
            scale: 0.05,
            seed: 3,
            snr: None,
            upload: None,
        };
        // Warm first so the two remaining jobs deterministically hit the
        // cache instead of racing both estimate workers on a cold key.
        service
            .submit(JobSpec::track(recipe.clone(), fast_pipeline(6)))
            .wait_track()
            .expect("warm phantom job");
        let tickets: Vec<_> = (0..2)
            .map(|_| service.submit(JobSpec::track(recipe.clone(), fast_pipeline(6))))
            .collect();
        for t in tickets {
            t.wait_track().expect("phantom jobs complete");
        }
        assert_eq!(service.shared.phantoms.lock().len(), 1, "one build, shared");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.estimations_run, 1, "identical recipes share the cache");
    }

    #[test]
    fn bad_phantom_recipe_fails_typed() {
        use tracto_trace::ErrorKind;
        let service = TractoService::start(small_config());
        let recipe = tracto_proto::DatasetSpec::new("klein-bottle");
        let err = service
            .submit(JobSpec::track(recipe, fast_pipeline(1)))
            .wait()
            .expect_err("unknown recipe must fail");
        match err {
            JobError::Failed(cause) => assert_eq!(cause.kind(), ErrorKind::Config),
            other => panic!("expected a typed config failure, got {other}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.failed, 1);
    }

    #[test]
    fn concurrent_jobs_share_batches() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(2);
        // Warm the cache so all four jobs arrive at the batch worker close
        // together.
        let warm = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(3)));
        warm.wait_track().expect("warm job");
        // Same dataset + estimation config ⇒ same cache key for all four.
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(3))))
            .collect();
        for t in &tickets {
            let r = t.wait_track().expect("batched job succeeds");
            assert!(r.batch_jobs >= 1);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 5);
        // Four cache-warm jobs cannot need four cold MCMC runs.
        assert_eq!(snap.estimations_run, 1);
        assert!(snap.mean_batch_occupancy >= 1.0);
    }

    #[test]
    fn cancellation_before_work() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(3);
        let ticket = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(1)));
        ticket.cancel();
        // Depending on timing the job is either cancelled or completed —
        // cancellation is advisory — but it must terminate either way.
        let result = ticket.wait();
        if let Err(e) = &result {
            assert_eq!(*e, JobError::Cancelled);
        }
        service.drain();
        let snap = service.shutdown();
        assert_eq!(snap.cancelled + snap.completed, 1);
    }

    #[test]
    fn winning_cancel_counts_as_cancelled_even_if_work_finished() {
        // The cancel/fulfill race, driven to both outcomes: whatever the
        // ticket reports, the metrics must agree with it.
        for seed in 0..6 {
            let service = TractoService::start(small_config());
            let ds = tiny_dataset(20 + seed);
            let ticket = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(seed)));
            let won = ticket.cancel();
            let result = ticket.wait();
            let snap = service.shutdown();
            match result {
                Err(JobError::Cancelled) => {
                    assert_eq!(snap.cancelled, 1, "ticket said cancelled; metrics must too");
                    assert_eq!(snap.completed, 0);
                }
                Ok(_) => {
                    assert!(!won, "a winning cancel can never observe success");
                    assert_eq!(snap.completed, 1);
                    assert_eq!(snap.cancelled, 0);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn immediate_deadline_rejected() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(4);
        let job = JobSpec::track(Arc::clone(&ds), fast_pipeline(1)).with_deadline(Duration::ZERO);
        let err = service.submit(job).wait().expect_err("deadline must fire");
        assert_eq!(err, JobError::DeadlineExceeded);
        let snap = service.shutdown();
        assert_eq!(snap.deadline_exceeded, 1);
    }

    #[test]
    fn drain_waits_for_everything() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(5);
        let tickets: Vec<_> = (0..3)
            .map(|i| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(i))))
            .collect();
        service.drain();
        for t in tickets {
            assert!(
                t.try_result().is_some(),
                "drain returned before a job finished"
            );
        }
        assert_eq!(service.metrics().in_flight, 0);
    }

    #[test]
    fn device_loss_mid_service_jobs_still_complete() {
        let mut cfg = small_config();
        // One transient launch failure on device 0 and a permanent loss of
        // device 1: every job must still complete via retry + failover.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 launch-fail\nfault 1 0 device-lost").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(11);
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(4))))
            .collect();
        for t in tickets {
            t.wait_track()
                .expect("jobs survive device loss via failover");
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.faults_injected, 2, "both plan events fired");
        assert_eq!(snap.device_retries, 1);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.devices_total, 2);
        assert_eq!(snap.devices_alive, 1);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_typed_device_error() {
        use std::error::Error;
        use tracto_trace::ErrorKind;

        let mut cfg = small_config();
        cfg.devices = 1;
        cfg.retry_budget = 1;
        cfg.retry_backoff = Duration::from_millis(1);
        // Allocation faults escape the pool (nothing to fail over to for an
        // admission-time fault), so the first run and the one retry both
        // die; the budget is then spent.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 alloc-fail\nfault 0 1 alloc-fail").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(12);
        let err = service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(5)))
            .wait()
            .expect_err("retry budget must run out");
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Device);
                assert!(cause.to_string().contains("device"));
            }
            other => panic!("expected a typed device failure, got {other}"),
        }
        assert!(err.source().is_some(), "typed cause stays chained");
        let snap = service.shutdown();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.job_retries, 1, "exactly one backoff retry ran");
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn per_job_retry_budget_overrides_service_budget() {
        use tracto_trace::ErrorKind;

        let mut cfg = small_config();
        cfg.devices = 1;
        cfg.retry_budget = 5; // generous service-wide budget…
        cfg.retry_backoff = Duration::from_millis(1);
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 alloc-fail\nfault 0 1 alloc-fail").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(13);
        // …but this job opts out of retries entirely: the first fault kills it.
        let err = service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(5)).with_retry_budget(0))
            .wait()
            .expect_err("zero per-job budget fails on the first fault");
        match &err {
            JobError::Failed(cause) => assert_eq!(cause.kind(), ErrorKind::Device),
            other => panic!("expected a typed device failure, got {other}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.job_retries, 0, "no retries despite the service budget");
        assert_eq!(snap.faults_injected, 1, "second fault event never fired");
    }

    #[test]
    fn try_submit_backpressure_shape() {
        let mut cfg = small_config();
        cfg.queue_capacity = 1;
        cfg.estimate_workers = 1;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(6);
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..16 {
            match service.try_submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(i))) {
                Ok(t) => accepted.push(t),
                Err(JobError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!accepted.is_empty(), "some jobs must get through");
        for t in accepted {
            t.wait_track().expect("accepted jobs complete");
        }
        let snap = service.shutdown();
        // Every submission is accounted for: completed or rejected.
        assert_eq!(snap.completed + rejected, 16);
    }

    fn tmp_state_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tracto-svc-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wire_track(seed: u64) -> tracto_proto::JobSpec {
        let mut wire = tracto_proto::JobSpec::track(tracto_proto::DatasetSpec {
            kind: "single".into(),
            scale: 0.05,
            seed: 3,
            snr: None,
            upload: None,
        });
        wire.chain = tracto_proto::ChainSpec {
            burnin: 40,
            samples: 3,
            interval: 2,
        };
        wire.seed = seed;
        wire
    }

    #[test]
    fn journaled_wire_jobs_recover_and_complete_after_crash() {
        use crate::journal::JobJournal;
        let dir = tmp_state_dir("recover");
        let wire = wire_track(4);
        // Session 1: accept the job durably, then "crash" before running it
        // (drop with no terminal record).
        {
            let (journal, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            assert!(recovery.jobs.is_empty());
            journal.submitted(5, &wire);
            journal.admitted(5);
        }
        // Session 2: the restarted service replays the journal and re-runs
        // the job under its original id.
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        cfg.checkpoint_every = 1;
        let service = TractoService::start(cfg);
        let recovered = service.recover();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, 5, "recovery preserves job ids");
        let out = recovered[0]
            .1
            .wait_track()
            .expect("recovered job completes");
        assert!(out.tracking.total_steps > 0);
        // Fresh submissions allocate above every journaled id.
        let fresh = service.submit(JobSpec::from_wire(&wire).unwrap());
        assert!(fresh.id.0 > 5, "fresh id {} must exceed 5", fresh.id.0);
        fresh.wait_track().expect("fresh job completes");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        // Session 3: everything finished, so nothing is left to recover.
        let (_j, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        assert!(
            recovery.jobs.is_empty(),
            "terminal records settle the journal"
        );
        assert_eq!(recovery.max_seen_id, fresh.id.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_jobs_settle_the_journal_and_local_jobs_skip_it() {
        use crate::journal::JobJournal;
        let dir = tmp_state_dir("settle");
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        let service = TractoService::start(cfg);
        service
            .submit(JobSpec::from_wire(&wire_track(6)).unwrap())
            .wait_track()
            .expect("wire job completes");
        // An in-process dataset has no wire form: it must run fine and
        // never touch the journal.
        service
            .submit(JobSpec::track(tiny_dataset(15), fast_pipeline(1)))
            .wait_track()
            .expect("local job completes");
        service.shutdown();
        let (_j, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        assert!(recovery.jobs.is_empty());
        assert_eq!(
            recovery.max_seen_id, 1,
            "only the wire job (id 1) was journaled"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimation_persists_checkpoints_under_the_state_dir() {
        use tracto_trace::RingSink;
        let dir = tmp_state_dir("ckpt");
        let ring = Arc::new(RingSink::new(4096));
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        cfg.checkpoint_every = 1;
        cfg.tracer = Tracer::shared(Arc::clone(&ring) as _);
        let service = TractoService::start(cfg);
        let mut wire = wire_track(8);
        wire.kind = tracto_proto::JobKind::Estimate;
        wire.cache = CachePolicy::Bypass;
        service
            .submit(JobSpec::from_wire(&wire).unwrap())
            .wait_estimate()
            .expect("estimation completes");
        service.shutdown();
        assert!(
            ring.count("ckpt.save") >= 1,
            "persistent checkpoints must be written during estimation"
        );
        // A completed run discards its snapshot: the store holds nothing.
        let ckpts: Vec<_> = std::fs::read_dir(dir.join("checkpoints"))
            .unwrap()
            .filter_map(|e| e.ok())
            .collect();
        assert!(ckpts.is_empty(), "completed runs leave no snapshots");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_route() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(8);
        let cfg = fast_pipeline(2);
        let est = service.submit_estimate(EstimateJob {
            dataset: Arc::clone(&ds),
            prior: cfg.prior,
            chain: cfg.chain,
            seed: cfg.seed,
        });
        assert!(est.wait_estimate().expect("estimate shim works").voxels > 0);
        let track = service.submit_track(TrackJob::new(Arc::clone(&ds), cfg.clone()));
        assert!(
            track
                .wait_track()
                .expect("track shim works")
                .tracking
                .total_steps
                > 0
        );
        let t = service
            .try_submit_track(TrackJob::new(Arc::clone(&ds), cfg))
            .expect("try shim accepts");
        t.wait_track().expect("try shim job completes");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
    }
}
