//! The job service: submission queues, estimation workers, and the
//! continuous-batching tracking worker.
//!
//! Topology:
//!
//! ```text
//! clients ──submit──▶ [bounded prep queue] ──▶ estimation workers (1 Gpu each)
//!                                                │  cache miss → run_mcmc_gpu
//!                                                │  cache hit  → Arc clone
//!                                                ▼
//!                            [bounded ready queue] ──▶ batch worker (MultiGpu)
//!                                                        collects a window of
//!                                                        ready jobs, merges
//!                                                        their lanes, runs one
//!                                                        shared segmented
//!                                                        launch sequence,
//!                                                        demuxes per job
//! ```
//!
//! Work enters through exactly one door: [`TractoService::submit`] takes a
//! [`JobSpec`] — estimation or tracking, in-process dataset or phantom
//! recipe — and returns a [`Ticket<JobOutput>`]. The legacy
//! `submit_estimate`/`submit_track` methods survive as deprecated shims
//! that convert to a `JobSpec` and call `submit`.
//!
//! Backpressure: both queues are bounded; `submit` blocks when the prep
//! queue is full, `try_submit` fails fast with [`JobError::QueueFull`].
//! Shutdown drops the submission side, lets the workers drain, and joins
//! them; `drain` blocks until no job is queued or running.

use crate::batch::{run_batch_streamed, BatchJob};
use crate::cache::{sample_key, DiskSampleCache, SampleCache, SampleKey};
use crate::config::ServiceConfig;
use crate::events::EventBus;
use crate::job::{
    EstimateJob, EstimateResult, JobError, JobId, JobOutput, Ticket, TrackJob, TrackResult,
};
use crate::journal::{JobJournal, RecoveredJob};
use crate::metrics::{Metrics, MetricsPersist, MetricsSnapshot};
use crate::spec::{materialize_dataset, DatasetSource, JobSpec, Work};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tracto::mcmc::{ChainConfig, CheckpointPolicy, CheckpointStore, SampleVolumes};
use tracto::phantom::Dataset;
use tracto::pipeline::{mean_dwi_volume, PipelineConfig};
use tracto::tracking::analytic::{analytic_params, mean_posterior};
use tracto::tracking::getter::Modality;
use tracto::tracking::probabilistic::seeds_from_mask;
use tracto::tracking::stop::mask_from_percentile;
use tracto::tracking::tensorline::TensorField;
use tracto::{run_mcmc_gpu, run_mcmc_gpu_checkpointed, PersistentCheckpoint};
use tracto_diffusion::PriorConfig;
use tracto_gpu_sim::{DeviceConfig, Gpu, MultiGpu};
use tracto_proto::{CachePolicy, JobState, Priority};
use tracto_trace::{Tracer, Value};
use tracto_volume::{Mask, Vec3};

struct PrepTask {
    spec: JobSpec,
    ticket: Ticket<JobOutput>,
}

/// An admitted job waiting for an estimation worker, tagged with the
/// fields the queue orders by so a pop never has to inspect the spec.
struct PrepEntry {
    seq: u64,
    priority: Priority,
    deadline_at: Option<Instant>,
    task: PrepTask,
}

struct PrepQueueState {
    entries: Vec<PrepEntry>,
    closed: bool,
    seq: u64,
}

/// Outcome of a non-blocking push, mirroring a bounded channel's
/// `TrySendError` so the submit paths keep their shed/shutdown split.
/// The task rides back to the caller so its ticket is dropped (and any
/// waiter woken) there, not inside the queue lock.
enum TryPushError {
    Full(#[allow(dead_code)] PrepTask),
    Closed(#[allow(dead_code)] PrepTask),
}

/// SLO-aware admission queue feeding the estimation workers.
///
/// The prep stage is where a cache-miss job pays its MCMC bill, so a
/// plain FIFO channel head-of-line-blocks urgent work behind whatever
/// arrived first — under overload every deadline blows no matter how the
/// *tracking* stage orders its window. Workers instead always dequeue in
/// admission order (higher priority first, nearest deadline within a
/// band, FIFO otherwise), so saturation starves low-priority jobs
/// instead of defeating the priority bands.
struct PrepQueue {
    inner: Mutex<PrepQueueState>,
    /// Signalled on push and on close: wakes workers waiting in `pop`.
    nonempty: Condvar,
    /// Signalled on pop and on close: wakes producers blocked in `push`.
    vacancy: Condvar,
    cap: usize,
}

impl PrepQueue {
    fn new(cap: usize) -> PrepQueue {
        PrepQueue {
            inner: Mutex::new(PrepQueueState {
                entries: Vec::new(),
                closed: false,
                seq: 0,
            }),
            nonempty: Condvar::new(),
            vacancy: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn entry(state: &mut PrepQueueState, task: PrepTask) -> PrepEntry {
        let seq = state.seq;
        state.seq += 1;
        let deadline_at = task.spec.deadline.map(|d| task.ticket.accepted_at + d);
        PrepEntry {
            seq,
            priority: task.spec.priority,
            deadline_at,
            task,
        }
    }

    /// Enqueue, blocking while the queue is at capacity. Returns the task
    /// back when the queue has been closed (by value on purpose: the
    /// ticket must drop at the caller, outside the queue lock).
    #[allow(clippy::result_large_err)]
    fn push(&self, task: PrepTask) -> Result<(), PrepTask> {
        let mut state = self.inner.lock();
        while state.entries.len() >= self.cap && !state.closed {
            self.vacancy.wait(&mut state);
        }
        if state.closed {
            return Err(task);
        }
        let entry = Self::entry(&mut state, task);
        state.entries.push(entry);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking; a full queue is the caller's load shed.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, task: PrepTask) -> Result<(), TryPushError> {
        let mut state = self.inner.lock();
        if state.closed {
            return Err(TryPushError::Closed(task));
        }
        if state.entries.len() >= self.cap {
            return Err(TryPushError::Full(task));
        }
        let entry = Self::entry(&mut state, task);
        state.entries.push(entry);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeue the best waiting job (admission order), blocking while the
    /// queue is empty. Returns `None` only when the queue is closed *and*
    /// drained, so shutdown still runs every accepted job.
    fn pop(&self) -> Option<PrepTask> {
        let mut state = self.inner.lock();
        loop {
            if let Some(best) = Self::best_index(&state.entries) {
                let entry = state.entries.swap_remove(best);
                self.vacancy.notify_one();
                return Some(entry.task);
            }
            if state.closed {
                return None;
            }
            self.nonempty.wait(&mut state);
        }
    }

    /// Index of the entry workers should take next: priority bands first,
    /// nearest deadline within a band, then arrival order. The explicit
    /// sequence number makes the order independent of `swap_remove`'s
    /// shuffling.
    fn best_index(entries: &[PrepEntry]) -> Option<usize> {
        entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                b.priority
                    .cmp(&a.priority)
                    .then_with(|| cmp_deadlines(a.deadline_at, b.deadline_at))
                    .then_with(|| a.seq.cmp(&b.seq))
            })
            .map(|(i, _)| i)
    }

    /// Stop accepting jobs and wake everyone; queued jobs still drain.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.nonempty.notify_all();
        self.vacancy.notify_all();
    }
}

struct ReadyTrack {
    config: PipelineConfig,
    seeds: Vec<Vec3>,
    samples: Arc<SampleVolumes>,
    /// Stop mask: explicit (in-process callers) or derived from the
    /// job's stop percentile over the dataset's mean DWI.
    stop_mask: Option<Mask>,
    cache_hit: bool,
    deadline_at: Option<Instant>,
    priority: Priority,
    retry_budget: Option<u32>,
    tenant: String,
    ticket: Ticket<JobOutput>,
}

/// Per-tenant token bucket for submit-time rate limiting. Buckets start
/// full (one second of refill, at least one job) so a tenant's first burst
/// is admitted; sustained traffic is clamped to the refill rate.
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn full(rate: f64) -> TokenBucket {
        TokenBucket {
            tokens: rate.max(1.0),
            last: Instant::now(),
        }
    }

    /// Take one token, or report how long (in ms) until one is available.
    fn take(&mut self, rate: f64) -> Result<(), u64> {
        let now = Instant::now();
        let burst = rate.max(1.0);
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * rate).min(burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err((((1.0 - self.tokens) / rate) * 1000.0).ceil() as u64)
        }
    }
}

/// Rewrite a ready job onto the analytic fast tier: collapse the posterior
/// stack to its mean, switch to voxel-length hops with the same reach, and
/// force the (deterministic) tier's jitter off. Callers guard on the
/// *previous* modality so the transform runs exactly once per job even
/// when a fault-retried job passes through admission again.
fn apply_analytic_tier(r: &mut ReadyTrack) {
    r.samples = Arc::new(mean_posterior(&r.samples));
    r.config.tracking = analytic_params(&r.config.tracking);
    r.config.modality = Modality::Analytic;
    r.config.jitter = 0.0;
}

struct Shared {
    cache: SampleCache,
    disk: Option<DiskSampleCache>,
    /// Materialized phantom recipes, keyed by canonical recipe string, so
    /// repeated remote submissions of the same recipe build once.
    phantoms: Mutex<HashMap<String, Arc<Dataset>>>,
    metrics: Metrics,
    in_flight: Mutex<u64>,
    idle: Condvar,
    next_id: AtomicU64,
    /// Write-ahead journal of wire-form job lifecycles (crash recovery).
    journal: Option<Arc<JobJournal>>,
    /// Persistent MCMC snapshot store under the state dir.
    ckpt_store: Option<Arc<CheckpointStore>>,
    /// Persist a snapshot every N launch segments (0 = off).
    checkpoint_every: u32,
    tracer: Tracer,
    /// Lifecycle event bus for v2 subscribers; publishes are no-ops until
    /// a socket front end attaches.
    bus: Arc<EventBus>,
    /// Committed volume uploads (`<state-dir>/uploads`), resolvable as
    /// `kind: "upload"` datasets.
    upload_dir: Option<std::path::PathBuf>,
    /// SLO counter sidecar under the state dir; counters seed from it at
    /// startup and every settle re-saves, so totals survive `kill -9`.
    persist: Option<MetricsPersist>,
    /// Per-tenant token-bucket rate limit in jobs/sec (0 = off).
    rate_limit: f64,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// EWMA of per-job batch wall time in ms (0 until the first batch).
    /// Half of it is the "provably infeasible" service floor: a deadline
    /// below the floor is shed at submit instead of wasting GPU time.
    service_ewma_ms: AtomicU64,
    /// EWMA of a cache-miss estimation's wall time in ms (0 until the
    /// first miss). The prep-stage shed rung compares a dated job's
    /// remaining budget against it before paying for a doomed MCMC run.
    estimate_ewma_ms: AtomicU64,
    /// Mirror of [`ServiceConfig::approx_low`] for the prep stage: under
    /// deadline pressure a low-priority MCMC job demotes to the
    /// deterministic tensorline tier (skipping estimation entirely)
    /// instead of being shed.
    approx_low: bool,
}

impl Shared {
    fn job_started(&self, tenant: &str) {
        *self.in_flight.lock() += 1;
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        self.metrics.tenant_submitted(tenant);
    }

    fn persist_metrics(&self) {
        if let Some(persist) = &self.persist {
            persist.save(&self.metrics);
        }
    }

    /// The admission ladder's shed rung: reject a job at submit when the
    /// tenant is over its rate limit or the deadline is provably
    /// infeasible. Returns the typed `Capacity` error (with a
    /// `retry_after_ms` hint) the caller must settle the job with; the
    /// shed counters are already ticked.
    fn admission_shed(&self, spec: &JobSpec) -> Option<JobError> {
        if self.rate_limit > 0.0 {
            let verdict = self
                .buckets
                .lock()
                .entry(spec.tenant.clone())
                .or_insert_with(|| TokenBucket::full(self.rate_limit))
                .take(self.rate_limit);
            if let Err(retry_ms) = verdict {
                self.metrics.rate_limited.fetch_add(1, Ordering::Relaxed);
                self.metrics.tenant_shed(&spec.tenant);
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "serve.job_rate_limited",
                        &[
                            ("tenant", Value::Text(spec.tenant.clone())),
                            ("retry_after_ms", retry_ms.into()),
                        ],
                    );
                }
                return Some(JobError::Failed(Arc::new(
                    tracto_trace::TractoError::capacity(
                        format!(
                            "tenant `{}` rate limit (retry_after_ms={retry_ms})",
                            spec.tenant
                        ),
                        1,
                        0,
                    ),
                )));
            }
        }
        if let Some(deadline) = spec.deadline {
            let floor_ms = self.service_ewma_ms.load(Ordering::Relaxed) / 2;
            let deadline_ms = deadline.as_millis() as u64;
            if floor_ms > 0 && deadline_ms < floor_ms {
                self.metrics.sheds.fetch_add(1, Ordering::Relaxed);
                self.metrics.tenant_shed(&spec.tenant);
                if self.tracer.enabled() {
                    self.tracer.emit(
                        "serve.job_shed",
                        &[
                            ("tenant", Value::Text(spec.tenant.clone())),
                            ("reason", Value::Text("infeasible-deadline".into())),
                            ("deadline_ms", deadline_ms.into()),
                            ("floor_ms", floor_ms.into()),
                        ],
                    );
                }
                return Some(JobError::Failed(Arc::new(
                    tracto_trace::TractoError::capacity(
                        format!(
                            "deadline {deadline_ms}ms below service floor \
                             (retry_after_ms={floor_ms})"
                        ),
                        floor_ms,
                        deadline_ms,
                    ),
                )));
            }
        }
        None
    }

    /// Prep-stage shed rung: would a fresh MCMC run provably blow this
    /// job's deadline? Returns the measured estimation cost (the retry
    /// hint) when it would. Cached samples make estimation free, so a
    /// job whose key is already resident in either tier always passes.
    fn estimation_infeasible(
        &self,
        deadline_at: Option<Instant>,
        key: SampleKey,
        policy: CachePolicy,
    ) -> Option<u64> {
        let deadline = deadline_at?;
        let est_ms = self.estimate_ewma_ms.load(Ordering::Relaxed);
        if est_ms == 0 {
            return None;
        }
        if policy != CachePolicy::Bypass
            && (self.cache.contains(key) || self.disk.as_ref().is_some_and(|d| d.contains(key)))
        {
            return None;
        }
        let remaining = deadline
            .saturating_duration_since(Instant::now())
            .as_millis() as u64;
        (remaining < est_ms).then_some(est_ms)
    }

    /// Settle a prep-stage shed: tick the overload counters, trace it,
    /// and fail the ticket with the typed `Capacity` error remote
    /// clients back off on.
    fn shed_at_prep(
        &self,
        ticket: &Ticket<JobOutput>,
        tenant: &str,
        remaining_ms: u64,
        est_ms: u64,
    ) {
        self.metrics.sheds.fetch_add(1, Ordering::Relaxed);
        self.metrics.tenant_shed(tenant);
        if self.tracer.enabled() {
            self.tracer.emit(
                "serve.job_shed",
                &[
                    ("job", ticket.id.0.into()),
                    ("tenant", Value::Text(tenant.to_string())),
                    ("reason", Value::Text("estimation-infeasible".into())),
                    ("remaining_ms", remaining_ms.into()),
                    ("estimate_ms", est_ms.into()),
                ],
            );
        }
        self.complete(
            ticket,
            tenant,
            Err(JobError::Failed(Arc::new(
                tracto_trace::TractoError::capacity(
                    format!(
                        "remaining deadline {remaining_ms}ms below estimation cost \
                         (retry_after_ms={est_ms})"
                    ),
                    est_ms,
                    remaining_ms,
                ),
            ))),
        );
    }

    fn job_finished(&self) {
        let mut n = self.in_flight.lock();
        *n -= 1;
        if *n == 0 {
            self.idle.notify_all();
        }
    }

    /// Fulfill a ticket and settle the per-outcome counters. The counters
    /// follow what the ticket actually *stored* — a cancel that won the
    /// race converts a late success into `Cancelled`, and the cancelled
    /// counter (not the completed one) must tick.
    fn complete(
        &self,
        ticket: &Ticket<JobOutput>,
        tenant: &str,
        result: Result<JobOutput, JobError>,
    ) {
        if let Some(stored) = ticket.fulfill(result) {
            let (counter, event) = match &stored {
                Ok(_) => (&self.metrics.completed, "serve.job_completed"),
                Err(JobError::Cancelled) => (&self.metrics.cancelled, "serve.job_cancelled"),
                Err(JobError::DeadlineExceeded) => {
                    (&self.metrics.deadline_exceeded, "serve.job_deadline")
                }
                Err(_) => (&self.metrics.failed, "serve.job_failed"),
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if stored.is_ok() {
                self.metrics.tenant_completed(tenant);
            }
            if let Some(journal) = &self.journal {
                // The terminal record is a no-op for jobs that were never
                // journaled (in-process submissions).
                match &stored {
                    Ok(_) => journal.completed(ticket.id.0),
                    Err(JobError::Cancelled) => journal.cancelled(ticket.id.0),
                    Err(_) => journal.failed(ticket.id.0, ticket.attempts()),
                }
            }
            if self.tracer.enabled() {
                match &stored {
                    Err(JobError::Failed(err)) => self.tracer.emit(
                        event,
                        &[
                            ("job", ticket.id.0.into()),
                            ("error", Value::Text(err.to_string())),
                        ],
                    ),
                    _ => self.tracer.emit(event, &[("job", ticket.id.0.into())]),
                }
            }
            // Terminal push carries the full wire state, so a subscriber
            // needs no follow-up status poll. Gated on `attached` because
            // building the state clones the result.
            if self.bus.attached() {
                self.bus.publish(
                    ticket.id.0,
                    crate::events::terminal_kind(&stored),
                    crate::events::job_state(Some(stored)),
                );
            }
            // Persist after the counters settle so a crash never observes
            // a job both re-runnable (journaled, unfinished) and counted.
            self.persist_metrics();
        }
        self.job_finished();
    }

    /// Resolve a job's dataset: an in-process `Arc` passes through, a
    /// phantom recipe is materialized once and memoized by its canonical
    /// string, and an `upload` spec is decoded from its committed TRDS
    /// blob under the state dir (memoized the same way — the canonical
    /// key embeds the content hash).
    fn resolve_dataset(&self, source: &DatasetSource) -> Result<Arc<Dataset>, JobError> {
        match source {
            DatasetSource::Loaded(ds) => Ok(Arc::clone(ds)),
            DatasetSource::Phantom(spec) => {
                let key = spec.canonical();
                if let Some(ds) = self.phantoms.lock().get(&key) {
                    return Ok(Arc::clone(ds));
                }
                // Build outside the lock — materialization is seconds of
                // work at full scale and must not serialize other workers.
                // A racing duplicate build is wasted work, not an error;
                // first insert wins so every job shares one copy.
                let built = if spec.kind == "upload" {
                    self.load_upload(spec)
                } else {
                    materialize_dataset(spec)
                };
                let built = Arc::new(built.map_err(|e| JobError::Failed(Arc::new(e)))?);
                let mut memo = self.phantoms.lock();
                Ok(Arc::clone(memo.entry(key).or_insert(built)))
            }
        }
    }

    /// Decode an uploaded TRDS container into a runnable dataset,
    /// re-verifying the content hash so a corrupted blob fails the job
    /// rather than silently changing its results.
    fn load_upload(&self, spec: &tracto_proto::DatasetSpec) -> tracto_trace::TractoResult<Dataset> {
        use tracto_trace::TractoError;
        let hash = spec
            .upload
            .as_deref()
            .ok_or_else(|| TractoError::config("upload dataset spec is missing its hash"))?;
        let dir = self
            .upload_dir
            .as_ref()
            .ok_or_else(|| TractoError::config("uploads require --state-dir"))?;
        let path = dir.join(format!("{hash}.trds"));
        let bytes = std::fs::read(&path).map_err(|_| {
            TractoError::config(format!("unknown upload volume {hash} (upload it first)"))
        })?;
        let actual = format!("{:016x}", tracto_proto::content_digest(&bytes));
        if actual != hash {
            return Err(TractoError::format(format!(
                "upload {hash} hashes to {actual}: corrupt blob"
            )));
        }
        tracto::loaded::dataset_from_trds(format!("upload:{hash}"), &bytes)
    }

    /// Resolve a sample stack through memory cache → disk cache → fresh
    /// MCMC, honoring the job's cache policy: `Bypass` never touches
    /// either tier, `ReadOnly` reads hits but never writes fresh results
    /// back. Returns `(samples, cache_hit, voxels_estimated)`.
    #[allow(clippy::too_many_arguments)]
    fn resolve_samples(
        &self,
        gpu: &mut Gpu,
        key: SampleKey,
        dataset: &Dataset,
        prior: PriorConfig,
        chain: ChainConfig,
        seed: u64,
        policy: CachePolicy,
        job: JobId,
    ) -> (Arc<SampleVolumes>, bool, usize) {
        if policy != CachePolicy::Bypass {
            if let Some(samples) = self.cache.get(key) {
                return (samples, true, 0);
            }
            if let Some(disk) = &self.disk {
                // A poisoned entry was quarantined by `get` (deleted, with a
                // `serve.cache_quarantine` event) and reads as a miss, so the
                // job falls through to a fresh estimation.
                if let Ok(Some(samples)) = disk.get(key) {
                    let samples = Arc::new(samples);
                    if policy == CachePolicy::ReadWrite {
                        self.cache.insert(key, Arc::clone(&samples));
                    }
                    return (samples, true, 0);
                }
            }
        }
        let wall = Instant::now();
        let report = self.run_estimation(gpu, key, dataset, prior, chain, seed, job);
        // Recompute cost for the cost-aware eviction score: what this
        // entry actually took to build, in wall milliseconds.
        let cost_ms = wall.elapsed().as_secs_f64() * 1e3;
        // Feed the prep-stage feasibility floor: what a miss costs now.
        let cost = (cost_ms as u64).max(1);
        let prev = self.estimate_ewma_ms.load(Ordering::Relaxed);
        let ewma = if prev == 0 {
            cost
        } else {
            (3 * prev + cost) / 4
        };
        self.estimate_ewma_ms.store(ewma, Ordering::Relaxed);
        self.metrics.estimations_run.fetch_add(1, Ordering::Relaxed);
        self.metrics.accum.lock().estimation_sim_s += report.ledger.total_s();
        let samples = Arc::new(report.samples);
        if policy == CachePolicy::ReadWrite {
            self.cache
                .insert_with_cost(key, Arc::clone(&samples), cost_ms);
            if let Some(disk) = &self.disk {
                // Disk persistence is best-effort; the in-memory result stands.
                let _ = disk.put_with_cost(key, &samples, cost_ms);
            }
        }
        (samples, false, report.voxels)
    }

    /// Run a fresh MCMC estimation, through the persistent-checkpoint
    /// runner when a state dir is configured: the run saves a resumable
    /// snapshot every `checkpoint_every` segments under the sample key, so
    /// a crash mid-estimation costs at most one checkpoint interval. The
    /// journal records the binding so recovery can report which snapshot a
    /// re-run resumes from.
    #[allow(clippy::too_many_arguments)]
    fn run_estimation(
        &self,
        gpu: &mut Gpu,
        key: SampleKey,
        dataset: &Dataset,
        prior: PriorConfig,
        chain: ChainConfig,
        seed: u64,
        job: JobId,
    ) -> tracto::McmcGpuReport {
        if let (Some(store), every) = (&self.ckpt_store, self.checkpoint_every) {
            if every > 0 {
                let key_hex = key.hex();
                if let Some(journal) = &self.journal {
                    journal.checkpointed(job.0, &key_hex);
                }
                self.bus.publish(job.0, "checkpointed", JobState::Pending);
                let persist = PersistentCheckpoint {
                    store: store.as_ref(),
                    key: key_hex,
                    tracer: self.tracer.clone(),
                };
                match run_mcmc_gpu_checkpointed(
                    gpu,
                    &dataset.acq,
                    &dataset.dwi,
                    &dataset.wm_mask,
                    prior,
                    chain,
                    seed,
                    CheckpointPolicy::every(every),
                    &persist,
                ) {
                    Ok(report) => return report,
                    Err(err) => {
                        // Snapshot-store I/O trouble must not kill the job:
                        // fall back to a plain (non-resumable) run.
                        if self.tracer.enabled() {
                            self.tracer.emit(
                                "serve.ckpt_error",
                                &[
                                    ("job", job.0.into()),
                                    ("error", Value::Text(err.to_string())),
                                ],
                            );
                        }
                    }
                }
            }
        }
        run_mcmc_gpu(
            gpu,
            &dataset.acq,
            &dataset.dwi,
            &dataset.wm_mask,
            prior,
            chain,
            seed,
        )
    }
}

/// The running service. Dropping it without calling
/// [`shutdown`](Self::shutdown) aborts queued jobs with
/// [`JobError::ShuttingDown`] and joins the workers.
pub struct TractoService {
    config: ServiceConfig,
    shared: Arc<Shared>,
    prep_q: Arc<PrepQueue>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Unfinished journaled jobs found at startup, waiting for
    /// [`recover`](Self::recover) to re-enqueue them.
    recovered: Mutex<Vec<RecoveredJob>>,
}

impl TractoService {
    /// Bring up the worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        assert!(
            config.estimate_workers >= 1,
            "need at least one estimation worker"
        );
        assert!(config.max_batch_jobs >= 1, "need a positive batch bound");
        let disk = config.disk_cache.as_ref().map(|dir| {
            let mut cache = DiskSampleCache::open(dir)
                .expect("open disk cache")
                .with_policy(config.cache_policy)
                .with_tracer(config.tracer.clone());
            if let Some(cap) = config.disk_cache_bytes {
                cache = cache.with_limit(cap);
            }
            cache
        });
        let mut recovered = Vec::new();
        let mut max_seen_id = 0;
        let (journal, ckpt_store) = match &config.state_dir {
            Some(dir) => {
                let (journal, recovery) = JobJournal::open(dir, config.tracer.clone())
                    .expect("open job journal in state dir");
                let store = CheckpointStore::open(&dir.join("checkpoints"))
                    .expect("open checkpoint store in state dir");
                recovered = recovery.jobs;
                max_seen_id = recovery.max_seen_id;
                let journal = Arc::new(journal);
                // Fleet replication: tee every subsequent journal append to
                // a detached replicator thread, seeded with the compacted
                // on-disk snapshot. Wired before any submission is possible,
                // so no record can slip between snapshot and mirror. The
                // thread is not joined: it exits when the journal (holding
                // the channel sender) drops, which happens after
                // `shutdown_inner` joins the workers — joining it here
                // would deadlock.
                if let (Some(target), Some(member)) = (&config.replicate_to, &config.member) {
                    let (tx, rx) = crossbeam::channel::unbounded();
                    let snapshot: Vec<String> = journal
                        .snapshot_text()
                        .lines()
                        .map(|l| l.to_string())
                        .collect();
                    journal.set_mirror(tx);
                    crate::fleet::spawn_replicator(
                        member.clone(),
                        target.clone(),
                        snapshot,
                        rx,
                        config.tracer.clone(),
                    );
                }
                (Some(journal), Some(Arc::new(store)))
            }
            None => (None, None),
        };
        // Seed the SLO counters from the previous incarnation's sidecar
        // before any job can tick them, so recovered totals stay monotone.
        let metrics = Metrics::default();
        let persist = config.state_dir.as_ref().map(|dir| {
            let persist = MetricsPersist::open(dir);
            persist.seed(&metrics);
            persist
        });
        let shared = Arc::new(Shared {
            cache: SampleCache::new(config.cache_bytes)
                .with_policy(config.cache_policy)
                .with_tracer(config.tracer.clone()),
            disk,
            phantoms: Mutex::new(HashMap::new()),
            metrics,
            in_flight: Mutex::new(0),
            idle: Condvar::new(),
            // Fresh ids allocate strictly above every id the journal has
            // ever issued, so recovered and new jobs never collide.
            next_id: AtomicU64::new(max_seen_id + 1),
            journal,
            ckpt_store,
            checkpoint_every: config.checkpoint_every,
            tracer: config.tracer.clone(),
            bus: Arc::new(EventBus::new()),
            upload_dir: config.state_dir.as_ref().map(|d| d.join("uploads")),
            persist,
            rate_limit: config.rate_limit,
            buckets: Mutex::new(HashMap::new()),
            service_ewma_ms: AtomicU64::new(0),
            estimate_ewma_ms: AtomicU64::new(0),
            approx_low: config.approx_low,
        });

        let prep_q = Arc::new(PrepQueue::new(config.queue_capacity));
        let (ready_tx, ready_rx) = bounded::<ReadyTrack>(config.queue_capacity);

        let mut workers = Vec::new();
        for i in 0..config.estimate_workers {
            let q = Arc::clone(&prep_q);
            let tx = ready_tx.clone();
            let shared = Arc::clone(&shared);
            let device = config.device.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tracto-estimate-{i}"))
                    .spawn(move || estimate_worker(i, q, tx, shared, device))
                    .expect("spawn estimation worker"),
            );
        }
        // The clones above keep the channel alive; drop the original so
        // the pipeline collapses cleanly once the senders go away.
        drop(ready_tx);

        {
            let shared = Arc::clone(&shared);
            let cfg = config.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("tracto-batch".into())
                    .spawn(move || batch_worker(ready_rx, shared, cfg))
                    .expect("spawn batch worker"),
            );
        }

        TractoService {
            config,
            shared,
            prep_q,
            workers,
            recovered: Mutex::new(recovered),
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The lifecycle event bus (attached by the socket front end).
    pub(crate) fn event_bus(&self) -> Arc<EventBus> {
        Arc::clone(&self.shared.bus)
    }

    fn next_id(&self) -> JobId {
        JobId(self.shared.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn trace_submit(&self, id: JobId, kind: &'static str) {
        if self.shared.tracer.enabled() {
            self.shared.tracer.emit(
                "serve.job_submitted",
                &[("job", id.0.into()), ("kind", kind.into())],
            );
        }
    }

    /// Submit any job, blocking while the queue is full. This is the one
    /// submission door: estimation and tracking, in-process datasets and
    /// phantom recipes, all enter as a [`JobSpec`].
    pub fn submit(&self, spec: impl Into<JobSpec>) -> Ticket<JobOutput> {
        let spec = spec.into();
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, work_kind(&spec.work));
        // Shed rung of the admission ladder: a rate-limited or provably
        // late job fails typed before it is journaled, so a rejected job
        // is never re-run by crash recovery.
        if let Some(err) = self.shared.admission_shed(&spec) {
            self.shared.job_started(&spec.tenant);
            self.shared.complete(&ticket, &spec.tenant, Err(err));
            return ticket;
        }
        // Write-ahead: a wire-form job is durable before acceptance becomes
        // observable, so a crash after this point cannot lose it.
        if let (Some(journal), Some(wire)) = (&self.shared.journal, &spec.wire) {
            journal.submitted(ticket.id.0, wire);
        }
        self.shared.job_started(&spec.tenant);
        let tenant = spec.tenant.clone();
        let task = PrepTask {
            spec,
            ticket: ticket.clone(),
        };
        if self.prep_q.push(task).is_ok() {
            if let Some(journal) = &self.shared.journal {
                journal.admitted(ticket.id.0);
            }
            self.shared
                .bus
                .publish(ticket.id.0, "admitted", JobState::Pending);
        } else {
            self.shared
                .complete(&ticket, &tenant, Err(JobError::ShuttingDown));
        }
        ticket
    }

    /// Submit any job without blocking; fails with
    /// [`JobError::QueueFull`] when the bounded queue is at capacity.
    pub fn try_submit(&self, spec: impl Into<JobSpec>) -> Result<Ticket<JobOutput>, JobError> {
        let spec = spec.into();
        // Shed rung: reject before the job is ticketed or journaled. The
        // caller sees the typed `Capacity` error (with its retry-after
        // hint) directly — the reactor maps it to a wire error as-is.
        if let Some(err) = self.shared.admission_shed(&spec) {
            self.shared.job_started(&spec.tenant);
            self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
            self.shared.job_finished();
            self.shared.persist_metrics();
            return Err(err);
        }
        let ticket = Ticket::new(self.next_id());
        self.trace_submit(ticket.id, work_kind(&spec.work));
        if let (Some(journal), Some(wire)) = (&self.shared.journal, &spec.wire) {
            journal.submitted(ticket.id.0, wire);
        }
        self.shared.job_started(&spec.tenant);
        let tenant = spec.tenant.clone();
        match self.prep_q.try_push(PrepTask {
            spec,
            ticket: ticket.clone(),
        }) {
            Ok(()) => {
                if let Some(journal) = &self.shared.journal {
                    journal.admitted(ticket.id.0);
                }
                self.shared
                    .bus
                    .publish(ticket.id.0, "admitted", JobState::Pending);
                Ok(ticket)
            }
            Err(TryPushError::Full(_)) => {
                if let Some(journal) = &self.shared.journal {
                    journal.failed(ticket.id.0, 0);
                }
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                // A full queue is a load shed too: count it so saturation
                // shows up in the overload counters, not just as failures.
                self.shared.metrics.sheds.fetch_add(1, Ordering::Relaxed);
                self.shared.metrics.tenant_shed(&tenant);
                self.shared.job_finished();
                self.shared.persist_metrics();
                Err(JobError::QueueFull)
            }
            Err(TryPushError::Closed(_)) => {
                if let Some(journal) = &self.shared.journal {
                    journal.failed(ticket.id.0, 0);
                }
                self.shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                self.shared.job_finished();
                self.shared.persist_metrics();
                Err(JobError::ShuttingDown)
            }
        }
    }

    /// Re-enqueue every unfinished journaled job found in the state dir at
    /// startup, preserving original job ids — clients that were polling a
    /// job id across the crash keep a valid handle. Returns `(id, ticket)`
    /// pairs so a front end can rebind them (see
    /// [`SocketServer::adopt_jobs`](crate::SocketServer::adopt_jobs)).
    ///
    /// A recovered estimation resumes from its latest persistent
    /// checkpoint automatically: it recomputes the same sample key and the
    /// checkpointed runner finds the snapshot, so at most one checkpoint
    /// interval of MCMC work is repeated.
    pub fn recover(&self) -> Vec<(u64, Ticket<JobOutput>)> {
        let jobs = std::mem::take(&mut *self.recovered.lock());
        let mut out = Vec::with_capacity(jobs.len());
        for r in jobs {
            let ticket = Ticket::new(JobId(r.id));
            if self.shared.tracer.enabled() {
                self.shared.tracer.emit(
                    "serve.job_recovered",
                    &[
                        ("job", r.id.into()),
                        (
                            "checkpoint",
                            Value::Text(r.checkpoint.clone().unwrap_or_default()),
                        ),
                    ],
                );
            }
            // Re-bumping `submitted` here keeps the persisted totals
            // monotone: a job accepted after the last sidecar save is
            // unfinished in the journal, so its count re-enters through
            // this path after the crash.
            self.shared.job_started(&r.spec.tenant);
            match JobSpec::from_wire(&r.spec) {
                Ok(spec) => {
                    let tenant = spec.tenant.clone();
                    let task = PrepTask {
                        spec,
                        ticket: ticket.clone(),
                    };
                    if self.prep_q.push(task).is_ok() {
                        if let Some(journal) = &self.shared.journal {
                            journal.admitted(r.id);
                        }
                        self.shared.bus.publish(r.id, "admitted", JobState::Pending);
                    } else {
                        self.shared
                            .complete(&ticket, &tenant, Err(JobError::ShuttingDown));
                    }
                }
                Err(err) => {
                    // A journaled spec that no longer converts (protocol
                    // drift across the restart) fails terminally — and
                    // observably — rather than vanishing.
                    self.shared.complete(
                        &ticket,
                        &r.spec.tenant,
                        Err(JobError::Failed(Arc::new(err))),
                    );
                }
            }
            out.push((r.id, ticket));
        }
        out
    }

    /// Submit an estimation job.
    #[deprecated(note = "use `submit(JobSpec)`; wait with `wait_estimate()`")]
    pub fn submit_estimate(&self, job: EstimateJob) -> Ticket<JobOutput> {
        self.submit(JobSpec::from(job))
    }

    /// Submit a tracking job.
    #[deprecated(note = "use `submit(JobSpec)`; wait with `wait_track()`")]
    pub fn submit_track(&self, job: TrackJob) -> Ticket<JobOutput> {
        self.submit(JobSpec::from(job))
    }

    /// Submit a tracking job without blocking.
    #[deprecated(note = "use `try_submit(JobSpec)`; wait with `wait_track()`")]
    pub fn try_submit_track(&self, job: TrackJob) -> Result<Ticket<JobOutput>, JobError> {
        self.try_submit(JobSpec::from(job))
    }

    /// Block until every accepted job has completed (successfully or not).
    pub fn drain(&self) {
        let mut n = self.shared.in_flight.lock();
        while *n > 0 {
            self.shared.idle.wait(&mut n);
        }
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let in_flight = *self.shared.in_flight.lock();
        self.shared
            .metrics
            .snapshot(in_flight, self.shared.cache.stats())
    }

    /// Stop accepting jobs, drain the queues, and join the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_inner();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        self.prep_q.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TractoService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn work_kind(work: &Work) -> &'static str {
    match work {
        Work::Estimate { .. } => "estimate",
        Work::Track { .. } => "track",
    }
}

fn estimate_worker(
    index: usize,
    queue: Arc<PrepQueue>,
    tx: Sender<ReadyTrack>,
    shared: Arc<Shared>,
    device: DeviceConfig,
) {
    let mut gpu = Gpu::new(device);
    gpu.set_tracer(shared.tracer.clone(), index as u32);
    while let Some(PrepTask { spec, ticket }) = queue.pop() {
        if ticket.is_cancelled() {
            shared.complete(&ticket, &spec.tenant, Err(JobError::Cancelled));
            continue;
        }
        let deadline_at = spec.deadline.map(|d| ticket.accepted_at + d);
        if deadline_at.is_some_and(|t| Instant::now() >= t) {
            shared.complete(&ticket, &spec.tenant, Err(JobError::DeadlineExceeded));
            continue;
        }
        let dataset = match shared.resolve_dataset(&spec.dataset) {
            Ok(ds) => ds,
            Err(err) => {
                shared.complete(&ticket, &spec.tenant, Err(err));
                continue;
            }
        };
        match spec.work {
            Work::Estimate { prior, chain, seed } => {
                let key = sample_key(&dataset, &prior, &chain, seed);
                // Prep-stage shed rung: an estimation job has no cheaper
                // tier to demote onto, so an unaffordable fresh run is
                // shed typed before it burns the worker.
                if let Some(est_ms) = shared.estimation_infeasible(deadline_at, key, spec.cache) {
                    let remaining_ms = deadline_at
                        .map(|t| t.saturating_duration_since(Instant::now()).as_millis() as u64)
                        .unwrap_or(0);
                    shared.shed_at_prep(&ticket, &spec.tenant, remaining_ms, est_ms);
                    continue;
                }
                let (samples, cache_hit, voxels) = shared.resolve_samples(
                    &mut gpu, key, &dataset, prior, chain, seed, spec.cache, ticket.id,
                );
                if deadline_at.is_some_and(|t| Instant::now() <= t) {
                    shared.metrics.deadline_hits.fetch_add(1, Ordering::Relaxed);
                }
                shared.complete(
                    &ticket,
                    &spec.tenant,
                    Ok(JobOutput::Estimate(EstimateResult {
                        samples,
                        cache_hit,
                        voxels,
                    })),
                );
            }
            Work::Track {
                mut config,
                seeds,
                stop_mask,
            } => {
                let seeds = seeds.unwrap_or_else(|| seeds_from_mask(&dataset.truth.fiber_mask()));
                // Derive the stop mask here, where the dataset is
                // materialized: remote jobs carry only the percentile.
                let stop_mask = stop_mask.or_else(|| {
                    config
                        .stop_percentile
                        .and_then(|pct| mask_from_percentile(&mean_dwi_volume(&dataset.dwi), pct))
                });
                // Prep-stage overload ladder, applied where the MCMC bill
                // is actually paid: a dated job whose remaining budget
                // cannot cover a fresh estimation either demotes onto the
                // estimation-free tensorline tier (low priority, opt-in
                // via `--approx-low`) or is shed typed — never run to a
                // guaranteed deadline failure.
                if config.modality != Modality::Tensorline {
                    let key = sample_key(&dataset, &config.prior, &config.chain, config.seed);
                    if let Some(est_ms) = shared.estimation_infeasible(deadline_at, key, spec.cache)
                    {
                        if shared.approx_low
                            && spec.priority == Priority::Low
                            && config.modality == Modality::Mcmc
                        {
                            config.modality = Modality::Tensorline;
                            config.jitter = 0.0;
                            shared.metrics.demotions.fetch_add(1, Ordering::Relaxed);
                            if shared.tracer.enabled() {
                                shared.tracer.emit(
                                    "serve.job_demoted",
                                    &[
                                        ("job", ticket.id.0.into()),
                                        ("modality", Value::Text("tensorline".into())),
                                    ],
                                );
                            }
                        } else {
                            let remaining_ms = deadline_at
                                .map(|t| {
                                    t.saturating_duration_since(Instant::now()).as_millis() as u64
                                })
                                .unwrap_or(0);
                            shared.shed_at_prep(&ticket, &spec.tenant, remaining_ms, est_ms);
                            continue;
                        }
                    }
                }
                let (samples, cache_hit) = if config.modality == Modality::Tensorline {
                    // The tensorline tier skips MCMC entirely: Step 1 is
                    // the closed-form tensor fit. It must bypass the
                    // sample cache — a fit stored under the dataset+chain
                    // key would poison later MCMC jobs (and vice versa).
                    (
                        Arc::new(TensorField::fit(&dataset.acq, &dataset.dwi).to_sample_volumes()),
                        false,
                    )
                } else {
                    let key = sample_key(&dataset, &config.prior, &config.chain, config.seed);
                    let (samples, cache_hit, _) = shared.resolve_samples(
                        &mut gpu,
                        key,
                        &dataset,
                        config.prior,
                        config.chain,
                        config.seed,
                        spec.cache,
                        ticket.id,
                    );
                    (samples, cache_hit)
                };
                let mut ready = ReadyTrack {
                    config,
                    seeds,
                    samples,
                    stop_mask,
                    cache_hit,
                    deadline_at,
                    priority: spec.priority,
                    retry_budget: spec.retry_budget,
                    tenant: spec.tenant,
                    ticket,
                };
                match ready.config.modality {
                    Modality::Analytic => apply_analytic_tier(&mut ready),
                    // Deterministic tiers never jitter their seeds.
                    Modality::Tensorline => ready.config.jitter = 0.0,
                    Modality::Mcmc => {}
                }
                if let Err(send_err) = tx.send(ready) {
                    let ReadyTrack { ticket, tenant, .. } = send_err.0;
                    shared.complete(&ticket, &tenant, Err(JobError::ShuttingDown));
                }
            }
        }
    }
}

/// Admission order for the batch worker's pending window: higher-priority
/// jobs first; within a priority band, jobs with the nearest deadlines go
/// first and jobs without a deadline keep their FIFO order behind every
/// dated job (the sort is stable).
fn cmp_admission(a: &ReadyTrack, b: &ReadyTrack) -> std::cmp::Ordering {
    b.priority
        .cmp(&a.priority)
        .then_with(|| cmp_deadlines(a.deadline_at, b.deadline_at))
}

fn cmp_deadlines(a: Option<Instant>, b: Option<Instant>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Some(x), Some(y)) => x.cmp(&y),
        (Some(_), None) => Less,
        (None, Some(_)) => Greater,
        (None, None) => Equal,
    }
}

/// Pull up to `max_jobs` jobs out of `pending` in admission order.
///
/// When the window cannot fit every pending job, admission is
/// tenant-fair *within each priority band*: tenants take turns
/// contributing their best remaining job, so one tenant's backlog
/// cannot starve another tenant out of the window. Across bands the
/// strict priority order of [`cmp_admission`] still holds — fairness
/// never promotes a low-priority job over a high-priority one. The
/// `rotor` advances every call so the tenant who leads a round rotates
/// between windows — without it a narrow window would always favor the
/// first-arriving tenant.
fn admit_batch(
    pending: &mut Vec<ReadyTrack>,
    max_jobs: usize,
    rotor: &mut usize,
) -> Vec<ReadyTrack> {
    pending.sort_by(cmp_admission);
    let take = max_jobs.min(pending.len());
    if take == pending.len() {
        return std::mem::take(pending);
    }
    let start = *rotor;
    *rotor = rotor.wrapping_add(1);
    let mut picked = vec![false; pending.len()];
    let mut taken = 0;
    {
        // Maximal runs of equal priority in the sorted order.
        let mut band_start = 0;
        while band_start < pending.len() && taken < take {
            let band_end = band_start
                + pending[band_start..]
                    .iter()
                    .take_while(|r| r.priority == pending[band_start].priority)
                    .count();
            // Per-tenant index queues, each already in admission order.
            let mut names: Vec<&str> = Vec::new();
            let mut queues: Vec<Vec<usize>> = Vec::new();
            for (i, ready) in pending.iter().enumerate().take(band_end).skip(band_start) {
                match names.iter().position(|t| *t == ready.tenant) {
                    Some(q) => queues[q].push(i),
                    None => {
                        names.push(&ready.tenant);
                        queues.push(vec![i]);
                    }
                }
            }
            let mut round = 0;
            'band: loop {
                let mut any = false;
                for k in 0..queues.len() {
                    let q = &queues[(k + start) % queues.len()];
                    if let Some(&i) = q.get(round) {
                        any = true;
                        picked[i] = true;
                        taken += 1;
                        if taken == take {
                            break 'band;
                        }
                    }
                }
                if !any {
                    break;
                }
                round += 1;
            }
            band_start = band_end;
        }
    }
    let mut admitted = Vec::with_capacity(take);
    let mut kept = Vec::new();
    for (i, r) in std::mem::take(pending).into_iter().enumerate() {
        if picked[i] {
            admitted.push(r);
        } else {
            kept.push(r);
        }
    }
    *pending = kept;
    admitted
}

/// Device-pool counter values already copied into the service metrics; the
/// pool's counters are cumulative, so the worker settles deltas after each
/// batch.
#[derive(Default)]
struct FaultCounters {
    faults: u64,
    retries: u64,
    failovers: u64,
}

fn settle_fault_metrics(multi: &MultiGpu, shared: &Shared, last: &mut FaultCounters) {
    let faults = multi.faults_injected();
    let retries = multi.fault_retries();
    let failovers = multi.failovers();
    shared
        .metrics
        .faults_injected
        .fetch_add(faults - last.faults, Ordering::Relaxed);
    shared
        .metrics
        .device_retries
        .fetch_add(retries - last.retries, Ordering::Relaxed);
    shared
        .metrics
        .failovers
        .fetch_add(failovers - last.failovers, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(multi.alive_devices() as u64, Ordering::Relaxed);
    *last = FaultCounters {
        faults,
        retries,
        failovers,
    };
}

fn batch_worker(rx: Receiver<ReadyTrack>, shared: Arc<Shared>, cfg: ServiceConfig) {
    let mut multi = MultiGpu::new(cfg.device.clone(), cfg.devices);
    multi.set_tracer(&shared.tracer);
    if let Some(plan) = &cfg.fault_plan {
        multi.set_fault_plan(plan);
    }
    let total_devices = multi.num_devices();
    shared
        .metrics
        .devices_total
        .store(total_devices as u64, Ordering::Relaxed);
    shared
        .metrics
        .devices_alive
        .store(total_devices as u64, Ordering::Relaxed);
    let mut pending: Vec<ReadyTrack> = Vec::new();
    // Jobs re-queued after a device fault, held until their backoff expires.
    let mut delayed: Vec<(ReadyTrack, Instant)> = Vec::new();
    let mut fair_rotor = 0usize;
    let mut counters = FaultCounters::default();
    let mut prev_alive = multi.alive_devices();
    let mut channel_open = true;
    loop {
        // Promote retries whose backoff has expired.
        let now = Instant::now();
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].1 <= now {
                pending.push(delayed.swap_remove(i).0);
            } else {
                i += 1;
            }
        }
        if pending.is_empty() {
            if !channel_open {
                if delayed.is_empty() {
                    break;
                }
                // Shutdown with retries still cooling down: run them now
                // rather than abandoning them mid-backoff.
                pending.extend(delayed.drain(..).map(|(r, _)| r));
            } else if let Some(due) = delayed.iter().map(|&(_, at)| at).min() {
                // Idle but with retries pending: sleep on the channel only
                // until the earliest backoff expires.
                match rx.recv_timeout(due.saturating_duration_since(Instant::now())) {
                    Ok(t) => pending.push(t),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => channel_open = false,
                }
                continue;
            } else {
                match rx.recv() {
                    Ok(t) => pending.push(t),
                    Err(_) => channel_open = false,
                }
                continue;
            }
        }
        // Continuous batching: hold the window open briefly to merge work
        // from other clients into this launch sequence. A backlog wider
        // than one batch skips the wait and drains immediately. A degraded
        // pool shrinks the window proportionally — fewer devices means
        // piling up a full-width batch only adds queueing delay.
        let alive = multi.alive_devices().max(1);
        let window = cfg
            .batch_window
            .mul_f64(alive as f64 / total_devices.max(1) as f64);
        let window_end = Instant::now() + window;
        while channel_open && pending.len() < cfg.max_batch_jobs {
            let now = Instant::now();
            if now >= window_end {
                break;
            }
            match rx.recv_timeout(window_end - now) {
                Ok(t) => pending.push(t),
                Err(RecvTimeoutError::Timeout) => break,
                // The held jobs still run; the next iteration observes the
                // closed channel.
                Err(RecvTimeoutError::Disconnected) => {
                    channel_open = false;
                    break;
                }
            }
        }

        let admitted = admit_batch(&mut pending, cfg.max_batch_jobs, &mut fair_rotor);
        let mut live = Vec::with_capacity(admitted.len());
        for mut r in admitted {
            if r.ticket.is_cancelled() {
                shared.complete(&r.ticket, &r.tenant, Err(JobError::Cancelled));
                continue;
            }
            if r.deadline_at.is_some_and(|t| Instant::now() >= t) {
                shared.complete(&r.ticket, &r.tenant, Err(JobError::DeadlineExceeded));
                continue;
            }
            // Overload ladder, rung 1 — demote: low-priority MCMC jobs
            // drop to the analytic getter at admission (opt-in). The
            // modality guard keeps fault-retried jobs from being
            // transformed twice.
            if cfg.approx_low && r.priority == Priority::Low && r.config.modality == Modality::Mcmc
            {
                apply_analytic_tier(&mut r);
                shared.metrics.demotions.fetch_add(1, Ordering::Relaxed);
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.job_demoted",
                        &[
                            ("job", r.ticket.id.0.into()),
                            ("modality", Value::Text("analytic".into())),
                        ],
                    );
                }
            }
            // Rung 2 — shed: a job whose remaining deadline budget is
            // below the measured service floor cannot finish in time, so
            // spending a batch slot on it only delays feasible work.
            let floor_ms = shared.service_ewma_ms.load(Ordering::Relaxed) / 2;
            if floor_ms > 0 {
                if let Some(t) = r.deadline_at {
                    let remaining = t.saturating_duration_since(Instant::now()).as_millis() as u64;
                    if remaining < floor_ms {
                        shared.metrics.sheds.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.tenant_shed(&r.tenant);
                        if shared.tracer.enabled() {
                            shared.tracer.emit(
                                "serve.job_shed",
                                &[
                                    ("job", r.ticket.id.0.into()),
                                    ("tenant", Value::Text(r.tenant.clone())),
                                    ("reason", Value::Text("deadline-infeasible".into())),
                                    ("remaining_ms", remaining.into()),
                                    ("floor_ms", floor_ms.into()),
                                ],
                            );
                        }
                        let err = tracto_trace::TractoError::capacity(
                            format!(
                                "remaining deadline {remaining}ms below service floor \
                                 (retry_after_ms={floor_ms})"
                            ),
                            floor_ms,
                            remaining,
                        );
                        shared.complete(&r.ticket, &r.tenant, Err(JobError::Failed(Arc::new(err))));
                        continue;
                    }
                }
            }
            live.push(r);
        }
        if !live.is_empty() {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_formed",
                    &[("jobs", live.len().into()), ("held", pending.len().into())],
                );
            }
            execute_batch(&mut multi, &shared, &cfg, live, &mut delayed);
            settle_fault_metrics(&multi, &shared, &mut counters);
            let alive_now = multi.alive_devices();
            if alive_now < prev_alive {
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.pool_degraded",
                        &[
                            ("alive", (alive_now as u64).into()),
                            ("total", (total_devices as u64).into()),
                        ],
                    );
                }
                prev_alive = alive_now;
            }
        }
    }
    // Complete anything still buffered after the senders vanished (pending
    // and delayed are empty here — the loop drains both before exiting).
    for r in pending {
        shared.complete(&r.ticket, &r.tenant, Err(JobError::ShuttingDown));
    }
    while let Ok(r) = rx.try_recv() {
        shared.complete(&r.ticket, &r.tenant, Err(JobError::ShuttingDown));
    }
}

fn execute_batch(
    multi: &mut MultiGpu,
    shared: &Shared,
    cfg: &ServiceConfig,
    live: Vec<ReadyTrack>,
    delayed: &mut Vec<(ReadyTrack, Instant)>,
) {
    let jobs: Vec<BatchJob> = live
        .iter()
        .map(|r| BatchJob {
            samples: Arc::clone(&r.samples),
            params: r.config.tracking,
            seeds: r.seeds.clone(),
            mask: r.stop_mask.clone(),
            jitter: r.config.jitter,
            run_seed: r.config.seed,
            record_visits: r.config.record_connectivity,
        })
        .collect();

    match run_batch_streamed(multi, &jobs, &cfg.strategy, cfg.streams) {
        Ok(report) => {
            if shared.tracer.enabled() {
                shared.tracer.emit(
                    "serve.batch_done",
                    &[
                        ("jobs", live.len().into()),
                        ("lanes", report.lanes.into()),
                        ("launches", report.launches.into()),
                        ("utilization", report.utilization.into()),
                        ("streams", report.streams.into()),
                        ("overlap_saved_s", report.overlap_saved_s.into()),
                    ],
                );
            }
            shared.metrics.add_batch(crate::metrics::BatchSample {
                jobs: live.len() as u64,
                lanes: report.lanes as u64,
                launches: report.launches,
                wall_s: report.wall_s,
                serial_s: report.serial_s,
                overlap_saved_s: report.overlap_saved_s,
                utilization: report.utilization,
            });
            // Feed the service-floor estimate: EWMA of per-job batch wall
            // time, the cost of running one cache-warm tracking job.
            let per_job_ms = (report.wall_s * 1000.0 / live.len().max(1) as f64) as u64;
            let prev = shared.service_ewma_ms.load(Ordering::Relaxed);
            let ewma = if prev == 0 {
                per_job_ms.max(1)
            } else {
                ((prev * 4 + per_job_ms) / 5).max(1)
            };
            shared.service_ewma_ms.store(ewma, Ordering::Relaxed);
            let batch_jobs = live.len();
            let settled_at = Instant::now();
            for (r, out) in live.into_iter().zip(report.per_job) {
                if r.deadline_at.is_some_and(|t| settled_at <= t) {
                    shared.metrics.deadline_hits.fetch_add(1, Ordering::Relaxed);
                }
                shared.complete(
                    &r.ticket,
                    &r.tenant,
                    Ok(JobOutput::Track(TrackResult {
                        tracking: out,
                        cache_hit: r.cache_hit,
                        batch_jobs,
                        batch_lanes: report.lanes,
                    })),
                );
            }
        }
        Err(err) if err.is_retryable() => {
            // A transient device fault escaped the pool before any lane ran
            // (mid-launch faults are absorbed by failover, so lanes never
            // run twice). Re-queue each job with exponential backoff until
            // its budget is spent, then fail it with the typed cause.
            let err = Arc::new(err);
            for r in live {
                let attempt = r.ticket.record_attempt();
                let budget = r.retry_budget.unwrap_or(cfg.retry_budget);
                if attempt > budget {
                    shared.complete(
                        &r.ticket,
                        &r.tenant,
                        Err(JobError::Failed(Arc::clone(&err))),
                    );
                    continue;
                }
                let backoff = cfg
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt - 1).min(10));
                shared.metrics.job_retries.fetch_add(1, Ordering::Relaxed);
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "serve.job_retry",
                        &[
                            ("job", r.ticket.id.0.into()),
                            ("attempt", u64::from(attempt).into()),
                            ("backoff_ms", (backoff.as_millis() as u64).into()),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
                delayed.push((r, Instant::now() + backoff));
            }
        }
        Err(err) => {
            if live.len() > 1 {
                // The merged working set didn't fit: fall back to running
                // each job alone, which halves residency per attempt.
                for r in live {
                    execute_batch(multi, shared, cfg, vec![r], delayed);
                }
            } else {
                let r = &live[0];
                shared.complete(&r.ticket, &r.tenant, Err(JobError::from(err)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use tracto::phantom::datasets::DatasetSpec;
    use tracto_gpu_sim::FaultPlan;

    fn tiny_dataset(seed: u64) -> Arc<tracto::phantom::Dataset> {
        Arc::new(
            DatasetSpec {
                name: format!("svc-{seed}"),
                dims: tracto_volume::Dim3::new(8, 6, 6),
                spacing_mm: 2.5,
                n_dirs: 9,
                n_b0: 1,
                bval: 1000.0,
                snr: None,
                seed,
            }
            .build(),
        )
    }

    fn small_config() -> ServiceConfig {
        ServiceConfig {
            device: DeviceConfig {
                wavefront_size: 4,
                num_compute_units: 2,
                waves_per_cu: 2,
                ..DeviceConfig::radeon_5870()
            },
            devices: 2,
            estimate_workers: 2,
            queue_capacity: 8,
            max_batch_jobs: 4,
            batch_window: Duration::from_millis(10),
            ..ServiceConfig::default()
        }
    }

    fn fast_pipeline(seed: u64) -> PipelineConfig {
        PipelineConfig {
            seed,
            chain: tracto::mcmc::ChainConfig {
                num_burnin: 40,
                num_samples: 3,
                sample_interval: 2,
                ..tracto::mcmc::ChainConfig::fast_test()
            },
            ..PipelineConfig::fast()
        }
    }

    fn ready(priority: Priority, deadline_at: Option<Instant>) -> ReadyTrack {
        ready_for("default", priority, deadline_at)
    }

    fn ready_for(tenant: &str, priority: Priority, deadline_at: Option<Instant>) -> ReadyTrack {
        ReadyTrack {
            config: fast_pipeline(0),
            seeds: Vec::new(),
            samples: Arc::new(SampleVolumes::zeros(tracto_volume::Dim3::new(1, 1, 1), 1)),
            stop_mask: None,
            cache_hit: false,
            deadline_at,
            priority,
            retry_budget: None,
            tenant: tenant.to_string(),
            ticket: Ticket::new(JobId(0)),
        }
    }

    #[test]
    fn admission_orders_priority_then_deadline() {
        let now = Instant::now();
        let long = Some(now + Duration::from_secs(60));
        let short = Some(now + Duration::from_secs(1));
        // FIFO arrival: normal/no-deadline, normal/long, normal/short,
        // low/short, high/no-deadline.
        let mut window = [
            (0u32, ready(Priority::Normal, None)),
            (1, ready(Priority::Normal, long)),
            (2, ready(Priority::Normal, short)),
            (3, ready(Priority::Low, short)),
            (4, ready(Priority::High, None)),
        ];
        window.sort_by(|a, b| cmp_admission(&a.1, &b.1));
        let order: Vec<u32> = window.iter().map(|(id, _)| *id).collect();
        // High priority beats any deadline in a lower band; within the
        // normal band the short-deadline job jumps the queue and undated
        // jobs keep FIFO order behind every dated one.
        assert_eq!(order, vec![4, 2, 1, 0, 3]);
    }

    /// Property test over the admission order: `cmp_admission` must be a
    /// total order (antisymmetric, transitive) that ranks priority above
    /// deadline and sorts no-deadline jobs behind every dated job in
    /// their band. Exercised over a deterministic LCG-generated corpus.
    #[test]
    fn cmp_admission_is_a_total_order() {
        let base = Instant::now();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut jobs = Vec::new();
        for _ in 0..48 {
            let priority = match next() % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            };
            let deadline_at = match next() % 4 {
                0 => None,
                k => Some(base + Duration::from_millis(100 * k * (1 + next() % 7))),
            };
            jobs.push(ready(priority, deadline_at));
        }
        use std::cmp::Ordering::*;
        for a in &jobs {
            assert_eq!(cmp_admission(a, a), Equal, "reflexivity");
            for b in &jobs {
                let ab = cmp_admission(a, b);
                assert_eq!(ab, cmp_admission(b, a).reverse(), "antisymmetry");
                // Priority dominates: a higher-priority job never sorts
                // after a lower-priority one, whatever the deadlines.
                if a.priority > b.priority {
                    assert_eq!(ab, Less, "priority must dominate deadline");
                }
                // Within a band, a dated job beats an undated one.
                if a.priority == b.priority && a.deadline_at.is_some() && b.deadline_at.is_none() {
                    assert_eq!(ab, Less, "no-deadline jobs sort last in band");
                }
                for c in &jobs {
                    let bc = cmp_admission(b, c);
                    if ab == bc && ab != Equal {
                        assert_eq!(cmp_admission(a, c), ab, "transitivity");
                    }
                    if ab == Equal && bc == Equal {
                        assert_eq!(cmp_admission(a, c), Equal, "equivalence classes");
                    }
                }
            }
        }
    }

    #[test]
    fn admission_window_is_tenant_fair_within_a_band() {
        // Tenant `a` floods the queue; tenant `b` has two jobs. A window
        // of four must carry both of b's jobs, not four of a's.
        let mut pending: Vec<ReadyTrack> = Vec::new();
        for _ in 0..6 {
            pending.push(ready_for("a", Priority::Normal, None));
        }
        for _ in 0..2 {
            pending.push(ready_for("b", Priority::Normal, None));
        }
        let mut rotor = 0;
        let admitted = admit_batch(&mut pending, 4, &mut rotor);
        let b_jobs = admitted.iter().filter(|r| r.tenant == "b").count();
        assert_eq!(admitted.len(), 4);
        assert_eq!(b_jobs, 2, "fair admission must not starve tenant b");
        assert_eq!(pending.len(), 4, "the rest of a's backlog stays queued");
        // Priority still dominates fairness: a lone high-priority job from
        // the flooding tenant leads the next window; the advanced rotor
        // hands the next normal-band slot to tenant b.
        pending.push(ready_for("b", Priority::Normal, None));
        pending.insert(0, ready_for("a", Priority::High, None));
        let admitted = admit_batch(&mut pending, 2, &mut rotor);
        assert_eq!(admitted[0].priority, Priority::High);
        assert_eq!(admitted[1].tenant, "b", "band fairness below the high job");
        // Even a width-1 window cannot starve anyone: the rotor hands the
        // lead to each tenant in turn.
        pending.push(ready_for("b", Priority::Normal, None));
        pending.push(ready_for("b", Priority::Normal, None));
        let mut lead = std::collections::BTreeSet::new();
        for _ in 0..2 {
            let one = admit_batch(&mut pending, 1, &mut rotor);
            lead.insert(one[0].tenant.clone());
        }
        assert_eq!(lead.len(), 2, "rotation alternates the leading tenant");
    }

    #[test]
    fn rate_limited_tenants_shed_with_a_typed_retry_hint() {
        use tracto_trace::ErrorKind;
        let mut cfg = small_config();
        cfg.rate_limit = 1.0; // burst of 1, then 1 job/sec
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(31);
        let first = service
            .try_submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(1)).with_tenant("greedy"))
            .expect("burst capacity admits the first job");
        let err = match service
            .try_submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(2)).with_tenant("greedy"))
        {
            Err(err) => err,
            Ok(_) => panic!("the second submission must exceed the bucket"),
        };
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Capacity);
                assert!(cause.to_string().contains("retry_after_ms="));
                assert!(
                    tracto_proto::capacity_retry_after(cause).is_some(),
                    "clients must be able to recover the hint"
                );
            }
            other => panic!("expected a typed capacity shed, got {other}"),
        }
        // Another tenant's bucket is untouched by greedy's exhaustion.
        let other = service
            .try_submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(3)).with_tenant("patient"))
            .expect("rate limits are per tenant");
        first.wait_track().expect("admitted job completes");
        other.wait_track().expect("other tenant's job completes");
        let snap = service.shutdown();
        assert_eq!(snap.rate_limited, 1);
        assert_eq!(snap.completed, 2);
        let greedy = snap.tenants.iter().find(|t| t.name == "greedy").unwrap();
        assert_eq!(greedy.submitted, 2);
        assert_eq!(greedy.completed, 1);
        assert_eq!(greedy.shed, 1);
        let patient = snap.tenants.iter().find(|t| t.name == "patient").unwrap();
        assert_eq!(patient.shed, 0);
    }

    #[test]
    fn provably_infeasible_deadlines_shed_at_submit_once_floor_is_known() {
        use tracto_trace::ErrorKind;
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(32);
        // Establish the service floor with a real batch.
        service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(4)))
            .wait_track()
            .expect("warm job");
        let floor = service.shared.service_ewma_ms.load(Ordering::Relaxed);
        assert!(floor >= 1, "a completed batch must establish the floor");
        // Force an unmissable shed: pretend the floor is enormous.
        service
            .shared
            .service_ewma_ms
            .store(60_000, Ordering::Relaxed);
        let err = service
            .submit(
                JobSpec::track(Arc::clone(&ds), fast_pipeline(5))
                    .with_deadline(Duration::from_millis(5)),
            )
            .wait()
            .expect_err("a 5ms deadline under a 30s floor is infeasible");
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Capacity);
                assert!(cause.to_string().contains("below service floor"));
            }
            other => panic!("expected a capacity shed, got {other}"),
        }
        // An undated job is never shed by the feasibility check.
        service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(6)))
            .wait_track()
            .expect("undated jobs still run");
        let snap = service.shutdown();
        assert_eq!(snap.sheds, 1);
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.deadline_hits, 0, "no deadlined job ever finished");
    }

    #[test]
    fn prep_queue_pops_in_admission_order_and_drains_after_close() {
        let ds = tiny_dataset(71);
        let task = |id: u64, priority: Priority, deadline: Option<Duration>| {
            let mut spec =
                JobSpec::track(Arc::clone(&ds), fast_pipeline(id)).with_priority(priority);
            if let Some(d) = deadline {
                spec = spec.with_deadline(d);
            }
            PrepTask {
                spec,
                ticket: Ticket::new(JobId(id)),
            }
        };
        let q = PrepQueue::new(8);
        q.push(task(1, Priority::Low, None)).ok().unwrap();
        q.push(task(2, Priority::Normal, Some(Duration::from_secs(9))))
            .ok()
            .unwrap();
        q.push(task(3, Priority::Normal, Some(Duration::from_secs(1))))
            .ok()
            .unwrap();
        q.push(task(4, Priority::High, None)).ok().unwrap();
        q.push(task(5, Priority::Normal, None)).ok().unwrap();
        q.close();
        // Highest band first; nearest deadline within a band; an undated
        // job sorts behind every dated peer; close still drains the queue.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|t| t.ticket.id.0)).collect();
        assert_eq!(order, vec![4, 3, 2, 5, 1]);
        assert!(q.pop().is_none(), "closed and drained");
        assert!(
            matches!(
                q.try_push(task(6, Priority::High, None)),
                Err(TryPushError::Closed(_))
            ),
            "pushes after close are refused"
        );
        // A full queue refuses non-blocking pushes without dropping jobs.
        let q = PrepQueue::new(2);
        q.push(task(7, Priority::Normal, None)).ok().unwrap();
        q.push(task(8, Priority::Normal, None)).ok().unwrap();
        assert!(matches!(
            q.try_push(task(9, Priority::Normal, None)),
            Err(TryPushError::Full(_))
        ));
        assert_eq!(
            q.pop().map(|t| t.ticket.id.0),
            Some(7),
            "FIFO within equals"
        );
    }

    #[test]
    fn doomed_mcmc_jobs_shed_at_prep_unless_their_samples_are_cached() {
        use tracto_trace::ErrorKind;
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(33);
        // Warm the cache (and the estimation EWMA) with a real run.
        service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(4)))
            .wait_track()
            .expect("warm job");
        assert!(
            service.shared.estimate_ewma_ms.load(Ordering::Relaxed) >= 1,
            "a cache miss must establish the estimation floor"
        );
        // Pretend estimation costs a minute: a dated cache-miss job is now
        // provably doomed and must shed at the prep stage, typed.
        service
            .shared
            .estimate_ewma_ms
            .store(60_000, Ordering::Relaxed);
        let err = service
            .submit(
                JobSpec::track(Arc::clone(&ds), fast_pipeline(5))
                    .with_deadline(Duration::from_secs(5)),
            )
            .wait()
            .expect_err("a 5s deadline cannot cover a 60s estimation");
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Capacity);
                assert!(cause.to_string().contains("below estimation cost"));
                assert!(tracto_proto::capacity_retry_after(cause).is_some());
            }
            other => panic!("expected a typed capacity shed, got {other}"),
        }
        // The same dated spec with *cached* samples is free to run: the
        // feasibility probe must not shed a job estimation costs nothing.
        service
            .submit(
                JobSpec::track(Arc::clone(&ds), fast_pipeline(4))
                    .with_deadline(Duration::from_secs(5)),
            )
            .wait_track()
            .expect("cached samples make the deadline feasible");
        let snap = service.shutdown();
        assert_eq!(snap.sheds, 1);
        assert_eq!(snap.completed, 2);
    }

    #[test]
    fn doomed_low_priority_jobs_demote_to_tensorline_instead_of_shedding() {
        let mut cfg = small_config();
        cfg.approx_low = true;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(34);
        service
            .shared
            .estimate_ewma_ms
            .store(60_000, Ordering::Relaxed);
        // A low-priority MCMC job that cannot afford estimation drops to
        // the estimation-free tensorline tier and still completes in time.
        let result = service
            .submit(
                JobSpec::track(Arc::clone(&ds), fast_pipeline(6))
                    .with_priority(Priority::Low)
                    .with_deadline(Duration::from_secs(30)),
            )
            .wait_track()
            .expect("demoted job completes on the fast tier");
        assert!(
            result.tracking.total_steps > 0,
            "the demoted job still tracks"
        );
        // A normal-priority sibling has no tier to fall to: it sheds.
        service
            .submit(
                JobSpec::track(Arc::clone(&ds), fast_pipeline(7))
                    .with_deadline(Duration::from_secs(5)),
            )
            .wait()
            .expect_err("normal priority has no demotion tier");
        let snap = service.shutdown();
        assert_eq!(snap.demotions, 1);
        assert_eq!(snap.sheds, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.deadline_hits, 1, "the demoted job beat its deadline");
    }

    #[test]
    fn slo_counters_survive_a_service_restart() {
        let dir = tmp_state_dir("slo");
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        let before;
        {
            let service = TractoService::start(cfg.clone());
            service
                .submit(
                    JobSpec::from_wire(&wire_track(9))
                        .unwrap()
                        .with_deadline(Duration::from_secs(60)),
                )
                .wait_track()
                .expect("deadlined job completes in time");
            before = service.shutdown();
            assert_eq!(before.deadline_hits, 1);
            assert_eq!(before.completed, 1);
        }
        let service = TractoService::start(cfg);
        let after = service.metrics();
        assert_eq!(after.submitted, before.submitted, "counters seed from disk");
        assert_eq!(after.completed, before.completed);
        assert_eq!(after.deadline_hits, before.deadline_hits);
        let tenant = after.tenants.iter().find(|t| t.name == "default").unwrap();
        assert_eq!(tenant.completed, 1, "per-tenant counters persist too");
        service
            .submit(JobSpec::from_wire(&wire_track(9)).unwrap())
            .wait_track()
            .expect("post-restart job completes");
        let last = service.shutdown();
        assert_eq!(last.completed, before.completed + 1, "strictly monotone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_deadline_job_completes_under_load() {
        let mut cfg = small_config();
        cfg.max_batch_jobs = 2;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(7);
        // Warm the cache so the batch worker sees all jobs close together.
        service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(2)))
            .wait_track()
            .expect("warm job");
        let mut tickets = Vec::new();
        for _ in 0..4 {
            tickets.push(service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(2))));
        }
        let urgent = service.submit(
            JobSpec::track(Arc::clone(&ds), fast_pipeline(2))
                .with_priority(Priority::High)
                .with_deadline(Duration::from_secs(30)),
        );
        urgent.wait_track().expect("urgent job completes");
        for t in tickets {
            t.wait_track().expect("background jobs complete");
        }
        service.shutdown();
    }

    #[test]
    fn estimate_then_track_hits_cache() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(1);
        let cfg = fast_pipeline(7);
        let est = service.submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed));
        let est = est.wait_estimate().expect("estimation succeeds");
        assert!(!est.cache_hit, "first estimation is a miss");
        assert!(est.voxels > 0);

        let track = service.submit(JobSpec::track(Arc::clone(&ds), cfg));
        let result = track.wait_track().expect("tracking succeeds");
        assert!(result.cache_hit, "warm cache skips Step 1");
        assert!(result.tracking.total_steps > 0);

        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        assert_eq!(snap.estimations_run, 1, "only the cold job ran MCMC");
        assert!(snap.cache.hits >= 1);
    }

    #[test]
    fn cache_bypass_always_recomputes() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(9);
        let cfg = fast_pipeline(5);
        // Two bypass jobs: neither reads nor warms the cache.
        for _ in 0..2 {
            service
                .submit(
                    JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed)
                        .with_cache(CachePolicy::Bypass),
                )
                .wait_estimate()
                .expect("bypass estimation succeeds");
        }
        // A read-only job misses (nothing was written) and writes nothing.
        let ro = service
            .submit(
                JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed)
                    .with_cache(CachePolicy::ReadOnly),
            )
            .wait_estimate()
            .expect("read-only estimation succeeds");
        assert!(!ro.cache_hit, "bypass jobs must not have warmed the cache");
        // A read-write job still misses, then warms the cache for the last.
        let rw = service
            .submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed))
            .wait_estimate()
            .expect("read-write estimation succeeds");
        assert!(!rw.cache_hit, "read-only jobs must not have written");
        let warm = service
            .submit(JobSpec::estimate(Arc::clone(&ds), cfg.chain, cfg.seed))
            .wait_estimate()
            .expect("warm estimation succeeds");
        assert!(warm.cache_hit, "read-write job warmed the cache");
        let snap = service.shutdown();
        assert_eq!(snap.estimations_run, 4, "only the warm job skipped MCMC");
    }

    #[test]
    fn phantom_datasets_materialize_once() {
        let service = TractoService::start(small_config());
        let recipe = tracto_proto::DatasetSpec {
            kind: "single".into(),
            scale: 0.05,
            seed: 3,
            snr: None,
            upload: None,
        };
        // Warm first so the two remaining jobs deterministically hit the
        // cache instead of racing both estimate workers on a cold key.
        service
            .submit(JobSpec::track(recipe.clone(), fast_pipeline(6)))
            .wait_track()
            .expect("warm phantom job");
        let tickets: Vec<_> = (0..2)
            .map(|_| service.submit(JobSpec::track(recipe.clone(), fast_pipeline(6))))
            .collect();
        for t in tickets {
            t.wait_track().expect("phantom jobs complete");
        }
        assert_eq!(service.shared.phantoms.lock().len(), 1, "one build, shared");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.estimations_run, 1, "identical recipes share the cache");
    }

    #[test]
    fn bad_phantom_recipe_fails_typed() {
        use tracto_trace::ErrorKind;
        let service = TractoService::start(small_config());
        let recipe = tracto_proto::DatasetSpec::new("klein-bottle");
        let err = service
            .submit(JobSpec::track(recipe, fast_pipeline(1)))
            .wait()
            .expect_err("unknown recipe must fail");
        match err {
            JobError::Failed(cause) => assert_eq!(cause.kind(), ErrorKind::Config),
            other => panic!("expected a typed config failure, got {other}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.failed, 1);
    }

    #[test]
    fn concurrent_jobs_share_batches() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(2);
        // Warm the cache so all four jobs arrive at the batch worker close
        // together.
        let warm = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(3)));
        warm.wait_track().expect("warm job");
        // Same dataset + estimation config ⇒ same cache key for all four.
        let tickets: Vec<_> = (0..4)
            .map(|_| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(3))))
            .collect();
        for t in &tickets {
            let r = t.wait_track().expect("batched job succeeds");
            assert!(r.batch_jobs >= 1);
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 5);
        // Four cache-warm jobs cannot need four cold MCMC runs.
        assert_eq!(snap.estimations_run, 1);
        assert!(snap.mean_batch_occupancy >= 1.0);
    }

    #[test]
    fn cancellation_before_work() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(3);
        let ticket = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(1)));
        ticket.cancel();
        // Depending on timing the job is either cancelled or completed —
        // cancellation is advisory — but it must terminate either way.
        let result = ticket.wait();
        if let Err(e) = &result {
            assert_eq!(*e, JobError::Cancelled);
        }
        service.drain();
        let snap = service.shutdown();
        assert_eq!(snap.cancelled + snap.completed, 1);
    }

    #[test]
    fn winning_cancel_counts_as_cancelled_even_if_work_finished() {
        // The cancel/fulfill race, driven to both outcomes: whatever the
        // ticket reports, the metrics must agree with it.
        for seed in 0..6 {
            let service = TractoService::start(small_config());
            let ds = tiny_dataset(20 + seed);
            let ticket = service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(seed)));
            let won = ticket.cancel();
            let result = ticket.wait();
            let snap = service.shutdown();
            match result {
                Err(JobError::Cancelled) => {
                    assert_eq!(snap.cancelled, 1, "ticket said cancelled; metrics must too");
                    assert_eq!(snap.completed, 0);
                }
                Ok(_) => {
                    assert!(!won, "a winning cancel can never observe success");
                    assert_eq!(snap.completed, 1);
                    assert_eq!(snap.cancelled, 0);
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn immediate_deadline_rejected() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(4);
        let job = JobSpec::track(Arc::clone(&ds), fast_pipeline(1)).with_deadline(Duration::ZERO);
        let err = service.submit(job).wait().expect_err("deadline must fire");
        assert_eq!(err, JobError::DeadlineExceeded);
        let snap = service.shutdown();
        assert_eq!(snap.deadline_exceeded, 1);
    }

    #[test]
    fn drain_waits_for_everything() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(5);
        let tickets: Vec<_> = (0..3)
            .map(|i| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(i))))
            .collect();
        service.drain();
        for t in tickets {
            assert!(
                t.try_result().is_some(),
                "drain returned before a job finished"
            );
        }
        assert_eq!(service.metrics().in_flight, 0);
    }

    #[test]
    fn device_loss_mid_service_jobs_still_complete() {
        let mut cfg = small_config();
        // One transient launch failure on device 0 and a permanent loss of
        // device 1: every job must still complete via retry + failover.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 launch-fail\nfault 1 0 device-lost").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(11);
        let tickets: Vec<_> = (0..3)
            .map(|_| service.submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(4))))
            .collect();
        for t in tickets {
            t.wait_track()
                .expect("jobs survive device loss via failover");
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.faults_injected, 2, "both plan events fired");
        assert_eq!(snap.device_retries, 1);
        assert_eq!(snap.failovers, 1);
        assert_eq!(snap.devices_total, 2);
        assert_eq!(snap.devices_alive, 1);
    }

    #[test]
    fn retry_budget_exhaustion_surfaces_typed_device_error() {
        use std::error::Error;
        use tracto_trace::ErrorKind;

        let mut cfg = small_config();
        cfg.devices = 1;
        cfg.retry_budget = 1;
        cfg.retry_backoff = Duration::from_millis(1);
        // Allocation faults escape the pool (nothing to fail over to for an
        // admission-time fault), so the first run and the one retry both
        // die; the budget is then spent.
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 alloc-fail\nfault 0 1 alloc-fail").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(12);
        let err = service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(5)))
            .wait()
            .expect_err("retry budget must run out");
        match &err {
            JobError::Failed(cause) => {
                assert_eq!(cause.kind(), ErrorKind::Device);
                assert!(cause.to_string().contains("device"));
            }
            other => panic!("expected a typed device failure, got {other}"),
        }
        assert!(err.source().is_some(), "typed cause stays chained");
        let snap = service.shutdown();
        assert_eq!(snap.failed, 1);
        assert_eq!(snap.job_retries, 1, "exactly one backoff retry ran");
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.completed, 0);
    }

    #[test]
    fn per_job_retry_budget_overrides_service_budget() {
        use tracto_trace::ErrorKind;

        let mut cfg = small_config();
        cfg.devices = 1;
        cfg.retry_budget = 5; // generous service-wide budget…
        cfg.retry_backoff = Duration::from_millis(1);
        cfg.fault_plan =
            Some(FaultPlan::parse("fault 0 0 alloc-fail\nfault 0 1 alloc-fail").unwrap());
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(13);
        // …but this job opts out of retries entirely: the first fault kills it.
        let err = service
            .submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(5)).with_retry_budget(0))
            .wait()
            .expect_err("zero per-job budget fails on the first fault");
        match &err {
            JobError::Failed(cause) => assert_eq!(cause.kind(), ErrorKind::Device),
            other => panic!("expected a typed device failure, got {other}"),
        }
        let snap = service.shutdown();
        assert_eq!(snap.job_retries, 0, "no retries despite the service budget");
        assert_eq!(snap.faults_injected, 1, "second fault event never fired");
    }

    #[test]
    fn try_submit_backpressure_shape() {
        let mut cfg = small_config();
        cfg.queue_capacity = 1;
        cfg.estimate_workers = 1;
        let service = TractoService::start(cfg);
        let ds = tiny_dataset(6);
        let mut accepted = Vec::new();
        let mut rejected = 0;
        for i in 0..16 {
            match service.try_submit(JobSpec::track(Arc::clone(&ds), fast_pipeline(i))) {
                Ok(t) => accepted.push(t),
                Err(JobError::QueueFull) => rejected += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!accepted.is_empty(), "some jobs must get through");
        for t in accepted {
            t.wait_track().expect("accepted jobs complete");
        }
        let snap = service.shutdown();
        // Every submission is accounted for: completed or rejected.
        assert_eq!(snap.completed + rejected, 16);
    }

    fn tmp_state_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tracto-svc-state-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wire_track(seed: u64) -> tracto_proto::JobSpec {
        let mut wire = tracto_proto::JobSpec::track(tracto_proto::DatasetSpec {
            kind: "single".into(),
            scale: 0.05,
            seed: 3,
            snr: None,
            upload: None,
        });
        wire.chain = tracto_proto::ChainSpec {
            burnin: 40,
            samples: 3,
            interval: 2,
        };
        wire.seed = seed;
        wire
    }

    #[test]
    fn journaled_wire_jobs_recover_and_complete_after_crash() {
        use crate::journal::JobJournal;
        let dir = tmp_state_dir("recover");
        let wire = wire_track(4);
        // Session 1: accept the job durably, then "crash" before running it
        // (drop with no terminal record).
        {
            let (journal, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
            assert!(recovery.jobs.is_empty());
            journal.submitted(5, &wire);
            journal.admitted(5);
        }
        // Session 2: the restarted service replays the journal and re-runs
        // the job under its original id.
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        cfg.checkpoint_every = 1;
        let service = TractoService::start(cfg);
        let recovered = service.recover();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, 5, "recovery preserves job ids");
        let out = recovered[0]
            .1
            .wait_track()
            .expect("recovered job completes");
        assert!(out.tracking.total_steps > 0);
        // Fresh submissions allocate above every journaled id.
        let fresh = service.submit(JobSpec::from_wire(&wire).unwrap());
        assert!(fresh.id.0 > 5, "fresh id {} must exceed 5", fresh.id.0);
        fresh.wait_track().expect("fresh job completes");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 2);
        // Session 3: everything finished, so nothing is left to recover.
        let (_j, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        assert!(
            recovery.jobs.is_empty(),
            "terminal records settle the journal"
        );
        assert_eq!(recovery.max_seen_id, fresh.id.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_jobs_settle_the_journal_and_local_jobs_skip_it() {
        use crate::journal::JobJournal;
        let dir = tmp_state_dir("settle");
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        let service = TractoService::start(cfg);
        service
            .submit(JobSpec::from_wire(&wire_track(6)).unwrap())
            .wait_track()
            .expect("wire job completes");
        // An in-process dataset has no wire form: it must run fine and
        // never touch the journal.
        service
            .submit(JobSpec::track(tiny_dataset(15), fast_pipeline(1)))
            .wait_track()
            .expect("local job completes");
        service.shutdown();
        let (_j, recovery) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
        assert!(recovery.jobs.is_empty());
        assert_eq!(
            recovery.max_seen_id, 1,
            "only the wire job (id 1) was journaled"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimation_persists_checkpoints_under_the_state_dir() {
        use tracto_trace::RingSink;
        let dir = tmp_state_dir("ckpt");
        let ring = Arc::new(RingSink::new(4096));
        let mut cfg = small_config();
        cfg.state_dir = Some(dir.clone());
        cfg.checkpoint_every = 1;
        cfg.tracer = Tracer::shared(Arc::clone(&ring) as _);
        let service = TractoService::start(cfg);
        let mut wire = wire_track(8);
        wire.kind = tracto_proto::JobKind::Estimate;
        wire.cache = CachePolicy::Bypass;
        service
            .submit(JobSpec::from_wire(&wire).unwrap())
            .wait_estimate()
            .expect("estimation completes");
        service.shutdown();
        assert!(
            ring.count("ckpt.save") >= 1,
            "persistent checkpoints must be written during estimation"
        );
        // A completed run discards its snapshot: the store holds nothing.
        let ckpts: Vec<_> = std::fs::read_dir(dir.join("checkpoints"))
            .unwrap()
            .filter_map(|e| e.ok())
            .collect();
        assert!(ckpts.is_empty(), "completed runs leave no snapshots");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_route() {
        let service = TractoService::start(small_config());
        let ds = tiny_dataset(8);
        let cfg = fast_pipeline(2);
        let est = service.submit_estimate(EstimateJob {
            dataset: Arc::clone(&ds),
            prior: cfg.prior,
            chain: cfg.chain,
            seed: cfg.seed,
        });
        assert!(est.wait_estimate().expect("estimate shim works").voxels > 0);
        let track = service.submit_track(TrackJob::new(Arc::clone(&ds), cfg.clone()));
        assert!(
            track
                .wait_track()
                .expect("track shim works")
                .tracking
                .total_steps
                > 0
        );
        let t = service
            .try_submit_track(TrackJob::new(Arc::clone(&ds), cfg))
            .expect("try shim accepts");
        t.wait_track().expect("try shim job completes");
        let snap = service.shutdown();
        assert_eq!(snap.completed, 3);
    }
}
