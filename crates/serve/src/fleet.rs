//! Fleet mode: consistent-hash job placement, journal replication, and
//! host-death takeover.
//!
//! Three pieces, all riding the existing `tracto-proto` wire protocol:
//!
//! - **[`ReplicaStore`]** — the standby side of journal replication. A
//!   member started with `--replicate-to` streams every write-ahead
//!   journal record to its standby over `replicate` frames; the standby
//!   appends them (fsync'd, strictly sequenced) under
//!   `<state-dir>/replica/<source>.jsonl`. A sequence gap is refused and
//!   the source re-syncs with `reset`, so the replica is always a prefix
//!   of the source's journal plus nothing invented.
//! - **[`HashRing`]** — consistent-hash placement over the member set,
//!   keyed by [`placement_key`] (the Step-1 sample-cache identity of a
//!   job). Repeat submissions of the same cache key land on the same
//!   member, so its warm sample cache keeps paying; a member's death
//!   moves only its arc of the ring to the successors.
//! - **[`Fleet`]** — a thin coordinator. Clients connect to it exactly as
//!   they would to a single server (it negotiates protocol v1, so
//!   `submit`/`await`/`status`/`cancel` work unchanged); it routes each
//!   job by placement key, remembers `fleet id → (member, member job id,
//!   spec)`, and monitors members with `ping` heartbeats. When a member
//!   misses enough heartbeats it is declared dead: the coordinator tells
//!   the standby to `takeover` the dead member's replicated journal —
//!   the standby replays it with the same scan its own restart would use
//!   ([`replay_text`](crate::journal::replay_text)) and re-enqueues the
//!   unfinished jobs — then re-points the registry at the adopted ids and
//!   re-routes the dead member's hash range. Jobs the replica never saw
//!   (killed mid-handshake) are re-submitted from the coordinator's own
//!   spec copy. Determinism makes all of this safe: a re-run job is
//!   bit-identical to the original, so clients cannot observe which host
//!   answered.

use crate::listener::{bind_endpoint, ConnStream, Listener};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{ErrorKind as IoKind, Read, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto_proto::{
    placement_key, write_frame, Endpoint, FleetWire, FrameBuf, JobState, MemberWire, MetricsWire,
    RemoteService, Request, Response, PROTOCOL_VERSION_MIN,
};
use tracto_trace::{Tracer, TractoError, TractoResult, Value};

// ---------------------------------------------------------------------------
// Replica store (standby side)
// ---------------------------------------------------------------------------

struct SourceState {
    file: File,
    /// Sequence number of the next record this replica expects.
    next: u64,
}

/// Fsync'd storage for replicated journals, one JSONL file per source
/// member under `<state-dir>/replica/`. Appends are strictly sequenced:
/// `reset` starts the file over (a source re-syncing after a reconnect),
/// and a `first_seq` that is not exactly the next expected record is a
/// refused gap — the replica never holds a journal with silent holes.
pub struct ReplicaStore {
    root: PathBuf,
    sources: Mutex<HashMap<String, SourceState>>,
}

fn valid_source(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

impl ReplicaStore {
    /// Open (or create) the replica root, restoring per-source sequence
    /// state from the record counts of existing files so replication
    /// resumes across a standby restart.
    pub fn open(root: &Path) -> TractoResult<ReplicaStore> {
        fs::create_dir_all(root).map_err(TractoError::from)?;
        let mut sources = HashMap::new();
        for entry in fs::read_dir(root).map_err(TractoError::from)? {
            let entry = entry.map_err(TractoError::from)?;
            let path = entry.path();
            let Some(stem) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".jsonl"))
            else {
                continue;
            };
            let next = fs::read_to_string(&path)
                .map(|t| t.lines().count() as u64)
                .unwrap_or(0);
            let file = OpenOptions::new()
                .append(true)
                .open(&path)
                .map_err(TractoError::from)?;
            sources.insert(stem.to_string(), SourceState { file, next });
        }
        Ok(ReplicaStore {
            root: root.to_path_buf(),
            sources: Mutex::new(sources),
        })
    }

    fn path_of(&self, source: &str) -> PathBuf {
        self.root.join(format!("{source}.jsonl"))
    }

    /// Append replicated records for `source`, enforcing the sequence
    /// contract. Returns the next expected sequence number.
    pub fn append(
        &self,
        source: &str,
        first_seq: u64,
        reset: bool,
        records: &[String],
    ) -> TractoResult<u64> {
        if !valid_source(source) {
            return Err(TractoError::protocol(format!(
                "invalid replication source name `{source}`"
            )));
        }
        if records.iter().any(|r| r.contains('\n')) {
            return Err(TractoError::protocol(
                "replicated journal record contains a newline",
            ));
        }
        let mut sources = self.sources.lock();
        let path = self.path_of(source);
        if reset {
            let file = File::create(&path).map_err(TractoError::from)?;
            sources.insert(
                source.to_string(),
                SourceState {
                    file,
                    next: first_seq,
                },
            );
        }
        let Some(state) = sources.get_mut(source) else {
            return Err(TractoError::protocol(format!(
                "replication gap for `{source}`: no replica on this host, expected a reset"
            )));
        };
        if first_seq != state.next {
            return Err(TractoError::protocol(format!(
                "replication gap for `{source}`: expected seq {}, got {first_seq} \
                 (re-sync with reset)",
                state.next
            )));
        }
        for record in records {
            writeln!(state.file, "{record}").map_err(TractoError::from)?;
        }
        state.file.sync_data().map_err(TractoError::from)?;
        state.next += records.len() as u64;
        Ok(state.next)
    }

    /// Consume the replicated journal of `source` for takeover: returns
    /// its full text and removes the replica (the dead member's journal
    /// has been acted on; a resurrected source must re-sync with `reset`).
    /// A source that never replicated yields empty text — takeover of a
    /// member with no surviving records is a no-op, not an error.
    pub fn take(&self, source: &str) -> TractoResult<String> {
        if !valid_source(source) {
            return Err(TractoError::protocol(format!(
                "invalid replication source name `{source}`"
            )));
        }
        let mut sources = self.sources.lock();
        sources.remove(source);
        let path = self.path_of(source);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == IoKind::NotFound => String::new(),
            Err(e) => return Err(TractoError::from(e)),
        };
        let _ = fs::remove_file(&path);
        Ok(text)
    }

    /// The next sequence number expected from `source` (for tests and
    /// `fleet_status` style introspection).
    pub fn next_seq(&self, source: &str) -> Option<u64> {
        self.sources.lock().get(source).map(|s| s.next)
    }
}

// ---------------------------------------------------------------------------
// Replicator (source side)
// ---------------------------------------------------------------------------

/// Records per `replicate` frame. Small enough to keep frames far under
/// the cap even with embedded job specs, large enough to drain a journal
/// snapshot in a handful of round trips.
const REPL_BATCH: usize = 256;

/// Spawn the detached replication thread for a member: it holds the full
/// journal record log in memory (seeded with the compacted on-disk
/// snapshot, extended by the journal's mirror channel) and keeps the
/// standby's replica in sync, re-syncing from zero with `reset` after any
/// reconnect. The thread exits when the journal (the channel sender) is
/// dropped, after one final flush attempt.
pub(crate) fn spawn_replicator(
    source: String,
    target: Endpoint,
    snapshot: Vec<String>,
    rx: Receiver<String>,
    tracer: Tracer,
) {
    std::thread::Builder::new()
        .name("tracto-replicator".into())
        .spawn(move || replicator_loop(&source, &target, snapshot, &rx, &tracer))
        .expect("spawn replicator thread");
}

fn replicator_loop(
    source: &str,
    target: &Endpoint,
    mut log: Vec<String>,
    rx: &Receiver<String>,
    tracer: &Tracer,
) {
    let mut conn: Option<RemoteService> = None;
    // Records the standby has acknowledged on the *current* connection.
    let mut acked: u64 = 0;
    loop {
        let mut closed = false;
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                log.push(line);
                while let Ok(line) = rx.try_recv() {
                    log.push(line);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => closed = true,
        }
        if acked < log.len() as u64 || conn.is_none() && !log.is_empty() {
            if let Err(err) = sync(source, target, &log, &mut conn, &mut acked, tracer) {
                conn = None;
                if tracer.enabled() {
                    tracer.emit(
                        "fleet.replication_error",
                        &[
                            ("source", Value::Text(source.to_string())),
                            ("error", Value::Text(err.to_string())),
                        ],
                    );
                }
                if closed {
                    return; // final flush failed; nothing more will arrive
                }
                // Back off before the next attempt so a down standby is
                // probed at the heartbeat cadence, not in a hot loop.
                std::thread::sleep(Duration::from_millis(200));
            }
        }
        if closed {
            return;
        }
    }
}

/// Bring the standby's replica up to date with `log`. A fresh connection
/// always starts with a full `reset` re-sync — the source cannot know what
/// the standby kept across either side's restarts, and journals are small
/// (compaction keeps only unfinished jobs).
fn sync(
    source: &str,
    target: &Endpoint,
    log: &[String],
    conn: &mut Option<RemoteService>,
    acked: &mut u64,
    tracer: &Tracer,
) -> TractoResult<()> {
    if conn.is_none() {
        *conn = Some(RemoteService::connect(target, "tracto-replicator")?);
        *acked = 0;
        let first = log.get(..REPL_BATCH.min(log.len())).unwrap_or(&[]).to_vec();
        let sent = first.len() as u64;
        let next = conn
            .as_mut()
            .expect("just connected")
            .replicate(source, 0, true, first)?;
        if next != sent {
            return Err(TractoError::protocol(format!(
                "replica acked {next} after a reset of {sent} record(s)"
            )));
        }
        *acked = next;
    }
    let client = conn.as_mut().expect("connected above");
    while *acked < log.len() as u64 {
        let start = *acked as usize;
        let end = (start + REPL_BATCH).min(log.len());
        let batch: Vec<String> = log[start..end].to_vec();
        let sent = batch.len() as u64;
        let next = client.replicate(source, *acked, false, batch)?;
        if next != *acked + sent {
            return Err(TractoError::protocol(format!(
                "replica acked {next}, expected {}",
                *acked + sent
            )));
        }
        *acked = next;
    }
    if tracer.enabled() {
        tracer.emit(
            "fleet.replicated",
            &[
                ("source", Value::Text(source.to_string())),
                ("records", (*acked).into()),
            ],
        );
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------------------

/// Virtual nodes per member: enough to keep arcs statistically even
/// across a handful of members without making the point table large.
const VNODES: u32 = 64;

fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Finalizer over the FNV state (the 64-bit murmur3 avalanche). FNV-1a
/// alone diffuses short, mostly-zero inputs — like a vnode counter —
/// poorly into the high bits, which skews the arc lengths badly; the
/// ring needs its points spread over the whole u64 circle.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// A consistent-hash ring over the fleet's member names. Each member owns
/// [`VNODES`] points; a key routes to the first point at or after it
/// (wrapping). Death does not rebuild the ring — routing just skips dead
/// members' points, so only the dead member's arcs move (to their ring
/// successors) and every other placement is untouched.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, member index)`, sorted by point.
    points: Vec<(u64, usize)>,
    members: usize,
}

impl HashRing {
    /// Build the ring over `names` (order defines member indices).
    pub fn new(names: &[String]) -> HashRing {
        let mut points = Vec::with_capacity(names.len() * VNODES as usize);
        for (idx, name) in names.iter().enumerate() {
            let base = fnv1a(name.as_bytes(), 0xcbf2_9ce4_8422_2325);
            for v in 0..VNODES {
                points.push((mix(fnv1a(&v.to_le_bytes(), base)), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            points,
            members: names.len(),
        }
    }

    /// Member indices in ring order starting from `key`'s successor,
    /// deduplicated: the preferred placement first, then the members that
    /// would inherit it, in takeover order.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.members);
        let start = self.points.partition_point(|&(p, _)| p < key);
        for i in 0..self.points.len() {
            let (_, member) = self.points[(start + i) % self.points.len()];
            if !order.contains(&member) {
                order.push(member);
                if order.len() == self.members {
                    break;
                }
            }
        }
        order
    }

    /// The first live member at or after `key` on the ring.
    pub fn route(&self, key: u64, alive: &[bool]) -> Option<usize> {
        self.candidates(key)
            .into_iter()
            .find(|&m| alive.get(m).copied().unwrap_or(false))
    }
}

// ---------------------------------------------------------------------------
// Fleet coordinator
// ---------------------------------------------------------------------------

/// Coordinator configuration. Members are `(name, endpoint)` pairs; their
/// order fixes member indices and the takeover standby chain (a dead
/// member's journal is adopted by the next live member in this order).
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Endpoint the coordinator listens on.
    pub listen: Endpoint,
    /// The member set, in standby-chain order.
    pub members: Vec<(String, Endpoint)>,
    /// Heartbeat probe interval.
    pub heartbeat: Duration,
    /// Consecutive missed heartbeats before a member is declared dead.
    pub max_misses: u32,
    /// Event sink for `fleet.*` events.
    pub tracer: Tracer,
}

impl FleetConfig {
    /// A config with the default heartbeat policy (500 ms probes, dead
    /// after 3 consecutive misses).
    pub fn new(listen: Endpoint, members: Vec<(String, Endpoint)>) -> FleetConfig {
        FleetConfig {
            listen,
            members,
            heartbeat: Duration::from_millis(500),
            max_misses: 3,
            tracer: Tracer::disabled(),
        }
    }
}

struct MemberSlot {
    name: String,
    endpoint: Endpoint,
    /// Lazily connected data-path connection, shared by handler threads.
    /// Dropped (and reconnected on next use) after any call error.
    conn: Mutex<Option<RemoteService>>,
    alive: AtomicBool,
    misses: AtomicU64,
    routed: AtomicU64,
}

/// Where one fleet job currently lives.
#[derive(Clone)]
struct Placement {
    member: usize,
    remote: u64,
    spec: tracto_proto::JobSpec,
}

struct FleetShared {
    members: Vec<MemberSlot>,
    ring: HashRing,
    /// Fleet job id → current placement. Entries survive completion so
    /// `status`/`await` keep working on settled jobs.
    registry: Mutex<HashMap<u64, Placement>>,
    next_id: AtomicU64,
    routed_total: AtomicU64,
    takeovers: AtomicU64,
    stop: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    tracer: Tracer,
}

impl FleetShared {
    fn alive_vec(&self) -> Vec<bool> {
        self.members
            .iter()
            .map(|m| m.alive.load(Ordering::SeqCst))
            .collect()
    }

    fn request_shutdown(&self) {
        *self.shutdown_requested.lock() = true;
        self.shutdown_cv.notify_all();
    }
}

/// A running fleet coordinator. Bound with [`Fleet::bind`]; serves until
/// [`stop`](Fleet::stop) (or a client's `shutdown` request wakes
/// [`wait_shutdown`](Fleet::wait_shutdown) and the host calls `stop`).
pub struct Fleet {
    shared: Arc<FleetShared>,
    endpoint: Endpoint,
    accept: Option<std::thread::JoinHandle<()>>,
    monitor: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    cleanup: Option<PathBuf>,
}

impl Fleet {
    /// Bind the coordinator endpoint and start the accept loop and the
    /// heartbeat monitor.
    pub fn bind(config: FleetConfig) -> TractoResult<Fleet> {
        if config.members.is_empty() {
            return Err(TractoError::config("a fleet needs at least one member"));
        }
        {
            let mut seen = std::collections::HashSet::new();
            for (name, _) in &config.members {
                if !valid_source(name) {
                    return Err(TractoError::config(format!(
                        "invalid member name `{name}` (use [A-Za-z0-9._-])"
                    )));
                }
                if !seen.insert(name.clone()) {
                    return Err(TractoError::config(format!("duplicate member `{name}`")));
                }
            }
        }
        let names: Vec<String> = config.members.iter().map(|(n, _)| n.clone()).collect();
        let shared = Arc::new(FleetShared {
            members: config
                .members
                .iter()
                .map(|(name, endpoint)| MemberSlot {
                    name: name.clone(),
                    endpoint: endpoint.clone(),
                    conn: Mutex::new(None),
                    alive: AtomicBool::new(true),
                    misses: AtomicU64::new(0),
                    routed: AtomicU64::new(0),
                })
                .collect(),
            ring: HashRing::new(&names),
            registry: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            routed_total: AtomicU64::new(0),
            takeovers: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            tracer: config.tracer.clone(),
        });
        let (listener, bound, cleanup) = bind_endpoint(&config.listen)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| TractoError::io("set listener nonblocking", e))?;
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tracto-fleet-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .map_err(|e| TractoError::io("spawn fleet accept thread", e))?
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            let (hb, misses) = (config.heartbeat, config.max_misses.max(1));
            std::thread::Builder::new()
                .name("tracto-fleet-monitor".into())
                .spawn(move || monitor_loop(&shared, hb, misses))
                .map_err(|e| TractoError::io("spawn fleet monitor thread", e))?
        };
        if shared.tracer.enabled() {
            shared.tracer.emit(
                "fleet.listening",
                &[
                    ("endpoint", Value::Text(bound.to_string())),
                    ("members", (names.len() as u64).into()),
                ],
            );
        }
        Ok(Fleet {
            shared,
            endpoint: bound,
            accept: Some(accept),
            monitor: Some(monitor),
            handlers,
            cleanup,
        })
    }

    /// The endpoint actually bound.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The current topology snapshot (what `fleet_status` answers).
    pub fn status(&self) -> FleetWire {
        fleet_wire(&self.shared)
    }

    /// Block until some client sends a `shutdown` request.
    pub fn wait_shutdown(&self) {
        let mut requested = self.shared.shutdown_requested.lock();
        while !*requested {
            self.shared.shutdown_cv.wait(&mut requested);
        }
    }

    /// Stop accepting, close connections, and join every thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.request_shutdown();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.monitor.take() {
            let _ = h.join();
        }
        for h in self.handlers.lock().drain(..) {
            let _ = h.join();
        }
        if let Some(path) = self.cleanup.take() {
            let _ = fs::remove_file(path);
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

fn accept_loop(
    listener: &Listener,
    shared: &Arc<FleetShared>,
    handlers: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                if let Ok(h) = std::thread::Builder::new()
                    .name("tracto-fleet-conn".into())
                    .spawn(move || handle_conn(&shared, stream))
                {
                    handlers.lock().push(h);
                }
            }
            Err(e) if e.kind() == IoKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One client connection, blocking, thread-per-connection: the
/// coordinator forwards work rather than running it, so its connection
/// count is the fleet's client count, not its job count. The read timeout
/// lets the thread poll the stop flag.
fn handle_conn(shared: &Arc<FleetShared>, stream: ConnStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut stream = stream;
    let mut frames = FrameBuf::new();
    let mut hello_done = false;
    let mut buf = [0u8; 8192];
    'conn: loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Drain complete frames first, then read more bytes.
        loop {
            match frames.next_frame() {
                Ok(Some(payload)) => {
                    if !handle_frame(shared, &mut stream, &payload, &mut hello_done) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = send(&mut stream, &protocol_error(&e.to_string()));
                    break 'conn;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => frames.extend(&buf[..n]),
            Err(e) if e.kind() == IoKind::WouldBlock || e.kind() == IoKind::TimedOut => {}
            Err(e) if e.kind() == IoKind::Interrupted => {}
            Err(_) => break,
        }
    }
    stream.shutdown_both();
}

fn send(stream: &mut ConnStream, response: &Response) -> bool {
    write_frame(stream, &response.encode()).is_ok()
}

fn protocol_error(message: &str) -> Response {
    Response::Error {
        kind: "protocol".into(),
        message: message.into(),
    }
}

fn error_response(e: &TractoError) -> Response {
    Response::Error {
        kind: e.kind().to_string(),
        message: e.to_string(),
    }
}

/// Dispatch one decoded frame; returns `false` when the connection should
/// close.
fn handle_frame(
    shared: &Arc<FleetShared>,
    stream: &mut ConnStream,
    payload: &str,
    hello_done: &mut bool,
) -> bool {
    let request = match Request::decode(payload) {
        Ok(req) => req,
        Err(e) => {
            return send(stream, &protocol_error(&e.to_string())) && *hello_done;
        }
    };
    if let Request::Hello { version, .. } = request {
        if version < PROTOCOL_VERSION_MIN {
            let _ = send(
                stream,
                &protocol_error(&format!(
                    "protocol version mismatch: coordinator speaks 1 (min \
                     {PROTOCOL_VERSION_MIN}), client sent {version}"
                )),
            );
            return false;
        }
        *hello_done = true;
        // The coordinator always negotiates v1: awaits must flow through
        // it as forwardable requests (so they survive a takeover remap),
        // not as per-member event subscriptions held by the client.
        return send(
            stream,
            &Response::Hello {
                version: PROTOCOL_VERSION_MIN,
                server: "tracto-fleet".into(),
                member: None,
            },
        );
    }
    if !*hello_done {
        let _ = send(stream, &protocol_error("first request must be `hello`"));
        return false;
    }
    match request {
        Request::Hello { .. } => unreachable!("handled above"),
        Request::Submit(spec) => {
            let response = fleet_submit(shared, *spec);
            send(stream, &response)
        }
        Request::Status { job } => {
            let response = fleet_status_of(shared, job);
            send(stream, &response)
        }
        Request::Await { job, timeout_ms } => {
            let response = fleet_await(shared, job, timeout_ms);
            send(stream, &response)
        }
        Request::Cancel { job } => {
            let response = match lookup(shared, job) {
                Err(r) => r,
                Ok(p) => match member_call(shared, p.member, |c| c.cancel(p.remote)) {
                    Ok(cancelled) => Response::Cancelled { job, cancelled },
                    Err(e) => error_response(&e),
                },
            };
            send(stream, &response)
        }
        Request::Metrics => {
            let response = fleet_metrics(shared);
            send(stream, &response)
        }
        Request::Ping => send(
            stream,
            &Response::Pong {
                member: "fleet".into(),
            },
        ),
        Request::FleetStatus => send(stream, &Response::Fleet(Box::new(fleet_wire(shared)))),
        Request::Route(spec) => {
            let key = placement_key(&spec);
            let response = match shared.ring.route(key, &shared.alive_vec()) {
                Some(idx) => Response::Routed {
                    member: shared.members[idx].name.clone(),
                },
                None => Response::Error {
                    kind: "config".into(),
                    message: "no live fleet members".into(),
                },
            };
            send(stream, &response)
        }
        Request::Drain => {
            let mut failed = None;
            for (idx, m) in shared.members.iter().enumerate() {
                if !m.alive.load(Ordering::SeqCst) {
                    continue;
                }
                if let Err(e) = member_call(shared, idx, |c| c.drain()) {
                    failed = Some(e);
                }
            }
            let response = match failed {
                None => Response::Drained,
                Some(e) => error_response(&e),
            };
            send(stream, &response)
        }
        Request::Shutdown => {
            let _ = send(stream, &Response::ShuttingDown);
            shared.request_shutdown();
            false
        }
        Request::Subscribe { .. }
        | Request::UploadBegin { .. }
        | Request::UploadChunk { .. }
        | Request::UploadCommit { .. } => send(
            stream,
            &protocol_error(
                "the fleet coordinator speaks v1: connect to a member directly for \
                 subscriptions and uploads",
            ),
        ),
        Request::Replicate { .. } | Request::Takeover { .. } => send(
            stream,
            &Response::Error {
                kind: "config".into(),
                message: "the fleet coordinator is not a member (replication targets \
                          a member's --state-dir)"
                    .into(),
            },
        ),
    }
}

/// Run `f` on the (lazily connected) shared data connection to member
/// `idx`. Any error drops the cached connection so the next call
/// reconnects from scratch.
fn member_call<T>(
    shared: &FleetShared,
    idx: usize,
    f: impl FnOnce(&mut RemoteService) -> TractoResult<T>,
) -> TractoResult<T> {
    let slot = &shared.members[idx];
    let mut guard = slot.conn.lock();
    if guard.is_none() {
        *guard = Some(RemoteService::connect_with_retry(
            &slot.endpoint,
            "tracto-fleet",
            1,
            Duration::from_millis(10),
        )?);
    }
    let conn = guard.as_mut().expect("connected above");
    match f(conn) {
        Ok(v) => Ok(v),
        Err(e) => {
            *guard = None;
            Err(e)
        }
    }
}

fn lookup(shared: &FleetShared, job: u64) -> Result<Placement, Response> {
    shared
        .registry
        .lock()
        .get(&job)
        .cloned()
        .ok_or(Response::Error {
            kind: "protocol".into(),
            message: format!("unknown job id {job}"),
        })
}

fn fleet_submit(shared: &FleetShared, spec: tracto_proto::JobSpec) -> Response {
    let key = placement_key(&spec);
    let alive = shared.alive_vec();
    let mut last_err: Option<TractoError> = None;
    for idx in shared.ring.candidates(key) {
        if !alive[idx] {
            continue;
        }
        match member_call(shared, idx, |c| c.submit(spec.clone())) {
            Ok(remote) => {
                let job = shared.next_id.fetch_add(1, Ordering::Relaxed);
                shared.registry.lock().insert(
                    job,
                    Placement {
                        member: idx,
                        remote,
                        spec,
                    },
                );
                shared.members[idx].routed.fetch_add(1, Ordering::Relaxed);
                shared.routed_total.fetch_add(1, Ordering::Relaxed);
                if shared.tracer.enabled() {
                    shared.tracer.emit(
                        "fleet.route",
                        &[
                            ("job", job.into()),
                            ("member", Value::Text(shared.members[idx].name.clone())),
                            ("key", Value::Text(format!("{key:016x}"))),
                            ("remote_job", remote.into()),
                        ],
                    );
                }
                return Response::Submitted { job };
            }
            Err(e) if e.kind() == tracto_trace::ErrorKind::Io => {
                // A member that died since the last heartbeat: fall
                // through to its ring successor (the monitor will declare
                // it dead on its own schedule).
                last_err = Some(e);
            }
            Err(e) => return error_response(&e),
        }
    }
    match last_err {
        Some(e) => error_response(&e),
        None => Response::Error {
            kind: "config".into(),
            message: "no live fleet members".into(),
        },
    }
}

fn fleet_status_of(shared: &FleetShared, job: u64) -> Response {
    match lookup(shared, job) {
        Err(r) => r,
        Ok(p) => match member_call(shared, p.member, |c| c.status(p.remote)) {
            Ok(state) => Response::Status { job, state },
            Err(e) => error_response(&e),
        },
    }
}

/// Await slice length: long enough to amortize the forwarded round trip,
/// short enough that a takeover remap is picked up promptly.
const AWAIT_SLICE: Duration = Duration::from_millis(500);

/// Forward an `await` as a re-checking loop: each slice re-reads the
/// registry, so when a takeover re-points the job at the standby the wait
/// follows it transparently — the client keeps its fleet job id and never
/// learns the host changed.
fn fleet_await(shared: &FleetShared, job: u64, timeout_ms: Option<u64>) -> Response {
    let deadline = timeout_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Response::Status {
                job,
                state: JobState::Pending,
            };
        }
        let remaining = match deadline {
            None => AWAIT_SLICE,
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Response::Status {
                        job,
                        state: JobState::Pending,
                    };
                }
                left.min(AWAIT_SLICE)
            }
        };
        let placement = match lookup(shared, job) {
            Err(r) => return r,
            Ok(p) => p,
        };
        match member_call(shared, placement.member, |c| {
            c.await_job(placement.remote, Some(remaining.as_millis() as u64))
        }) {
            Ok(JobState::Pending) => {}
            Ok(state) => return Response::Status { job, state },
            Err(_) => {
                // The member is unreachable; give the monitor a beat to
                // declare it dead and remap, then re-read the registry.
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn fleet_metrics(shared: &FleetShared) -> Response {
    let mut totals: Option<MetricsWire> = None;
    let mut polled = 0u64;
    for (idx, m) in shared.members.iter().enumerate() {
        if !m.alive.load(Ordering::SeqCst) {
            continue;
        }
        if let Ok(snap) = member_call(shared, idx, |c| c.metrics()) {
            polled += 1;
            totals = Some(match totals {
                None => snap,
                Some(t) => sum_metrics(t, snap),
            });
        }
    }
    match totals {
        Some(m) => Response::Metrics(Box::new(m)),
        None => Response::Error {
            kind: "io".into(),
            message: format!("no live fleet members answered metrics (polled {polled})"),
        },
    }
}

/// Fold two member snapshots: counters add; the `mean_*`/occupancy gauges
/// average (coarsely — a fleet-wide mean of means, good enough for a
/// health read; per-member truth is one `metrics --connect MEMBER` away).
fn sum_metrics(a: MetricsWire, b: MetricsWire) -> MetricsWire {
    MetricsWire {
        submitted: a.submitted + b.submitted,
        completed: a.completed + b.completed,
        failed: a.failed + b.failed,
        cancelled: a.cancelled + b.cancelled,
        deadline_exceeded: a.deadline_exceeded + b.deadline_exceeded,
        in_flight: a.in_flight + b.in_flight,
        batches: a.batches + b.batches,
        batch_jobs: a.batch_jobs + b.batch_jobs,
        mean_batch_occupancy: (a.mean_batch_occupancy + b.mean_batch_occupancy) / 2.0,
        lanes_tracked: a.lanes_tracked + b.lanes_tracked,
        launches: a.launches + b.launches,
        mean_wavefront_utilization: (a.mean_wavefront_utilization + b.mean_wavefront_utilization)
            / 2.0,
        estimations_run: a.estimations_run + b.estimations_run,
        faults_injected: a.faults_injected + b.faults_injected,
        device_retries: a.device_retries + b.device_retries,
        job_retries: a.job_retries + b.job_retries,
        failovers: a.failovers + b.failovers,
        devices_alive: a.devices_alive + b.devices_alive,
        devices_total: a.devices_total + b.devices_total,
        tracking_sim_s: a.tracking_sim_s + b.tracking_sim_s,
        overlap_saved_sim_s: a.overlap_saved_sim_s + b.overlap_saved_sim_s,
        stream_occupancy: (a.stream_occupancy + b.stream_occupancy) / 2.0,
        estimation_sim_s: a.estimation_sim_s + b.estimation_sim_s,
        cache_hits: a.cache_hits + b.cache_hits,
        cache_misses: a.cache_misses + b.cache_misses,
        cache_evictions: a.cache_evictions + b.cache_evictions,
        cache_bytes: a.cache_bytes + b.cache_bytes,
        cache_entries: a.cache_entries + b.cache_entries,
        remote_jobs: a.remote_jobs + b.remote_jobs,
        deadline_hits: a.deadline_hits + b.deadline_hits,
        sheds: a.sheds + b.sheds,
        demotions: a.demotions + b.demotions,
        rate_limited: a.rate_limited + b.rate_limited,
        tenants: sum_tenants(a.tenants, b.tenants),
    }
}

/// Merge two per-tenant counter lists by tenant name, keeping the
/// fleet-wide list sorted so repeated folds stay deterministic.
fn sum_tenants(
    a: Vec<tracto_proto::TenantWire>,
    b: Vec<tracto_proto::TenantWire>,
) -> Vec<tracto_proto::TenantWire> {
    let mut merged: std::collections::BTreeMap<String, tracto_proto::TenantWire> =
        a.into_iter().map(|t| (t.name.clone(), t)).collect();
    for t in b {
        let slot = merged
            .entry(t.name.clone())
            .or_insert_with(|| tracto_proto::TenantWire {
                name: t.name.clone(),
                ..Default::default()
            });
        slot.submitted += t.submitted;
        slot.completed += t.completed;
        slot.shed += t.shed;
    }
    merged.into_values().collect()
}

fn fleet_wire(shared: &FleetShared) -> FleetWire {
    FleetWire {
        members: shared
            .members
            .iter()
            .map(|m| MemberWire {
                name: m.name.clone(),
                endpoint: m.endpoint.to_string(),
                alive: m.alive.load(Ordering::SeqCst),
                jobs_routed: m.routed.load(Ordering::Relaxed),
                heartbeat_misses: m.misses.load(Ordering::Relaxed),
            })
            .collect(),
        takeovers: shared.takeovers.load(Ordering::Relaxed),
        jobs_routed: shared.routed_total.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Heartbeat monitor + takeover
// ---------------------------------------------------------------------------

/// Probe a member's liveness on a dedicated throwaway connection, so a
/// data connection busy forwarding a long `await` slice never masks (or
/// delays) death detection. `NoHeartbeat` still proves liveness — an old
/// server that answers anything at all is up.
fn probe(endpoint: &Endpoint) -> TractoResult<()> {
    let mut conn = RemoteService::connect(endpoint, "tracto-fleet-hb")?;
    conn.ping().map(|_| ())
}

fn monitor_loop(shared: &Arc<FleetShared>, heartbeat: Duration, max_misses: u32) {
    while !shared.stop.load(Ordering::SeqCst) {
        // Sleep in small slices so stop is prompt.
        let wake = Instant::now() + heartbeat;
        while Instant::now() < wake {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        for idx in 0..shared.members.len() {
            let slot = &shared.members[idx];
            if !slot.alive.load(Ordering::SeqCst) {
                continue;
            }
            match probe(&slot.endpoint) {
                Ok(()) => slot.misses.store(0, Ordering::Relaxed),
                Err(err) => {
                    let misses = slot.misses.fetch_add(1, Ordering::Relaxed) + 1;
                    if shared.tracer.enabled() {
                        shared.tracer.emit(
                            "fleet.heartbeat_miss",
                            &[
                                ("member", Value::Text(slot.name.clone())),
                                ("misses", misses.into()),
                                ("error", Value::Text(err.to_string())),
                            ],
                        );
                    }
                    if misses >= u64::from(max_misses) {
                        declare_dead(shared, idx);
                    }
                }
            }
        }
    }
}

/// The takeover state machine, all on the monitor thread: mark the member
/// dead (its ring arcs fall to the successors immediately), tell the
/// standby to adopt the replicated journal, then re-point the registry —
/// adopted jobs by their `(original, adopted)` id pairs, and jobs the
/// replica never saw by re-submitting the coordinator's own spec copy.
/// Either path re-runs deterministically, so results stay bit-identical.
fn declare_dead(shared: &Arc<FleetShared>, idx: usize) {
    let slot = &shared.members[idx];
    slot.alive.store(false, Ordering::SeqCst);
    *slot.conn.lock() = None;
    shared.takeovers.fetch_add(1, Ordering::Relaxed);
    if shared.tracer.enabled() {
        shared.tracer.emit(
            "fleet.member_dead",
            &[("member", Value::Text(slot.name.clone()))],
        );
    }
    let n = shared.members.len();
    let standby = (1..n)
        .map(|k| (idx + k) % n)
        .find(|&j| shared.members[j].alive.load(Ordering::SeqCst));
    let Some(standby) = standby else {
        if shared.tracer.enabled() {
            shared.tracer.emit(
                "fleet.no_standby",
                &[("member", Value::Text(slot.name.clone()))],
            );
        }
        return;
    };
    // Adopt the replicated journal. A failure here degrades, not aborts:
    // every stranded job still gets re-submitted from the registry below.
    let adopted: HashMap<u64, u64> = member_call(shared, standby, |c| c.takeover(&slot.name))
        .map(|pairs| pairs.into_iter().collect())
        .unwrap_or_default();
    let stranded: Vec<(u64, Placement)> = shared
        .registry
        .lock()
        .iter()
        .filter(|(_, p)| p.member == idx)
        .map(|(&id, p)| (id, p.clone()))
        .collect();
    let mut remapped = 0u64;
    let mut resubmitted = 0u64;
    for (fleet_id, placement) in stranded {
        let new_remote = match adopted.get(&placement.remote) {
            Some(&id) => {
                remapped += 1;
                Some(id)
            }
            None => match member_call(shared, standby, |c| c.submit(placement.spec.clone())) {
                Ok(id) => {
                    resubmitted += 1;
                    Some(id)
                }
                Err(_) => None, // standby also unreachable; its own death will re-run this
            },
        };
        if let Some(remote) = new_remote {
            shared.registry.lock().insert(
                fleet_id,
                Placement {
                    member: standby,
                    remote,
                    spec: placement.spec,
                },
            );
        }
    }
    if shared.tracer.enabled() {
        shared.tracer.emit(
            "fleet.takeover",
            &[
                ("source", Value::Text(slot.name.clone())),
                ("standby", Value::Text(shared.members[standby].name.clone())),
                ("adopted", remapped.into()),
                ("resubmitted", resubmitted.into()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("m{i}")).collect()
    }

    #[test]
    fn ring_routing_is_deterministic_and_total() {
        let ring = HashRing::new(&names(3));
        let alive = vec![true, true, true];
        for key in [0u64, 1, u64::MAX, 0xdead_beef, 0x1234_5678_9abc_def0] {
            let a = ring.route(key, &alive);
            let b = ring.route(key, &alive);
            assert_eq!(a, b, "routing must be deterministic");
            assert!(a.is_some(), "a live ring always routes");
        }
    }

    #[test]
    fn ring_spreads_keys_across_members() {
        let ring = HashRing::new(&names(3));
        let alive = vec![true, true, true];
        let mut counts = [0usize; 3];
        for i in 0..3000u64 {
            // `mix` models a well-distributed placement key, so the count
            // bound measures arc balance, not the key generator.
            let key = mix(fnv1a(&i.to_le_bytes(), 0xcbf2_9ce4_8422_2325));
            counts[ring.route(key, &alive).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 600,
                "member {i} owns only {c}/3000 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn death_moves_only_the_dead_members_keys() {
        let ring = HashRing::new(&names(3));
        let all = vec![true, true, true];
        let without1 = vec![true, false, true];
        let mut moved = 0;
        let mut kept = 0;
        for i in 0..2000u64 {
            let key = fnv1a(&i.to_le_bytes(), 0x9e37_79b9_7f4a_7c15);
            let before = ring.route(key, &all).unwrap();
            let after = ring.route(key, &without1).unwrap();
            if before == 1 {
                assert_ne!(after, 1, "keys must leave the dead member");
                moved += 1;
            } else {
                assert_eq!(before, after, "survivors' keys must not move");
                kept += 1;
            }
        }
        assert!(moved > 0 && kept > 0, "both cases must be exercised");
    }

    #[test]
    fn candidates_start_with_the_preferred_member() {
        let ring = HashRing::new(&names(4));
        for key in [7u64, 1 << 40, u64::MAX / 3] {
            let order = ring.candidates(key);
            assert_eq!(order.len(), 4, "every member appears once");
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
            assert_eq!(
                order[0],
                ring.route(key, &[true; 4]).unwrap(),
                "first candidate is the live route"
            );
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tracto-fleet-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn replica_store_enforces_the_sequence_contract() {
        let dir = tmp("seq");
        let store = ReplicaStore::open(&dir).unwrap();
        let recs = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // First contact without reset is a refused gap.
        let err = store.append("a", 0, false, &recs(&["r0"])).unwrap_err();
        assert!(err.to_string().contains("reset"), "{err}");
        assert_eq!(store.append("a", 0, true, &recs(&["r0", "r1"])).unwrap(), 2);
        assert_eq!(store.append("a", 2, false, &recs(&["r2"])).unwrap(), 3);
        // A gap (skipping seq 3) is refused and changes nothing.
        let err = store.append("a", 5, false, &recs(&["r5"])).unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
        assert_eq!(store.next_seq("a"), Some(3));
        // Reset re-syncs from scratch.
        assert_eq!(store.append("a", 0, true, &recs(&["x0"])).unwrap(), 1);
        let text = store.take("a").unwrap();
        assert_eq!(text, "x0\n");
        // Taken: the next append must reset again.
        assert!(store.append("a", 1, false, &recs(&["x1"])).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replica_store_restores_sequence_across_reopen() {
        let dir = tmp("reopen");
        {
            let store = ReplicaStore::open(&dir).unwrap();
            store
                .append("host-a", 0, true, &["r0".into(), "r1".into()])
                .unwrap();
        }
        let store = ReplicaStore::open(&dir).unwrap();
        assert_eq!(store.next_seq("host-a"), Some(2));
        assert_eq!(store.append("host-a", 2, false, &["r2".into()]).unwrap(), 3);
        assert_eq!(store.take("host-a").unwrap(), "r0\nr1\nr2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_source_names_are_rejected() {
        let dir = tmp("names");
        let store = ReplicaStore::open(&dir).unwrap();
        for name in ["", "../escape", "a/b", "a b", &"x".repeat(65)] {
            assert!(store.append(name, 0, true, &[]).is_err(), "{name:?}");
            assert!(store.take(name).is_err(), "{name:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
