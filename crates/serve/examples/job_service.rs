//! End-to-end tour of the job service: three clients share one service;
//! two of them track the same dataset (the second rides the sample cache),
//! and concurrent submissions merge into shared batched launches.
//!
//! Run with: `cargo run --release -p tracto-serve --example job_service`

use std::sync::Arc;
use std::time::Duration;
use tracto::mcmc::ChainConfig;
use tracto::phantom::datasets::DatasetSpec;
use tracto::pipeline::PipelineConfig;
use tracto_serve::{JobSpec, ServiceConfig, TractoService};
use tracto_volume::Dim3;

fn dataset(name: &str, seed: u64) -> Arc<tracto::phantom::Dataset> {
    Arc::new(
        DatasetSpec {
            name: name.into(),
            dims: Dim3::new(12, 8, 8),
            spacing_mm: 2.5,
            n_dirs: 12,
            n_b0: 2,
            bval: 1000.0,
            snr: Some(25.0),
            seed,
        }
        .build(),
    )
}

fn config() -> PipelineConfig {
    PipelineConfig {
        chain: ChainConfig {
            num_samples: 10,
            ..ChainConfig::fast_test()
        },
        ..PipelineConfig::fast()
    }
}

fn main() {
    let service = TractoService::start(ServiceConfig {
        devices: 2,
        estimate_workers: 2,
        max_batch_jobs: 8,
        batch_window: Duration::from_millis(25),
        ..ServiceConfig::default()
    });

    let bundle = dataset("bundle", 11);
    let crossing = dataset("crossing", 22);
    let cfg = config();

    // Client A warms the cache explicitly.
    let est = service
        .submit(JobSpec::estimate(Arc::clone(&bundle), cfg.chain, cfg.seed))
        .wait_estimate()
        .expect("estimation");
    println!(
        "estimate(bundle): {} voxels, cache_hit={}",
        est.voxels, est.cache_hit
    );

    // Clients B and C submit tracking jobs concurrently: B re-uses A's
    // samples (cache hit), C brings a cold dataset. Their lanes share
    // batched launches whenever they land in the same window.
    let tickets = vec![
        (
            "bundle/warm",
            service.submit(JobSpec::track(Arc::clone(&bundle), cfg.clone())),
        ),
        (
            "crossing/cold",
            service.submit(JobSpec::track(Arc::clone(&crossing), cfg.clone())),
        ),
        (
            "bundle/warm-2",
            service.submit(JobSpec::track(Arc::clone(&bundle), cfg.clone())),
        ),
    ];
    for (label, ticket) in tickets {
        let r = ticket.wait_track().expect("tracking");
        println!(
            "track({label}): {} total steps, cache_hit={}, batch of {} job(s) / {} lanes",
            r.tracking.total_steps, r.cache_hit, r.batch_jobs, r.batch_lanes
        );
    }

    service.drain();
    println!("\n--- service metrics ---\n{}", service.shutdown());
}
