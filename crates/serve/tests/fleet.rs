//! Fleet-layer integration: journal replication over the socket, member
//! takeover, and the consistent-hash coordinator — all in-process, so
//! every timing knob is ours. The cross-process SIGKILL variant lives in
//! `tracto-cli/tests/fleet_e2e.rs`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto_proto::{
    ChainSpec, DatasetSpec, Endpoint, JobKind, JobState, Outcome, PingReply, RemoteService,
    TrackSpec,
};
use tracto_serve::{
    replay_text, Fleet, FleetConfig, JobJournal, ReplicaStore, ServiceConfig, SocketServer,
    TractoService,
};
use tracto_trace::Tracer;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_fleet_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A tiny deterministic tracking job; `seed` varies placement and result.
fn wire_job(seed: u64) -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(DatasetSpec {
        kind: "single".into(),
        scale: 0.05,
        seed: 3,
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: 30,
        samples: 2,
        interval: 1,
    };
    spec.seed = seed;
    spec.kind = JobKind::Track(TrackSpec {
        step: 0.1,
        threshold: 0.9,
        max_steps: 60,
    });
    spec
}

fn digest_of(state: &JobState) -> u64 {
    match state {
        JobState::Done(Outcome::Track { lengths_digest, .. }) => *lengths_digest,
        other => panic!("expected a finished track job, got {other:?}"),
    }
}

/// Write a journal with a mix of finished and unfinished jobs; return its
/// raw lines and the ids `recover()` would re-enqueue.
fn sample_journal(dir: &Path) -> (Vec<String>, Vec<u64>) {
    let (journal, recovery) = JobJournal::open(dir, Tracer::disabled()).unwrap();
    assert!(recovery.jobs.is_empty());
    journal.submitted(1, &wire_job(1));
    journal.admitted(1);
    journal.completed(1); // finished: must NOT recover
    journal.submitted(2, &wire_job(2));
    journal.admitted(2);
    journal.checkpointed(2, "abcd1234abcd1234"); // unfinished with checkpoint
    journal.submitted(3, &wire_job(3));
    journal.admitted(3);
    journal.cancelled(3); // finished
    journal.submitted(4, &wire_job(4)); // unfinished, never admitted
    let lines: Vec<String> = journal
        .snapshot_text()
        .lines()
        .map(|l| l.to_string())
        .collect();
    (lines, vec![2, 4])
}

/// Satellite property: for every split point, replaying a replicated
/// prefix plus the live tail yields the same pending-job set as the
/// original host's own recovery scan.
#[test]
fn replica_prefix_plus_tail_replays_like_recover() {
    let dir = tmp("prefix");
    let (lines, want_pending) = sample_journal(&dir.join("src"));
    // Reference: what the original host's restart would recover.
    let (_, reference) = JobJournal::open(&dir.join("src"), Tracer::disabled()).unwrap();
    let ref_ids: Vec<u64> = reference.jobs.iter().map(|j| j.id).collect();
    assert_eq!(ref_ids, want_pending, "fixture sanity");

    for split in 0..=lines.len() {
        let store = ReplicaStore::open(&dir.join(format!("replica{split}"))).unwrap();
        // The prefix arrives as the post-connect reset sync...
        store.append("src", 0, true, &lines[..split]).unwrap();
        // ...and the tail as live acked appends.
        store
            .append("src", split as u64, false, &lines[split..])
            .unwrap();
        let text = store.take("src").unwrap();
        let replica = replay_text(&text, &Tracer::disabled());
        let ids: Vec<u64> = replica.jobs.iter().map(|j| j.id).collect();
        assert_eq!(ids, ref_ids, "split at {split} diverged");
        assert_eq!(replica.max_seen_id, reference.max_seen_id, "split {split}");
        for (a, b) in replica.jobs.iter().zip(reference.jobs.iter()) {
            assert_eq!(a.spec, b.spec, "spec drift at split {split}");
            assert_eq!(a.checkpoint, b.checkpoint, "checkpoint at split {split}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The journal mirror tees exactly the lines that hit the disk, in order.
#[test]
fn journal_mirror_tees_every_record() {
    let dir = tmp("mirror");
    let (journal, _) = JobJournal::open(&dir, Tracer::disabled()).unwrap();
    let (tx, rx) = crossbeam::channel::unbounded();
    journal.set_mirror(tx);
    journal.submitted(7, &wire_job(7));
    journal.admitted(7);
    journal.completed(7);
    let mut mirrored = Vec::new();
    while let Ok(line) = rx.try_recv() {
        mirrored.push(line);
    }
    let on_disk: Vec<String> = journal
        .snapshot_text()
        .lines()
        .map(|l| l.to_string())
        .collect();
    assert_eq!(mirrored, on_disk);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Member side of takeover over the real socket: replicate a dead host's
/// journal in, adopt it, and the re-enqueued job completes bit-identically
/// to a direct submission of the same spec.
#[test]
fn member_adopts_a_replicated_journal_on_takeover() {
    let dir = tmp("takeover");
    let service = Arc::new(TractoService::start(
        ServiceConfig::builder()
            .state_dir(dir.join("state"))
            .member("standby")
            .build()
            .unwrap(),
    ));
    let server =
        SocketServer::bind(Arc::clone(&service), &Endpoint::Unix(dir.join("b.sock"))).unwrap();
    let mut client = RemoteService::connect(server.endpoint(), "fleet-test").unwrap();
    assert_eq!(client.server_member.as_deref(), Some("standby"));
    match client.ping().unwrap() {
        PingReply::Heartbeat { member } => assert_eq!(member, "standby"),
        PingReply::NoHeartbeat => panic!("v3 server must answer ping"),
    }

    // Reference digest: the same spec submitted directly.
    let direct = client.submit(wire_job(11)).unwrap();
    let want = digest_of(&client.await_job(direct, Some(60_000)).unwrap());

    // A dead member's journal: job 5 accepted but unfinished.
    let (lines, _) = {
        let (journal, _) = JobJournal::open(&dir.join("dead"), Tracer::disabled()).unwrap();
        journal.submitted(5, &wire_job(11));
        journal.admitted(5);
        (
            journal
                .snapshot_text()
                .lines()
                .map(|l| l.to_string())
                .collect::<Vec<_>>(),
            (),
        )
    };
    let next = client
        .replicate("deadhost", 0, true, lines.clone())
        .unwrap();
    assert_eq!(next, lines.len() as u64);

    let pairs = client.takeover("deadhost").unwrap();
    assert_eq!(pairs.len(), 1);
    assert_eq!(pairs[0].0, 5, "original id travels back");
    let adopted = pairs[0].1;
    let got = digest_of(&client.await_job(adopted, Some(60_000)).unwrap());
    assert_eq!(got, want, "adopted re-run must be bit-identical");

    // The replica was consumed: a second takeover has nothing to adopt.
    assert!(client.takeover("deadhost").unwrap().is_empty());
    // A gapped append after the take is refused until the source resets.
    assert!(client
        .replicate("deadhost", lines.len() as u64, false, vec!["x".into()])
        .is_err());

    drop(client);
    server.stop();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

struct Member {
    server: Option<SocketServer>,
    service: Option<Arc<TractoService>>,
}

impl Member {
    fn start(dir: &Path, name: &'static str, replicate_to: Option<&Endpoint>) -> Member {
        let mut builder = ServiceConfig::builder()
            .state_dir(dir.join(name).join("state"))
            .checkpoint_every(1)
            .member(name);
        if let Some(target) = replicate_to {
            builder = builder.replicate_to(target.clone());
        }
        let service = Arc::new(TractoService::start(builder.build().unwrap()));
        let endpoint = Endpoint::Unix(dir.join(format!("{name}.sock")));
        let server = SocketServer::bind(Arc::clone(&service), &endpoint).unwrap();
        Member {
            server: Some(server),
            service: Some(service),
        }
    }

    fn endpoint(&self) -> Endpoint {
        self.server.as_ref().unwrap().endpoint().clone()
    }

    /// Simulate host death: tear the socket down and drop the service.
    fn kill(&mut self) {
        if let Some(s) = self.server.take() {
            s.stop();
        }
        self.service.take();
    }
}

impl Drop for Member {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The full loop: consistent-hash routing, heartbeat death detection,
/// journal takeover, and bit-identical results across a member death —
/// all through one coordinator endpoint the client never has to leave.
#[test]
fn coordinator_routes_jobs_and_survives_member_death() {
    let dir = tmp("coord");
    // b is the standby: a replicates its journal to b.
    let b = Member::start(&dir, "b", None);
    let a = Member::start(&dir, "a", Some(&b.endpoint()));
    let mut a = a;
    let mut config = FleetConfig::new(
        Endpoint::Unix(dir.join("fleet.sock")),
        vec![("a".into(), a.endpoint()), ("b".into(), b.endpoint())],
    );
    config.heartbeat = Duration::from_millis(100);
    config.max_misses = 2;
    let fleet = Fleet::bind(config).unwrap();
    let mut client = RemoteService::connect(fleet.endpoint(), "fleet-test").unwrap();
    assert_eq!(client.server_version, 1, "coordinator always negotiates v1");

    // Placement is deterministic: `route` answers the same member every
    // time, and repeat submissions of one spec land on that member.
    let spec = wire_job(21);
    let first = client.route(spec.clone()).unwrap();
    for _ in 0..3 {
        assert_eq!(client.route(spec.clone()).unwrap(), first);
    }

    // Submit a handful of jobs and collect their fault-free digests.
    let specs: Vec<_> = (20..24).map(wire_job).collect();
    let mut digests = Vec::new();
    for spec in &specs {
        let job = client.submit(spec.clone()).unwrap();
        digests.push(digest_of(&client.await_job(job, Some(60_000)).unwrap()));
    }
    let status = client.fleet_status().unwrap();
    assert_eq!(status.jobs_routed, 4);
    assert!(status.members.iter().all(|m| m.alive));
    assert_eq!(status.members.iter().map(|m| m.jobs_routed).sum::<u64>(), 4);

    // Kill member a. The monitor must declare it dead and hand its hash
    // range (and journal) to b.
    a.kill();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let status = client.fleet_status().unwrap();
        let a_dead = status.members.iter().any(|m| m.name == "a" && !m.alive);
        if a_dead {
            assert!(status.takeovers >= 1, "death must be a recorded takeover");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "member death was never detected: {status}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Same specs, same coordinator, one member down: identical results.
    for (spec, want) in specs.iter().zip(&digests) {
        let job = client.submit(spec.clone()).unwrap();
        let got = digest_of(&client.await_job(job, Some(60_000)).unwrap());
        assert_eq!(got, *want, "digest changed across member death");
    }
    // Everything now routes to the survivor.
    assert_eq!(client.route(wire_job(21)).unwrap(), "b");

    drop(client);
    fleet.stop();
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
}
