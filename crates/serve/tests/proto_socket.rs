//! Protocol conformance and cross-process fidelity for the socket front
//! end: bit-identical results vs in-process submission, and hostile-input
//! behavior (malformed frames, bad handshakes, mid-job disconnects) that
//! must produce typed errors — never panics or hangs.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use tracto_proto::{
    lengths_digest, read_frame, write_frame, ChainSpec, DatasetSpec, Endpoint, JobKind, JobState,
    Outcome, Priority, RemoteService, Request, Response, TrackSpec, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use tracto_serve::{JobSpec, ServiceConfig, SocketServer, TractoService};

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_proto_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

struct Fixture {
    server: Option<SocketServer>,
    service: Option<Arc<TractoService>>,
    dir: PathBuf,
}

impl Fixture {
    fn start(tag: &str) -> Fixture {
        let dir = tmp(tag);
        let service = Arc::new(TractoService::start(
            ServiceConfig::builder().build().unwrap(),
        ));
        let endpoint = Endpoint::Unix(dir.join("tracto.sock"));
        let server = SocketServer::bind(Arc::clone(&service), &endpoint).unwrap();
        Fixture {
            server: Some(server),
            service: Some(service),
            dir,
        }
    }

    fn server(&self) -> &SocketServer {
        self.server.as_ref().unwrap()
    }

    fn connect(&self) -> RemoteService {
        RemoteService::connect(self.server().endpoint(), "conformance").unwrap()
    }

    fn raw(&self) -> UnixStream {
        let Endpoint::Unix(path) = self.server().endpoint() else {
            panic!("fixture binds unix sockets");
        };
        UnixStream::connect(path).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.server.take().unwrap().stop();
        drop(self.service.take());
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A tiny deterministic tracking job (noiseless so it is cheap).
fn wire_job() -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(DatasetSpec {
        kind: "single".into(),
        scale: 0.05,
        seed: 3,
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: 30,
        samples: 2,
        interval: 1,
    };
    spec.seed = 9;
    spec.kind = JobKind::Track(TrackSpec {
        step: 0.1,
        threshold: 0.9,
        max_steps: 60,
    });
    spec
}

/// Perform the handshake on a raw stream.
fn hello(stream: &mut UnixStream) {
    let req = Request::Hello {
        version: PROTOCOL_VERSION,
        client: "raw".into(),
    };
    write_frame(stream, &req.encode()).unwrap();
    let payload = read_frame(stream).unwrap().expect("hello reply");
    match Response::decode(&payload).unwrap() {
        Response::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected hello, got {other:?}"),
    }
}

fn expect_error(stream: &mut UnixStream, want_kind: &str) -> String {
    let payload = read_frame(stream).unwrap().expect("error reply");
    match Response::decode(&payload).unwrap() {
        Response::Error { kind, message } => {
            assert_eq!(kind, want_kind, "{message}");
            message
        }
        other => panic!("expected an error, got {other:?}"),
    }
}

#[test]
fn socket_results_are_bit_identical_to_in_process() {
    let fx = Fixture::start("bitident");
    let wire = wire_job();

    let mut client = fx.connect();
    let job = client.submit(wire.clone()).unwrap();
    let state = client.await_job(job, None).unwrap();
    let JobState::Done(Outcome::Track {
        total_steps,
        streamlines,
        lengths_digest: remote_digest,
        ..
    }) = state
    else {
        panic!("remote job did not finish: {state:?}");
    };

    // The same wire spec through a *fresh* in-process service — the only
    // shared code path is JobSpec::from_wire, which is the point.
    let local_service = TractoService::start(ServiceConfig::builder().build().unwrap());
    let result = local_service
        .submit(JobSpec::from_wire(&wire).unwrap())
        .wait_track()
        .unwrap();
    assert_eq!(result.tracking.total_steps, total_steps);
    let local_streamlines: u64 = result
        .tracking
        .lengths_by_sample
        .iter()
        .map(|s| s.len() as u64)
        .sum();
    assert_eq!(local_streamlines, streamlines);
    assert_eq!(
        lengths_digest(&result.tracking.lengths_by_sample),
        remote_digest,
        "socket and in-process runs must be bit-identical"
    );
    local_service.shutdown();
}

#[test]
fn connection_survives_decode_errors() {
    let fx = Fixture::start("decode");
    let mut stream = fx.raw();
    hello(&mut stream);

    // Valid frame, invalid JSON: typed error, connection stays up.
    write_frame(&mut stream, "this is not json").unwrap();
    expect_error(&mut stream, "protocol");

    // Valid JSON, unknown request type: same.
    write_frame(&mut stream, r#"{"type":"warp_core_breach"}"#).unwrap();
    let msg = expect_error(&mut stream, "protocol");
    assert!(msg.contains("warp_core_breach"), "{msg}");

    // Submit with a malformed spec: still answered in-band.
    write_frame(&mut stream, r#"{"type":"submit","spec":{"job":"track"}}"#).unwrap();
    expect_error(&mut stream, "protocol");

    // The connection still works after all that.
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("metrics reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Metrics(_)
    ));
}

#[test]
fn newer_client_negotiates_down_to_server_version() {
    // A client from the future is not refused: the server answers with
    // the highest version it speaks and the connection proceeds there.
    let fx = Fixture::start("negotiate");
    let mut stream = fx.raw();
    let req = Request::Hello {
        version: PROTOCOL_VERSION + 1,
        client: "from the future".into(),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("hello reply");
    match Response::decode(&payload).unwrap() {
        Response::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected negotiated hello, got {other:?}"),
    }
    // The negotiated connection works.
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("metrics reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Metrics(_)
    ));
}

#[test]
fn version_below_minimum_is_refused_then_closed() {
    let fx = Fixture::start("version");
    let mut stream = fx.raw();
    let req = Request::Hello {
        version: 0,
        client: "from the past".into(),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let msg = expect_error(&mut stream, "protocol");
    assert!(msg.contains("version") && msg.contains("mismatch"), "{msg}");
    // The server closes after refusing the handshake.
    assert!(read_frame(&mut stream).unwrap().is_none());
}

#[test]
fn first_request_must_be_hello() {
    let fx = Fixture::start("nohello");
    let mut stream = fx.raw();
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    expect_error(&mut stream, "protocol");
    assert!(read_frame(&mut stream).unwrap().is_none());
}

#[test]
fn framing_violations_never_kill_the_server() {
    let fx = Fixture::start("framing");

    // Truncated length prefix, then hangup.
    let mut stream = fx.raw();
    stream.write_all(&[0x00, 0x01]).unwrap();
    drop(stream);

    // Oversized frame announcement.
    let mut stream = fx.raw();
    let huge = (MAX_FRAME_BYTES + 1).to_be_bytes();
    stream.write_all(&huge).unwrap();
    // Whatever the server answers (error frame or close), it must not die.
    let _ = read_frame(&mut stream);
    drop(stream);

    // Length prefix promising bytes that never arrive.
    let mut stream = fx.raw();
    stream.write_all(&128u32.to_be_bytes()).unwrap();
    stream.write_all(b"short").unwrap();
    drop(stream);

    // The server is still accepting and serving.
    let mut client = fx.connect();
    client.metrics().unwrap();
}

#[test]
fn jobs_survive_mid_job_disconnect_and_are_visible_cross_connection() {
    let fx = Fixture::start("disconnect");
    let mut first = fx.connect();
    let job = first.submit(wire_job()).unwrap();
    drop(first); // vanish before the result is ready

    // A different connection can await the same job to completion.
    let mut second = fx.connect();
    let state = second.await_job(job, None).unwrap();
    assert!(
        matches!(state, JobState::Done(Outcome::Track { .. })),
        "job lost after disconnect: {state:?}"
    );

    // Cross-connection cancel answers (the race outcome is either way).
    let mut submitter = fx.connect();
    let mut spec = wire_job();
    spec.priority = Priority::Low;
    let victim = submitter.submit(spec).unwrap();
    let mut canceller = fx.connect();
    let cancelled = canceller.cancel(victim).unwrap();
    let state = canceller.await_job(victim, None).unwrap();
    match (cancelled, state) {
        (true, JobState::Failed { kind, .. }) => assert_eq!(kind, "cancelled"),
        (false, JobState::Done(_)) => {}
        (won, state) => panic!("inconsistent cancel outcome: won={won}, state={state:?}"),
    }
}

#[test]
fn unknown_job_id_is_a_typed_error() {
    let fx = Fixture::start("unknownjob");
    let mut client = fx.connect();
    let err = client.status(987_654).unwrap_err();
    assert_eq!(err.kind(), tracto_trace::ErrorKind::Protocol);
    assert!(err.to_string().contains("987654"), "{err}");
    // The connection survives the error.
    client.metrics().unwrap();
}

#[test]
fn invalid_wire_spec_is_rejected_at_submit() {
    let fx = Fixture::start("badspec");
    let mut client = fx.connect();

    // Parameter validation happens at submit (JobSpec::from_wire): the
    // request is refused in-band and no job is created.
    let mut spec = wire_job();
    spec.chain.samples = 0;
    let err = client.submit(spec).unwrap_err();
    assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{err}");
    assert_eq!(client.metrics().unwrap().submitted, 0);

    // A bad phantom recipe only fails at materialization, so the job is
    // accepted and then settles with a typed config failure.
    let mut spec = wire_job();
    spec.dataset.kind = "klein-bottle".into();
    let job = client.submit(spec).unwrap();
    match client.await_job(job, None).unwrap() {
        JobState::Failed { kind, message } => {
            assert_eq!(kind, "config");
            assert!(message.contains("klein-bottle"), "{message}");
        }
        other => panic!("bad recipe must fail, got {other:?}"),
    }
}

#[test]
fn v3_frames_without_modality_field_get_the_default_modality() {
    let fx = Fixture::start("nomodality");
    let mut stream = fx.raw();
    hello(&mut stream);

    // A pre-modality v3 client encodes a spec with no `modality` /
    // `stop_percentile` keys; the raw frame proves the fields are absent.
    let spec_json = wire_job().to_json_string();
    assert!(!spec_json.contains("modality"), "{spec_json}");
    assert!(!spec_json.contains("stop_percentile"), "{spec_json}");
    let submit = |stream: &mut UnixStream, spec: &str| {
        write_frame(stream, &format!(r#"{{"type":"submit","spec":{spec}}}"#)).unwrap();
        let payload = read_frame(stream).unwrap().expect("submit reply");
        match Response::decode(&payload).unwrap() {
            Response::Submitted { job } => job,
            other => panic!("submit refused: {other:?}"),
        }
    };
    let implicit = submit(&mut stream, &spec_json);
    // The same spec with the default spelled out explicitly.
    let explicit_json = spec_json.replacen('{', r#"{"modality":"mcmc","#, 1);
    let explicit = submit(&mut stream, &explicit_json);

    let mut client = fx.connect();
    let digest = |state: JobState| match state {
        JobState::Done(Outcome::Track { lengths_digest, .. }) => lengths_digest,
        other => panic!("job did not finish: {other:?}"),
    };
    let d_implicit = digest(client.await_job(implicit, None).unwrap());
    let d_explicit = digest(client.await_job(explicit, None).unwrap());
    assert_eq!(
        d_implicit, d_explicit,
        "a frame without the modality field must decode to the default"
    );
}

#[test]
fn analytic_modality_round_trips_over_the_socket() {
    let fx = Fixture::start("analytic");
    let mut client = fx.connect();
    let mut fast = wire_job();
    fast.modality = tracto_proto::Modality::Analytic;

    let outcome = |client: &mut RemoteService, spec: tracto_proto::JobSpec| {
        let job = client.submit(spec).unwrap();
        match client.await_job(job, None).unwrap() {
            JobState::Done(Outcome::Track {
                total_steps,
                lengths_digest,
                ..
            }) => (total_steps, lengths_digest),
            other => panic!("job did not finish: {other:?}"),
        }
    };
    let (mcmc_steps, _) = outcome(&mut client, wire_job());
    let (fast_steps, fast_digest) = outcome(&mut client, fast.clone());
    assert!(
        fast_steps < mcmc_steps,
        "analytic tier must be cheaper ({fast_steps} vs {mcmc_steps} steps)"
    );

    // The analytic spec through a fresh in-process service must land on
    // the same bits the socket run produced.
    let local = TractoService::start(ServiceConfig::builder().build().unwrap());
    let result = local
        .submit(JobSpec::from_wire(&fast).unwrap())
        .wait_track()
        .unwrap();
    assert_eq!(
        lengths_digest(&result.tracking.lengths_by_sample),
        fast_digest,
        "socket and in-process analytic runs must be bit-identical"
    );
    local.shutdown();
}

#[test]
fn tcp_endpoint_round_trips() {
    let service = Arc::new(TractoService::start(
        ServiceConfig::builder().build().unwrap(),
    ));
    let server = SocketServer::bind(
        Arc::clone(&service),
        &Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
    )
    .unwrap();
    let endpoint = server.endpoint().clone();
    assert!(
        !endpoint.to_string().ends_with(":0"),
        "bound endpoint reports the real port, got {endpoint}"
    );
    let mut client = RemoteService::connect(&endpoint, "tcp-test").unwrap();
    let job = client.submit(wire_job()).unwrap();
    let state = client.await_job(job, None).unwrap();
    assert!(matches!(state, JobState::Done(_)), "{state:?}");
    server.stop();
}

#[test]
fn drain_and_shutdown_requests_stop_the_listener() {
    let fx = Fixture::start("shutdown");
    let mut client = fx.connect();
    let job = client.submit(wire_job()).unwrap();
    client.drain().unwrap();
    // After drain, the job must already be settled.
    assert!(matches!(client.status(job).unwrap(), JobState::Done(_)));
    client.shutdown().unwrap();
    // wait_shutdown returns promptly once a client asked for shutdown.
    fx.server().wait_shutdown();
    assert_eq!(fx.server().remote_jobs(), 1);
}
