//! Chaos contract for the serve layer: a seeded fault plan changes the
//! service's timing and scheduling, never its results — and when recovery
//! is impossible, jobs fail with a typed, chained error instead of
//! panicking or hanging.
//!
//! `TRACTO_CHAOS_SEED` (default 1) selects the fault schedule so CI can
//! sweep several without editing the test.

use std::sync::Arc;
use std::time::Duration;
use tracto::mcmc::ChainConfig;
use tracto::phantom::{datasets, Dataset};
use tracto::pipeline::PipelineConfig;
use tracto_gpu_sim::FaultPlan;
use tracto_serve::{JobError, JobSpec, ServiceConfig, TractoService};
use tracto_volume::Dim3;

fn chaos_seed() -> u64 {
    std::env::var("TRACTO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn small_config(seed: u64, max_steps: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::fast();
    cfg.chain = ChainConfig {
        num_burnin: 60,
        num_samples: 3,
        sample_interval: 1,
        ..ChainConfig::fast_test()
    };
    cfg.seed = seed;
    cfg.tracking.max_steps = max_steps;
    cfg
}

fn run_jobs(
    fault_plan: Option<FaultPlan>,
    jobs: &[(Arc<Dataset>, PipelineConfig)],
) -> (
    Vec<tracto_serve::TrackResult>,
    tracto_serve::MetricsSnapshot,
) {
    let service = TractoService::start(ServiceConfig {
        devices: 3,
        estimate_workers: 1,
        max_batch_jobs: 8,
        batch_window: Duration::from_millis(100),
        fault_plan,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(ds, cfg)| service.submit(JobSpec::track(Arc::clone(ds), cfg.clone())))
        .collect();
    let results = tickets
        .iter()
        .map(|t| t.wait_track().expect("job completes despite faults"))
        .collect();
    (results, service.shutdown())
}

#[test]
fn seeded_faults_leave_streamline_counts_bit_identical() {
    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let crossing: Arc<Dataset> =
        Arc::new(datasets::crossing(Dim3::new(8, 8, 5), 90.0, Some(20.0), 5));
    let jobs: Vec<(Arc<Dataset>, PipelineConfig)> = vec![
        (Arc::clone(&bundle), small_config(5, 120)),
        (Arc::clone(&crossing), small_config(9, 60)),
        (Arc::clone(&bundle), small_config(5, 80)),
    ];

    let (clean, _) = run_jobs(None, &jobs);
    let plan = FaultPlan::seeded(chaos_seed(), 3);
    let (chaos, metrics) = run_jobs(Some(plan), &jobs);

    assert!(metrics.faults_injected >= 1, "the schedule must fire");
    assert_eq!(metrics.completed, jobs.len() as u64);
    assert_eq!(metrics.failed, 0);
    for (i, (a, b)) in clean.iter().zip(&chaos).enumerate() {
        assert_eq!(
            a.tracking.lengths_by_sample, b.tracking.lengths_by_sample,
            "job {i}: streamline lengths must be bit-identical under faults"
        );
        assert_eq!(a.tracking.total_steps, b.tracking.total_steps, "job {i}");
    }
}

#[test]
fn exhausted_retry_budget_is_a_typed_chained_error_not_a_panic() {
    use std::error::Error;

    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    // Alloc faults escape the pool on every attempt: initial run + 1 retry.
    let plan = FaultPlan::parse(
        "fault 0 0 alloc-fail\n\
         fault 0 1 alloc-fail\n\
         fault 0 2 alloc-fail\n\
         fault 0 3 alloc-fail",
    )
    .unwrap();
    let service = TractoService::start(ServiceConfig {
        devices: 1,
        estimate_workers: 1,
        retry_budget: 1,
        retry_backoff: Duration::from_millis(1),
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let ticket = service.submit(JobSpec::track(Arc::clone(&bundle), small_config(5, 60)));
    let err = ticket.wait().expect_err("budget must run out");
    match &err {
        JobError::Failed(cause) => {
            assert_eq!(cause.kind(), tracto_trace::ErrorKind::Device);
        }
        other => panic!("expected a typed device failure, got {other}"),
    }
    // The cause chain survives: JobError → TractoError.
    assert!(err.source().is_some());
    assert!(err.to_string().contains("device"));
    let metrics = service.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.job_retries, 1);
    assert_eq!(metrics.completed, 0);
}
