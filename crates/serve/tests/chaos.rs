//! Chaos contract for the serve layer: a seeded fault plan changes the
//! service's timing and scheduling, never its results — and when recovery
//! is impossible, jobs fail with a typed, chained error instead of
//! panicking or hanging.
//!
//! `TRACTO_CHAOS_SEED` (default 1) selects the fault schedule so CI can
//! sweep several without editing the test.

use std::sync::Arc;
use std::time::Duration;
use tracto::mcmc::ChainConfig;
use tracto::phantom::{datasets, Dataset};
use tracto::pipeline::PipelineConfig;
use tracto_gpu_sim::FaultPlan;
use tracto_serve::{JobError, JobSpec, ServiceConfig, TractoService};
use tracto_volume::Dim3;

fn chaos_seed() -> u64 {
    std::env::var("TRACTO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn small_config(seed: u64, max_steps: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::fast();
    cfg.chain = ChainConfig {
        num_burnin: 60,
        num_samples: 3,
        sample_interval: 1,
        ..ChainConfig::fast_test()
    };
    cfg.seed = seed;
    cfg.tracking.max_steps = max_steps;
    cfg
}

fn run_jobs(
    fault_plan: Option<FaultPlan>,
    jobs: &[(Arc<Dataset>, PipelineConfig)],
) -> (
    Vec<tracto_serve::TrackResult>,
    tracto_serve::MetricsSnapshot,
) {
    run_jobs_streamed(fault_plan, jobs, 1)
}

fn run_jobs_streamed(
    fault_plan: Option<FaultPlan>,
    jobs: &[(Arc<Dataset>, PipelineConfig)],
    streams: usize,
) -> (
    Vec<tracto_serve::TrackResult>,
    tracto_serve::MetricsSnapshot,
) {
    let service = TractoService::start(ServiceConfig {
        devices: 3,
        estimate_workers: 1,
        max_batch_jobs: 8,
        batch_window: Duration::from_millis(100),
        fault_plan,
        streams,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(ds, cfg)| service.submit(JobSpec::track(Arc::clone(ds), cfg.clone())))
        .collect();
    let results = tickets
        .iter()
        .map(|t| t.wait_track().expect("job completes despite faults"))
        .collect();
    (results, service.shutdown())
}

#[test]
fn seeded_faults_leave_streamline_counts_bit_identical() {
    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let crossing: Arc<Dataset> =
        Arc::new(datasets::crossing(Dim3::new(8, 8, 5), 90.0, Some(20.0), 5));
    let jobs: Vec<(Arc<Dataset>, PipelineConfig)> = vec![
        (Arc::clone(&bundle), small_config(5, 120)),
        (Arc::clone(&crossing), small_config(9, 60)),
        (Arc::clone(&bundle), small_config(5, 80)),
    ];

    let (clean, _) = run_jobs(None, &jobs);
    let plan = FaultPlan::seeded(chaos_seed(), 3);
    let (chaos, metrics) = run_jobs(Some(plan), &jobs);

    assert!(metrics.faults_injected >= 1, "the schedule must fire");
    assert_eq!(metrics.completed, jobs.len() as u64);
    assert_eq!(metrics.failed, 0);
    for (i, (a, b)) in clean.iter().zip(&chaos).enumerate() {
        assert_eq!(
            a.tracking.lengths_by_sample, b.tracking.lengths_by_sample,
            "job {i}: streamline lengths must be bit-identical under faults"
        );
        assert_eq!(a.tracking.total_steps, b.tracking.total_steps, "job {i}");
    }
}

/// Streams compose with fault injection: a device lost mid-stream (while
/// its stream lane has walkers in flight) fails over and the batch stays
/// bit-identical to the fault-free *serialized* service — timing is the
/// only thing streams and faults are allowed to change.
#[test]
fn device_lost_mid_stream_leaves_results_bit_identical() {
    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let crossing: Arc<Dataset> =
        Arc::new(datasets::crossing(Dim3::new(8, 8, 5), 90.0, Some(20.0), 5));
    let jobs: Vec<(Arc<Dataset>, PipelineConfig)> = vec![
        (Arc::clone(&bundle), small_config(5, 120)),
        (Arc::clone(&crossing), small_config(9, 60)),
        (Arc::clone(&bundle), small_config(5, 80)),
    ];

    let (clean, _) = run_jobs(None, &jobs);
    // The second launch on device 0 fires after the streamed batch has
    // started issuing work, so the loss lands mid-stream.
    let plan = FaultPlan::parse("fault 0 1 device-lost").unwrap();
    let (chaos, metrics) = run_jobs_streamed(Some(plan), &jobs, 3);

    assert!(metrics.faults_injected >= 1, "the schedule must fire");
    assert!(
        metrics.failovers >= 1,
        "the loss must be survived, not missed"
    );
    assert_eq!(metrics.completed, jobs.len() as u64);
    assert_eq!(metrics.failed, 0);
    for (i, (a, b)) in clean.iter().zip(&chaos).enumerate() {
        assert_eq!(
            a.tracking.lengths_by_sample, b.tracking.lengths_by_sample,
            "job {i}: streams + device loss must not change results"
        );
        assert_eq!(a.tracking.total_steps, b.tracking.total_steps, "job {i}");
    }
}

/// A poisoned disk-cache entry that was quarantined before a crash must
/// stay gone after recovery: a fresh service over the same cache and state
/// dirs sees a clean miss (never the corrupt bytes, never a second
/// quarantine) and recomputes bit-identical results.
#[test]
fn quarantined_cache_entry_stays_gone_across_restart() {
    use tracto_proto::CachePolicy;
    use tracto_trace::{RingSink, Tracer};

    let root = std::env::temp_dir().join(format!(
        "tracto-chaos-quarantine-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let cache_dir = root.join("cache");
    let state_dir = root.join("state");

    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let cfg = small_config(5, 60);
    let session = |ring: &Arc<RingSink>| {
        TractoService::start(ServiceConfig {
            devices: 1,
            estimate_workers: 1,
            disk_cache: Some(cache_dir.clone()),
            state_dir: Some(state_dir.clone()),
            tracer: Tracer::shared(ring.clone()),
            ..ServiceConfig::default()
        })
    };

    // Session 1 populates the disk cache.
    let ring1 = Arc::new(RingSink::new(4096));
    let service = session(&ring1);
    let ticket = service.submit(JobSpec::track(Arc::clone(&bundle), cfg.clone()));
    let baseline = ticket.wait_track().expect("baseline run");
    service.shutdown();
    let entry_dir = std::fs::read_dir(&cache_dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.is_dir())
        .expect("one cache entry on disk");

    // Truncate one field mid-header: the entry is now poisoned.
    let field = entry_dir.join("th1.trv4");
    let bytes = std::fs::read(&field).unwrap();
    std::fs::write(&field, &bytes[..7.min(bytes.len())]).unwrap();

    // Session 2 trips over the poison, quarantines it, and recomputes. The
    // read-only cache policy means nothing is written back, so the slot is
    // empty on disk when this session "crashes".
    let ring2 = Arc::new(RingSink::new(4096));
    let service = session(&ring2);
    let ticket = service
        .submit(JobSpec::track(Arc::clone(&bundle), cfg.clone()).with_cache(CachePolicy::ReadOnly));
    let recomputed = ticket.wait_track().expect("recompute past the poison");
    assert_eq!(ring2.count("serve.cache_quarantine"), 1, "poison detected");
    assert!(!entry_dir.exists(), "quarantine deleted the entry on disk");
    assert_eq!(
        recomputed.tracking.lengths_by_sample, baseline.tracking.lengths_by_sample,
        "recompute past a poisoned entry is bit-identical"
    );
    service.shutdown();

    // Session 3 recovers over the same dirs: the quarantined entry must
    // not resurface — a clean miss, no quarantine event, same results.
    let ring3 = Arc::new(RingSink::new(4096));
    let service = session(&ring3);
    let ticket = service.submit(JobSpec::track(Arc::clone(&bundle), cfg.clone()));
    let after = ticket.wait_track().expect("post-recovery run");
    assert_eq!(
        ring3.count("serve.cache_quarantine"),
        0,
        "the quarantined entry must stay gone after restart"
    );
    assert_eq!(
        after.tracking.lengths_by_sample, baseline.tracking.lengths_by_sample,
        "post-recovery results are bit-identical"
    );
    service.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn exhausted_retry_budget_is_a_typed_chained_error_not_a_panic() {
    use std::error::Error;

    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    // Alloc faults escape the pool on every attempt: initial run + 1 retry.
    let plan = FaultPlan::parse(
        "fault 0 0 alloc-fail\n\
         fault 0 1 alloc-fail\n\
         fault 0 2 alloc-fail\n\
         fault 0 3 alloc-fail",
    )
    .unwrap();
    let service = TractoService::start(ServiceConfig {
        devices: 1,
        estimate_workers: 1,
        retry_budget: 1,
        retry_backoff: Duration::from_millis(1),
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    });
    let ticket = service.submit(JobSpec::track(Arc::clone(&bundle), small_config(5, 60)));
    let err = ticket.wait().expect_err("budget must run out");
    match &err {
        JobError::Failed(cause) => {
            assert_eq!(cause.kind(), tracto_trace::ErrorKind::Device);
        }
        other => panic!("expected a typed device failure, got {other}"),
    }
    // The cause chain survives: JobError → TractoError.
    assert!(err.source().is_some());
    assert!(err.to_string().contains("device"));
    let metrics = service.shutdown();
    assert_eq!(metrics.failed, 1);
    assert_eq!(metrics.job_retries, 1);
    assert_eq!(metrics.completed, 0);
}
