//! Protocol v2 conformance: version negotiation and v1 interop in both
//! directions, pushed event subscriptions, and the chunked upload path —
//! including hostile chunks and mid-upload disconnects, which must leave
//! no staging files behind.

use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tracto::loaded::encode_trds;
use tracto_phantom::datasets;
use tracto_proto::{
    lengths_digest, read_frame, write_frame, ChainSpec, DatasetSpec, Endpoint, Event, JobKind,
    JobState, Outcome, RemoteService, Request, Response, TrackSpec, PROTOCOL_VERSION,
};
use tracto_serve::{JobSpec, ServiceConfig, SocketServer, TractoService};
use tracto_volume::Dim3;

fn tmp(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("tracto_proto_v2_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

struct Fixture {
    server: Option<SocketServer>,
    service: Option<Arc<TractoService>>,
    dir: PathBuf,
}

impl Fixture {
    /// A server with `--state-dir` (so uploads are enabled).
    fn start(tag: &str) -> Fixture {
        let dir = tmp(tag);
        let service = Arc::new(TractoService::start(
            ServiceConfig::builder()
                .state_dir(dir.join("state"))
                .build()
                .unwrap(),
        ));
        let endpoint = Endpoint::Unix(dir.join("tracto.sock"));
        let server = SocketServer::bind(Arc::clone(&service), &endpoint).unwrap();
        Fixture {
            server: Some(server),
            service: Some(service),
            dir,
        }
    }

    fn server(&self) -> &SocketServer {
        self.server.as_ref().unwrap()
    }

    fn service(&self) -> &Arc<TractoService> {
        self.service.as_ref().unwrap()
    }

    fn connect(&self) -> RemoteService {
        RemoteService::connect(self.server().endpoint(), "v2-test").unwrap()
    }

    fn raw(&self) -> UnixStream {
        let Endpoint::Unix(path) = self.server().endpoint() else {
            panic!("fixture binds unix sockets");
        };
        UnixStream::connect(path).unwrap()
    }

    fn staging_dir(&self) -> PathBuf {
        self.dir.join("state").join("uploads")
    }

    fn staging_parts(&self) -> usize {
        match std::fs::read_dir(self.staging_dir()) {
            Err(_) => 0,
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "part"))
                .count(),
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.server.take().unwrap().stop();
        drop(self.service.take());
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// A tiny deterministic tracking job against a phantom recipe.
fn wire_job() -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(DatasetSpec {
        kind: "single".into(),
        scale: 0.05,
        seed: 3,
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: 30,
        samples: 2,
        interval: 1,
    };
    spec.seed = 9;
    spec.kind = JobKind::Track(TrackSpec {
        step: 0.1,
        threshold: 0.9,
        max_steps: 60,
    });
    spec
}

/// The same tiny job, but against an uploaded volume.
fn wire_job_for_upload(hash: &str) -> tracto_proto::JobSpec {
    let mut spec = wire_job();
    spec.dataset = DatasetSpec::uploaded(hash);
    spec
}

/// A small TRDS blob to upload.
fn trds_blob() -> Vec<u8> {
    let ds = datasets::single_bundle(Dim3::new(6, 5, 4), None, 7);
    encode_trds(&ds.dwi, &ds.wm_mask, &ds.acq).unwrap()
}

fn hello_raw(stream: &mut UnixStream, version: u32) -> Response {
    let req = Request::Hello {
        version,
        client: "raw".into(),
    };
    write_frame(stream, &req.encode()).unwrap();
    let payload = read_frame(stream).unwrap().expect("hello reply");
    Response::decode(&payload).unwrap()
}

// ---------------------------------------------------------------------
// Version negotiation and v1 interop
// ---------------------------------------------------------------------

#[test]
fn v1_client_interoperates_and_v2_verbs_are_gated() {
    let fx = Fixture::start("v1client");
    let mut stream = fx.raw();

    // A v1 hello negotiates v1, not the server's newer version.
    match hello_raw(&mut stream, 1) {
        Response::Hello { version, .. } => assert_eq!(version, 1),
        other => panic!("expected hello, got {other:?}"),
    }

    // The whole v1 verb set works unchanged on the negotiated connection.
    write_frame(&mut stream, &Request::Submit(Box::new(wire_job())).encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("submit reply");
    let Response::Submitted { job } = Response::decode(&payload).unwrap() else {
        panic!("expected submitted");
    };
    write_frame(
        &mut stream,
        &Request::Await {
            job,
            timeout_ms: None,
        }
        .encode(),
    )
    .unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("await reply");
    match Response::decode(&payload).unwrap() {
        Response::Status { state, .. } => {
            assert!(matches!(state, JobState::Done(_)), "{state:?}")
        }
        other => panic!("expected status, got {other:?}"),
    }

    // v2 verbs on a v1 connection are refused in-band; the connection
    // survives.
    for req in [
        Request::Subscribe { job: None },
        Request::UploadCommit {
            hash: "0123456789abcdef".into(),
        },
    ] {
        write_frame(&mut stream, &req.encode()).unwrap();
        let payload = read_frame(&mut stream).unwrap().expect("error reply");
        match Response::decode(&payload).unwrap() {
            Response::Error { kind, message } => {
                assert_eq!(kind, "protocol");
                assert!(message.contains("requires protocol v2"), "{message}");
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("metrics reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Metrics(_)
    ));
}

/// A minimal mock of the *old* v1 server: refuses any hello above 1 with
/// the historical wording, then serves hello/status to a v1 client.
fn spawn_mock_v1_server(path: PathBuf) -> std::thread::JoinHandle<()> {
    let listener = UnixListener::bind(&path).unwrap();
    std::thread::spawn(move || {
        // Serve connections until the client side is done (two connects:
        // the refused v2 attempt, then the v1 retry).
        for _ in 0..2 {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            loop {
                let Ok(Some(payload)) = read_frame(&mut stream) else {
                    break;
                };
                let Ok(req) = Request::decode(&payload) else {
                    break;
                };
                match req {
                    Request::Hello { version: 1, .. } => {
                        let reply = Response::Hello {
                            version: 1,
                            server: "mock-v1".into(),
                            member: None,
                        };
                        write_frame(&mut stream, &reply.encode()).unwrap();
                    }
                    Request::Hello { version, .. } => {
                        let reply = Response::Error {
                            kind: "protocol".into(),
                            message: format!(
                                "protocol version mismatch: server speaks 1, client sent {version}"
                            ),
                        };
                        write_frame(&mut stream, &reply.encode()).unwrap();
                        break; // v1 servers close after refusing
                    }
                    Request::Await { job, .. } => {
                        let reply = Response::Status {
                            job,
                            state: JobState::Pending,
                        };
                        write_frame(&mut stream, &reply.encode()).unwrap();
                    }
                    _ => break,
                }
            }
        }
    })
}

#[test]
fn v2_client_downgrades_against_a_v1_server() {
    let dir = tmp("v1server");
    let path = dir.join("mock.sock");
    let handle = spawn_mock_v1_server(path.clone());

    let mut client = RemoteService::connect(&Endpoint::Unix(path), "downgrader").unwrap();
    assert_eq!(client.server_version, 1, "client must retry speaking v1");
    assert_eq!(client.server_name, "mock-v1");

    // await_job falls back to the blocking v1 verb (the mock answers
    // `pending` immediately).
    let state = client.await_job(42, Some(50)).unwrap();
    assert!(matches!(state, JobState::Pending));

    // v2-only verbs are refused client-side with a typed error.
    let err = client.subscribe(None).unwrap_err();
    assert_eq!(err.kind(), tracto_trace::ErrorKind::Protocol);
    assert!(err.to_string().contains("requires protocol v2"), "{err}");

    drop(client);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Subscriptions and pushed events
// ---------------------------------------------------------------------

#[test]
fn subscriber_sees_lifecycle_events_without_polling() {
    let fx = Fixture::start("events");
    let mut watcher = fx.connect();
    assert_eq!(watcher.server_version, PROTOCOL_VERSION);
    watcher.subscribe(None).unwrap();

    let mut submitter = fx.connect();
    let job = submitter.submit(wire_job()).unwrap();

    // The watcher receives admitted → … → terminal as pushes.
    let mut kinds: Vec<String> = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        assert!(!remaining.is_zero(), "no terminal event; saw {kinds:?}");
        let ev: Event = watcher
            .next_event(Some(remaining))
            .unwrap()
            .expect("event before timeout");
        assert_eq!(ev.job, job);
        kinds.push(ev.kind.clone());
        if ev.is_terminal() {
            assert_eq!(ev.kind, "completed");
            assert!(
                matches!(ev.state, JobState::Done(Outcome::Track { .. })),
                "terminal event carries the full final state: {:?}",
                ev.state
            );
            break;
        }
    }
    assert_eq!(kinds.first().map(String::as_str), Some("admitted"));

    // The watcher never polled: awaiting via subscription keeps the
    // server's poll counter untouched.
    assert_eq!(fx.server().poll_requests(), 0, "pushes must replace polls");
}

#[test]
fn late_subscriber_gets_a_synthetic_terminal_event() {
    let fx = Fixture::start("late");
    let mut client = fx.connect();
    let job = client.submit(wire_job()).unwrap();
    // await_job on a v2 connection itself rides subscriptions.
    let state = client.await_job(job, None).unwrap();
    assert!(matches!(state, JobState::Done(_)), "{state:?}");

    // Subscribing after the fact pushes the terminal event immediately —
    // a late subscriber can never hang.
    let mut late = fx.connect();
    late.subscribe(Some(job)).unwrap();
    let ev = late
        .next_event(Some(Duration::from_secs(10)))
        .unwrap()
        .expect("synthetic terminal event");
    assert_eq!(ev.job, job);
    assert!(ev.is_terminal());
    assert_eq!(fx.server().poll_requests(), 0);
}

// ---------------------------------------------------------------------
// Chunked uploads
// ---------------------------------------------------------------------

#[test]
fn uploaded_volume_runs_bit_identically_through_both_doors() {
    let fx = Fixture::start("upload");
    let blob = trds_blob();

    let mut client = fx.connect();
    let hash = client.upload(&blob).unwrap();

    // Re-uploading the same bytes is a no-op (content-addressed dedupe).
    let again = client.upload(&blob).unwrap();
    assert_eq!(again, hash);
    assert_eq!(fx.staging_parts(), 0, "committed uploads leave no staging");

    // Remote door: submit against the uploaded volume.
    let wire = wire_job_for_upload(&hash);
    let job = client.submit(wire.clone()).unwrap();
    let state = client.await_job(job, None).unwrap();
    let JobState::Done(Outcome::Track {
        lengths_digest: remote_digest,
        total_steps: remote_steps,
        ..
    }) = state
    else {
        panic!("uploaded-volume job did not finish: {state:?}");
    };

    // In-process door: the same wire spec through the same service.
    let result = fx
        .service()
        .submit(JobSpec::from_wire(&wire).unwrap())
        .wait_track()
        .unwrap();
    assert_eq!(result.tracking.total_steps, remote_steps);
    assert_eq!(
        lengths_digest(&result.tracking.lengths_by_sample),
        remote_digest,
        "remote and in-process runs on an uploaded volume must be bit-identical"
    );
}

#[test]
fn submitting_an_unknown_upload_hash_fails_typed() {
    let fx = Fixture::start("nohash");
    let mut client = fx.connect();
    let job = client
        .submit(wire_job_for_upload("00000000000000aa"))
        .unwrap();
    match client.await_job(job, None).unwrap() {
        JobState::Failed { kind, message } => {
            assert_eq!(kind, "config");
            assert!(message.contains("unknown upload volume"), "{message}");
        }
        other => panic!("expected config failure, got {other:?}"),
    }
}

#[test]
fn hostile_upload_chunks_are_typed_errors_and_survivable() {
    let fx = Fixture::start("hostile");
    let mut stream = fx.raw();
    match hello_raw(&mut stream, PROTOCOL_VERSION) {
        Response::Hello { version, .. } => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected hello, got {other:?}"),
    }
    let expect_error = |stream: &mut UnixStream, needle: &str| {
        let payload = read_frame(stream).unwrap().expect("error reply");
        match Response::decode(&payload).unwrap() {
            Response::Error { message, .. } => {
                assert!(message.contains(needle), "{message} !~ {needle}")
            }
            other => panic!("expected error, got {other:?}"),
        }
    };

    // A malformed hash is refused at begin.
    let req = Request::UploadBegin {
        hash: "not-a-hash".into(),
        len: 64,
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    expect_error(&mut stream, "hash");

    // Chunks for an upload that was never begun.
    let hash = "00ff00ff00ff00ff".to_string();
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 0,
        data: tracto_proto::b64::encode(b"data"),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    expect_error(&mut stream, "upload");

    // Begin, then a chunk at the wrong offset.
    let req = Request::UploadBegin {
        hash: hash.clone(),
        len: 1024,
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("ready reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::UploadReady {
            offset: 0,
            complete: false
        }
    ));
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 512,
        data: tracto_proto::b64::encode(b"data"),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    expect_error(&mut stream, "offset");

    // A chunk overflowing the declared length.
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 0,
        data: tracto_proto::b64::encode(&vec![0u8; 2048]),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    expect_error(&mut stream, "declared");

    // Not base64 at all.
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 0,
        data: "!!!not base64!!!".into(),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    expect_error(&mut stream, "base64");

    // Commit before all declared bytes arrived: refused, staging deleted.
    write_frame(
        &mut stream,
        &Request::UploadCommit { hash: hash.clone() }.encode(),
    )
    .unwrap();
    expect_error(&mut stream, "declared");

    // Content that does not hash to its declared name is refused at
    // commit and the staging file is destroyed.
    let lying = Request::UploadBegin {
        hash: hash.clone(),
        len: 4,
    };
    write_frame(&mut stream, &lying.encode()).unwrap();
    let _ = read_frame(&mut stream).unwrap().expect("ready reply");
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 0,
        data: tracto_proto::b64::encode(b"liar"),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("ack reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::UploadAck { received: 4 }
    ));
    write_frame(
        &mut stream,
        &Request::UploadCommit { hash: hash.clone() }.encode(),
    )
    .unwrap();
    expect_error(&mut stream, "hashes to");
    assert_eq!(fx.staging_parts(), 0, "failed commits must clean staging");

    // After all that abuse the connection still serves requests.
    write_frame(&mut stream, &Request::Metrics.encode()).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("metrics reply");
    assert!(matches!(
        Response::decode(&payload).unwrap(),
        Response::Metrics(_)
    ));
}

#[test]
fn mid_upload_disconnect_leaves_no_staging_files() {
    let fx = Fixture::start("abort");
    let blob = trds_blob();
    let hash = format!("{:016x}", tracto_proto::content_digest(&blob));

    let mut stream = fx.raw();
    match hello_raw(&mut stream, PROTOCOL_VERSION) {
        Response::Hello { .. } => {}
        other => panic!("expected hello, got {other:?}"),
    }
    let req = Request::UploadBegin {
        hash: hash.clone(),
        len: blob.len() as u64,
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let _ = read_frame(&mut stream).unwrap().expect("ready reply");
    let req = Request::UploadChunk {
        hash: hash.clone(),
        offset: 0,
        data: tracto_proto::b64::encode(&blob[..16]),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    let _ = read_frame(&mut stream).unwrap().expect("ack reply");
    assert_eq!(fx.staging_parts(), 1, "chunk must be staged on disk");

    // Vanish mid-upload. The reactor reaps the connection and deletes
    // its staging file.
    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(10);
    while fx.staging_parts() != 0 {
        assert!(
            Instant::now() < deadline,
            "staging file orphaned after disconnect"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn uploads_without_state_dir_are_a_config_error() {
    let dir = tmp("nostate");
    let service = Arc::new(TractoService::start(
        ServiceConfig::builder().build().unwrap(),
    ));
    let server =
        SocketServer::bind(Arc::clone(&service), &Endpoint::Unix(dir.join("t.sock"))).unwrap();
    let mut client = RemoteService::connect(server.endpoint(), "nostate").unwrap();
    let err = client.upload(b"whatever").unwrap_err();
    assert_eq!(err.kind(), tracto_trace::ErrorKind::Config, "{err}");
    assert!(err.to_string().contains("--state-dir"), "{err}");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------

#[test]
fn stop_drains_and_closes_live_subscriber_connections() {
    let fx = Fixture::start("teardown");
    let mut watcher = fx.connect();
    watcher.subscribe(None).unwrap();
    let mut submitter = fx.connect();
    let job = submitter.submit(wire_job()).unwrap();
    let state = submitter.await_job(job, None).unwrap();
    assert!(matches!(state, JobState::Done(_)));

    // Stop the server while both connections are live: reads on the
    // client side must observe a clean close, not a hang.
    let server = {
        // Steal the server out of the fixture so Drop doesn't double-stop.
        let mut fx = fx;
        let server = fx.server.take().unwrap();
        drop(fx.service.take());
        let dir = std::mem::take(&mut fx.dir);
        std::mem::forget(fx);
        let _ = std::fs::remove_dir_all(&dir);
        server
    };
    server.stop();
    // Events pushed before the stop may still be buffered; drain them —
    // the stream beneath must then observe a clean close, not a hang.
    let err = loop {
        match watcher.next_event(Some(Duration::from_secs(5))) {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("read timed out: stop left the connection dangling"),
            Err(err) => break err,
        }
    };
    assert_eq!(err.kind(), tracto_trace::ErrorKind::Protocol, "{err}");
}
