//! End-to-end contract: N jobs through the batched service produce results
//! bit-identical to the same N jobs run one at a time through
//! [`tracto::Pipeline`] on the gpu-sim backend — batching and caching are
//! pure scheduling optimizations, never numerics changes.

use std::sync::Arc;
use std::time::Duration;
use tracto::mcmc::ChainConfig;
use tracto::phantom::{datasets, Dataset};
use tracto::pipeline::{Backend, Pipeline, PipelineConfig};
use tracto_gpu_sim::DeviceConfig;
use tracto_serve::{JobSpec, ServiceConfig, TractoService};
use tracto_volume::Dim3;

fn small_config(seed: u64, max_steps: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::fast();
    cfg.chain = ChainConfig {
        num_burnin: 60,
        num_samples: 3,
        sample_interval: 1,
        ..ChainConfig::fast_test()
    };
    cfg.seed = seed;
    cfg.tracking.max_steps = max_steps;
    cfg
}

#[test]
fn service_matches_sequential_pipeline_bit_for_bit() {
    let bundle: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let crossing: Arc<Dataset> =
        Arc::new(datasets::crossing(Dim3::new(8, 8, 5), 90.0, Some(20.0), 5));

    // Jobs 0 and 2 share (dataset, prior, chain, seed) — same sample-cache
    // key — but diverge in tracking depth; job 1 is an unrelated dataset.
    let jobs: Vec<(Arc<Dataset>, PipelineConfig)> = vec![
        (Arc::clone(&bundle), small_config(5, 120)),
        (Arc::clone(&crossing), small_config(9, 60)),
        (Arc::clone(&bundle), small_config(5, 80)),
    ];

    // Reference: each job alone, sequentially, through the pipeline.
    let reference: Vec<_> = jobs
        .iter()
        .map(|(ds, cfg)| {
            Pipeline::new(cfg.clone()).run(ds, Backend::GpuSim(DeviceConfig::radeon_5870()))
        })
        .collect();

    // Service: everything submitted up front; a single estimate worker
    // serializes Step 1, so job 2 is guaranteed to hit job 0's cache entry.
    let service = TractoService::start(ServiceConfig {
        estimate_workers: 1,
        max_batch_jobs: 8,
        batch_window: Duration::from_millis(150),
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(ds, cfg)| service.submit(JobSpec::track(Arc::clone(ds), cfg.clone())))
        .collect();
    let results: Vec<_> = tickets
        .iter()
        .map(|t| t.wait_track().expect("job completes"))
        .collect();

    for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
        assert_eq!(
            got.tracking.lengths_by_sample, want.tracking.lengths_by_sample,
            "job {i}: per-streamline lengths must be bit-identical"
        );
        assert_eq!(
            got.tracking.total_steps, want.tracking.total_steps,
            "job {i}: total step count must match"
        );
        let got_conn = got
            .tracking
            .connectivity
            .as_ref()
            .expect("service connectivity");
        let want_conn = want
            .tracking
            .connectivity
            .as_ref()
            .expect("pipeline connectivity");
        assert_eq!(
            got_conn.total_streamlines(),
            want_conn.total_streamlines(),
            "job {i}: streamline totals must match"
        );
        assert_eq!(
            got_conn.probability_volume(),
            want_conn.probability_volume(),
            "job {i}: per-voxel connectivity must be bit-identical"
        );
    }

    // Job 2 skipped Step 1 via the cache; jobs 0 and 1 each ran MCMC once.
    assert!(
        results[2].cache_hit,
        "repeat estimation config must hit the cache"
    );
    assert!(!results[0].cache_hit, "first job is a cold miss");

    let metrics = service.shutdown();
    assert_eq!(metrics.completed, 3);
    assert_eq!(metrics.failed, 0);
    assert_eq!(metrics.estimations_run, 2, "two distinct estimation keys");
    assert!(metrics.cache.hits >= 1);
    assert_eq!(metrics.batch_jobs, 3, "every job rode in a batch");
    assert!(metrics.lanes_tracked > 0);
}

#[test]
fn disk_cache_survives_service_restart() {
    let dir = std::env::temp_dir().join(format!("tracto-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ds: Arc<Dataset> = Arc::new(datasets::single_bundle(Dim3::new(8, 6, 6), Some(20.0), 3));
    let cfg = small_config(5, 60);

    let service = TractoService::start(ServiceConfig {
        disk_cache: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let first = service
        .submit(JobSpec::track(Arc::clone(&ds), cfg.clone()))
        .wait_track()
        .expect("cold job");
    assert!(!first.cache_hit);
    let cold = service.shutdown();
    assert_eq!(cold.estimations_run, 1);

    // A fresh service (empty memory cache) warm-starts from disk.
    let service = TractoService::start(ServiceConfig {
        disk_cache: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let second = service
        .submit(JobSpec::track(Arc::clone(&ds), cfg.clone()))
        .wait_track()
        .expect("warm job");
    assert!(
        second.cache_hit,
        "disk entry must satisfy the second service"
    );
    let warm = service.shutdown();
    assert_eq!(warm.estimations_run, 0, "no MCMC after a disk hit");
    assert_eq!(
        first.tracking.lengths_by_sample, second.tracking.lengths_by_sample,
        "disk round-trip must not perturb results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
