//! Reactor soak: hundreds of concurrent socket clients multiplexed onto
//! the fixed-size reactor, every job followed to its terminal state via
//! pushed v2 events — zero `status`/`await` polls server-side — under a
//! seeded chaos schedule (`TRACTO_CHAOS_SEED`, default 1).
//!
//! Expensive by design, so it is `#[ignore]`d; CI's `soak` job runs it
//! with `-- --ignored` across several chaos seeds.

use std::path::PathBuf;
use std::sync::Arc;
use tracto_proto::{
    ChainSpec, DatasetSpec, Endpoint, JobKind, JobState, Outcome, RemoteService, TrackSpec,
};
use tracto_serve::{ServiceConfig, SocketServer, TractoService};

/// Concurrent socket clients. The acceptance bar is ≥ 300; a few more
/// exercise the same paths harder for free.
const CLIENTS: usize = 320;

fn chaos_seed() -> u64 {
    std::env::var("TRACTO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// A tiny tracking job; `salt` spreads clients over a handful of distinct
/// cache keys so the run exercises both cache hits and batched misses.
fn wire_job(salt: u64) -> tracto_proto::JobSpec {
    let mut spec = tracto_proto::JobSpec::track(DatasetSpec {
        kind: "single".into(),
        scale: 0.05,
        seed: 3 + (salt % 4),
        snr: None,
        upload: None,
    });
    spec.chain = ChainSpec {
        burnin: 30,
        samples: 2,
        interval: 1,
    };
    spec.seed = 9;
    spec.kind = JobKind::Track(TrackSpec {
        step: 0.1,
        threshold: 0.9,
        max_steps: 60,
    });
    spec
}

/// Threads currently alive in this process whose name starts with
/// `tracto-reactor` (Linux-only introspection; the suite targets Linux).
fn reactor_threads() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .filter_map(|t| t.ok())
        .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
        .filter(|name| name.trim_end().starts_with("tracto-reactor"))
        .count()
}

#[test]
#[ignore = "soak: hundreds of clients; run explicitly or via CI's soak job"]
fn hundreds_of_clients_follow_pushed_events_with_zero_polls() {
    let dir: PathBuf = std::env::temp_dir().join(format!("tracto_soak_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let service = Arc::new(TractoService::start(
        ServiceConfig::builder()
            .devices(3)
            .queue_capacity(2 * CLIENTS)
            .fault_seed(chaos_seed())
            .build()
            .unwrap(),
    ));
    let endpoint = Endpoint::Unix(dir.join("tracto.sock"));
    let server = SocketServer::bind(Arc::clone(&service), &endpoint).unwrap();
    let endpoint = server.endpoint().clone();

    // Freshly spawned threads name themselves on first schedule; give
    // them a moment before counting.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while reactor_threads() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        (1..=8).contains(&reactor_threads()),
        "reactor must be a small fixed pool, found {} threads",
        reactor_threads()
    );

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let endpoint = endpoint.clone();
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut client =
                        RemoteService::connect(&endpoint, &format!("soak-{i}")).unwrap();
                    assert!(client.server_version >= 2, "soak requires v2 pushes");
                    let job = client.submit(wire_job(i as u64)).unwrap();
                    // await_job on a v2 connection parks on pushed events.
                    match client.await_job(job, None).unwrap() {
                        JobState::Done(Outcome::Track { .. }) => {}
                        other => panic!("client {i}: job {job} ended {other:?}"),
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The whole fleet rode pushes: nobody fell back to polling, and the
    // front end never grew beyond its fixed thread budget.
    assert_eq!(server.remote_jobs(), CLIENTS as u64);
    assert_eq!(
        server.poll_requests(),
        0,
        "v2 clients must follow events, not poll"
    );
    assert!(
        reactor_threads() <= 8,
        "reactor grew past its fixed pool: {} threads",
        reactor_threads()
    );

    server.stop();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}
