//! Property tests of the stream scheduler's core invariant: the stream
//! count (and the resulting interleaving of uploads, kernels, and
//! readbacks) reorders *time*, never results. Any stream mix must produce
//! bit-identical samples, streamline lengths, and connectivity versus the
//! serialized host loop.

use proptest::prelude::*;
use std::sync::OnceLock;
use tracto::mcmc::ChainConfig;
use tracto::phantom::datasets::{Dataset, DatasetSpec};
use tracto::pipeline::{Backend, Pipeline, PipelineConfig, PipelineOutcome};
use tracto::prelude::DeviceConfig;
use tracto_volume::Dim3;

fn tiny_dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        DatasetSpec {
            name: "stream-prop".into(),
            dims: Dim3::new(8, 6, 6),
            spacing_mm: 2.5,
            n_dirs: 12,
            n_b0: 2,
            bval: 1000.0,
            snr: None,
            seed: 11,
        }
        .build()
    })
}

fn config(streams: usize, seed: u64) -> PipelineConfig {
    let mut cfg = PipelineConfig::fast();
    cfg.chain = ChainConfig {
        num_burnin: 60,
        num_samples: 3,
        sample_interval: 1,
        ..ChainConfig::fast_test()
    };
    cfg.tracking.max_steps = 120;
    cfg.seed = seed;
    cfg.streams = streams;
    cfg
}

fn run(streams: usize, seed: u64) -> PipelineOutcome {
    Pipeline::new(config(streams, seed))
        .run(tiny_dataset(), Backend::GpuSim(DeviceConfig::radeon_5870()))
}

/// The serialized reference, computed once per (seed) and shared across
/// all proptest cases so each case only pays for its streamed run.
fn baseline(seed: u64) -> &'static PipelineOutcome {
    static SEED_5: OnceLock<PipelineOutcome> = OnceLock::new();
    static SEED_9: OnceLock<PipelineOutcome> = OnceLock::new();
    match seed {
        5 => SEED_5.get_or_init(|| run(1, 5)),
        9 => SEED_9.get_or_init(|| run(1, 9)),
        _ => panic!("no baseline for seed {seed}"),
    }
}

proptest! {
    /// Every stream count, against either of two run seeds, reproduces the
    /// serialized pipeline bit-for-bit: Step-1 sample volumes, Step-2
    /// lengths and step totals, and the connectivity map.
    #[test]
    fn any_stream_mix_is_bit_identical_to_serialized(
        streams in 2usize..10,
        pick_seed in prop_oneof![Just(5u64), Just(9u64)],
    ) {
        let serialized = baseline(pick_seed);
        let streamed = run(streams, pick_seed);
        prop_assert_eq!(&serialized.samples.f1, &streamed.samples.f1);
        prop_assert_eq!(&serialized.samples.th1, &streamed.samples.th1);
        prop_assert_eq!(&serialized.samples.ph2, &streamed.samples.ph2);
        prop_assert_eq!(
            &serialized.tracking.lengths_by_sample,
            &streamed.tracking.lengths_by_sample
        );
        prop_assert_eq!(serialized.tracking.total_steps, streamed.tracking.total_steps);
        let a = serialized.tracking.connectivity.as_ref().unwrap();
        let b = streamed.tracking.connectivity.as_ref().unwrap();
        prop_assert_eq!(a.total_streamlines(), b.total_streamlines());
        prop_assert_eq!(a.probability_volume(), b.probability_volume());
    }
}
