//! Synthetic posterior samples from ground truth.
//!
//! Step-2 experiments at paper scale (Tables II and IV sweep hundreds of
//! thousands of seeds through 50 sample volumes) do not need real MCMC
//! output — they need sample volumes with the *statistical properties* the
//! tracker sees: per-sample orientations scattered around the true fiber
//! directions with some angular dispersion. This module builds such volumes
//! directly from a phantom's ground-truth field, which makes the full-scale
//! tracking benchmarks tractable while Table III exercises the real MCMC.

use tracto_mcmc::SampleVolumes;
use tracto_phantom::GroundTruthField;
use tracto_rng::{box_muller_pair, HybridTaus, RandomSource};
use tracto_volume::Vec3;

/// Rotate `dir` by `angle` radians around a uniformly random tangent axis.
fn perturb_direction<R: RandomSource>(dir: Vec3, angle: f64, rng: &mut R) -> Vec3 {
    if angle == 0.0 {
        return dir;
    }
    // Build an orthonormal frame around dir, pick a random azimuth, tilt.
    let u = dir.any_orthogonal();
    let v = dir.cross(u).normalized();
    let phi = rng.next_f64() * std::f64::consts::TAU;
    let tangent = u * phi.cos() + v * phi.sin();
    (dir * angle.cos() + tangent * angle.sin()).normalized()
}

/// Build sample volumes whose per-voxel samples scatter around the ground
/// truth with angular dispersion `angular_sigma` (radians, half-normal tilt
/// per sample) and fraction jitter `fraction_sigma` (Gaussian, clamped to
/// `[0, 0.95]`).
///
/// Deterministic for a given `seed`. Voxels without fiber populations yield
/// zero-fraction samples (walkers stop there), exactly like low-anisotropy
/// posterior output.
pub fn samples_from_truth(
    truth: &GroundTruthField,
    num_samples: usize,
    angular_sigma: f64,
    fraction_sigma: f64,
    seed: u64,
) -> SampleVolumes {
    let dims = truth.dims();
    let mut out = SampleVolumes::zeros(dims, num_samples);
    for idx in 0..dims.len() {
        let vt = truth.at_index(idx);
        if vt.count == 0 {
            continue;
        }
        let c = dims.coords(idx);
        let mut rng = HybridTaus::seed_stream(seed ^ 0x53594E54, idx as u64);
        for s in 0..num_samples {
            for (slot, &(dir, f)) in vt.sticks().iter().enumerate() {
                let (g1, g2) = box_muller_pair(rng.next_f64(), rng.next_f64());
                let tilt = (g1 * angular_sigma).abs();
                let d = perturb_direction(dir, tilt, &mut rng);
                let frac = (f + g2 * fraction_sigma).clamp(0.0, 0.95);
                let (th, ph) = d.to_spherical();
                if slot == 0 {
                    out.f1.set(c, s, frac as f32);
                    out.th1.set(c, s, th as f32);
                    out.ph1.set(c, s, ph as f32);
                } else {
                    out.f2.set(c, s, frac as f32);
                    out.th2.set(c, s, th as f32);
                    out.ph2.set(c, s, ph as f32);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk};

    #[test]
    fn perturb_preserves_unit_norm_and_angle() {
        let mut rng = HybridTaus::new(1);
        let dir = Vec3::new(1.0, 2.0, -0.5).normalized();
        for angle in [0.0, 0.1, 0.5, 1.0] {
            let p = perturb_direction(dir, angle, &mut rng);
            assert!((p.norm() - 1.0).abs() < 1e-12);
            assert!((p.dot(dir).clamp(-1.0, 1.0).acos() - angle).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_scatter_around_truth() {
        let ds = datasets::single_bundle(Dim3::new(10, 6, 6), None, 2);
        let sv = samples_from_truth(&ds.truth, 40, 0.15, 0.05, 9);
        let c = Ijk::new(5, 2, 2);
        let truth_dir = ds.truth.at(c).sticks()[0].0;
        let mut mean = Vec3::ZERO;
        for s in 0..40 {
            let d = sv.sticks_at(c, s)[0].0;
            mean += d.aligned_with(truth_dir);
            // Each sample within a few sigma of the truth.
            assert!(d.dot(truth_dir).abs() > (4.0 * 0.15f64).cos());
        }
        assert!(mean.normalized().dot(truth_dir).abs() > 0.99);
    }

    #[test]
    fn empty_voxels_stay_zero() {
        let ds = datasets::single_bundle(Dim3::new(10, 8, 8), None, 2);
        let sv = samples_from_truth(&ds.truth, 5, 0.1, 0.02, 1);
        let corner = Ijk::new(0, 0, 0);
        assert_eq!(ds.truth.at(corner).count, 0);
        for s in 0..5 {
            assert_eq!(sv.sticks_at(corner, s)[0].1, 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), None, 2);
        let a = samples_from_truth(&ds.truth, 10, 0.2, 0.05, 7);
        let b = samples_from_truth(&ds.truth, 10, 0.2, 0.05, 7);
        assert_eq!(a.th1, b.th1);
        let c = samples_from_truth(&ds.truth, 10, 0.2, 0.05, 8);
        assert_ne!(a.th1, c.th1);
    }

    #[test]
    fn zero_dispersion_reproduces_truth() {
        let ds = datasets::single_bundle(Dim3::new(8, 6, 6), None, 2);
        let sv = samples_from_truth(&ds.truth, 3, 0.0, 0.0, 7);
        let c = Ijk::new(4, 2, 2);
        let truth = ds.truth.at(c).sticks()[0];
        for s in 0..3 {
            let got = sv.sticks_at(c, s)[0];
            assert!(got.0.dot(truth.0).abs() > 1.0 - 1e-6);
            assert!((got.1 - truth.1).abs() < 1e-6);
        }
    }
}
