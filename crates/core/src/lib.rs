//! **tracto** — probabilistic brain fiber tractography: Bayesian MCMC
//! parameter estimation plus probabilistic streamlining, on a CPU reference
//! and on a simulated GPU.
//!
//! This is the top-level crate of the reproduction of *"Probabilistic Brain
//! Fiber Tractography on GPUs"* (Xu et al., IPDPS Workshops 2012). The
//! pipeline follows the paper's Fig. 1:
//!
//! 1. **Local parameter estimation** ([`estimation`]): for every
//!    white-matter voxel, Metropolis–Hastings sampling of the
//!    ball-and-two-sticks posterior yields six 4-D sample volumes
//!    `(f₁, f₂, θ₁, θ₂, φ₁, φ₂)`.
//! 2. **Global connectivity estimation** ([`tracking2`]): probabilistic
//!    streamlining runs deterministic tracking once per sample volume per
//!    seed, with the paper's increasing-interval kernel segmentation on the
//!    simulated GPU.
//!
//! ```no_run
//! use tracto::prelude::*;
//!
//! let dataset = DatasetSpec::paper_dataset1().scaled(0.2).light_protocol().build();
//! let pipeline = Pipeline::new(PipelineConfig::fast());
//! let outcome = pipeline.run(&dataset, Backend::GpuSim(DeviceConfig::radeon_5870()));
//! println!("{} streamlines, {:.2} simulated s",
//!     outcome.tracking.total_steps, outcome.tracking_ledger.map(|l| l.total_s()).unwrap_or(0.0));
//! ```
//!
//! The subsystem crates are re-exported under short names: [`volume`],
//! [`rng`], [`phantom`], [`diffusion`], [`mcmc`], [`gpu_sim`],
//! [`tracking`], [`stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimation;
pub mod loaded;
pub mod pipeline;
pub mod synthetic;
/// Step-2 drivers re-exported from the tracking crate.
pub mod tracking2 {
    pub use tracto_tracking::gpu::{GpuTracker, GpuTrackingReport, SeedOrdering};
    pub use tracto_tracking::probabilistic::{CpuTracker, RecordMode, TrackingOutput};
}

pub use estimation::{
    run_mcmc_gpu, run_mcmc_gpu_checkpointed, run_mcmc_gpu_streamed, run_mcmc_multi, McmcGpuReport,
    PersistentCheckpoint,
};
pub use pipeline::{Backend, Pipeline, PipelineConfig, PipelineOutcome};

pub use tracto_diffusion as diffusion;
pub use tracto_gpu_sim as gpu_sim;
pub use tracto_mcmc as mcmc;
pub use tracto_phantom as phantom;
pub use tracto_rng as rng;
pub use tracto_stats as stats;
pub use tracto_tracking as tracking;
pub use tracto_volume as volume;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::estimation::{
        run_mcmc_gpu, run_mcmc_gpu_streamed, run_mcmc_multi, McmcGpuReport,
    };
    pub use crate::pipeline::{Backend, Pipeline, PipelineConfig, PipelineOutcome};
    pub use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
    pub use tracto_gpu_sim::{DeviceConfig, Gpu, TimingLedger};
    pub use tracto_mcmc::{ChainConfig, SampleVolumes, VoxelEstimator};
    pub use tracto_phantom::datasets::{self, Dataset, DatasetSpec};
    pub use tracto_tracking::field::InterpMode;
    pub use tracto_tracking::getter::Modality;
    pub use tracto_tracking::gpu::{GpuTracker, SeedOrdering};
    pub use tracto_tracking::probabilistic::{seeds_from_mask, CpuTracker, RecordMode};
    pub use tracto_tracking::walker::TrackingParams;
    pub use tracto_tracking::SegmentationStrategy;
    pub use tracto_volume::{Dim3, Ijk, Mask, Vec3, Volume3, Volume4};
}
