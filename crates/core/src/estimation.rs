//! Step 1 on the simulated GPU: one lane per voxel's Markov chain.
//!
//! "We use one thread for the MCMC of one voxel, since the MCMC processes
//! for different voxels are completely independent of each other." Unlike
//! tracking, every chain runs the same `NumLoops`, so MCMC lanes are
//! perfectly balanced and need no segmentation — which is why the paper's
//! Table III speedup is a flat ~34× while tracking required the
//! load-balancing contribution.

use std::cell::RefCell;

use tracto_diffusion::posterior::{BallSticksParams, NUM_PARAMETERS};
use tracto_diffusion::{Acquisition, BallSticksPosterior, PriorConfig};
use tracto_gpu_sim::{Gpu, LaneStatus, MultiGpu, SimKernel, TimingLedger};
use tracto_mcmc::cached::{BallSticksCacheBuffers, CachedBallSticks};
use tracto_mcmc::chain::ChainConfig;
use tracto_mcmc::checkpoint::{
    CheckpointPolicy, CheckpointStore, SnapshotLoad, CHECKPOINT_LANE_BYTES,
};
use tracto_mcmc::mh::{IncrementalTarget, MhSampler, MhState};
use tracto_mcmc::voxelwise::{default_proposal_scales, SampleVolumes};
use tracto_rng::HybridTaus;
use tracto_trace::{Tracer, TractoResult, Value};
use tracto_volume::{Mask, Volume4};

/// One voxel's chain as a GPU lane.
pub struct McmcLane {
    voxel_index: usize,
    signal: Vec<f64>,
    sampler: MhSampler<NUM_PARAMETERS>,
    rng: HybridTaus,
    loops_done: u32,
    samples: Vec<[f64; NUM_PARAMETERS]>,
}

/// The MCMC kernel: one `step` = one MH loop (one update of each of the 9
/// parameters), matching the paper's Fig. 2 inner loop.
struct McmcKernel<'a> {
    acq: &'a Acquisition,
    prior: PriorConfig,
    config: ChainConfig,
}

impl SimKernel for McmcKernel<'_> {
    type Lane = McmcLane;

    /// One MH loop performs `NUM_PARAMETERS` posterior evaluations, each a
    /// full pass over the measurement vector — far heavier than the
    /// device's reference iteration (one tracking step, a handful of
    /// arithmetic ops plus a texture fetch). The weight makes simulated
    /// MCMC kernel seconds comparable across the two steps.
    fn cost_weight(&self) -> f64 {
        // Calibrated so a paper-shaped run (205k voxels × 600 loops on the
        // default 64-measurement protocol) lands near Table III's 41.3 s of
        // GPU time: one MH loop ≈ 0.08 × 9 × n_meas tracking-step
        // equivalents.
        NUM_PARAMETERS as f64 * self.acq.len() as f64 * 0.08
    }

    fn step(&self, lane: &mut McmcLane) -> LaneStatus {
        let config = self.config;
        if lane.loops_done >= config.num_loops() {
            return LaneStatus::Finished;
        }
        let posterior = BallSticksPosterior::new(self.acq, &lane.signal, self.prior);
        // The incremental target re-evaluates only the per-measurement terms
        // a proposal touches; per rayon worker one buffer set is rebound to
        // whichever lane the worker is stepping. Bit-identical to the plain
        // `step_loop` (pinned by `gpu_mcmc_matches_cpu_reference_exactly`).
        POSTERIOR_CACHE.with(|buf| {
            let mut buf = buf.borrow_mut();
            let mut cached = CachedBallSticks::new(&posterior, &mut buf);
            cached.init(lane.sampler.params());
            lane.sampler
                .step_loop_incremental(&mut cached, &mut lane.rng);
        });
        lane.loops_done += 1;
        // Record a sample every L loops after burn-in.
        if lane.loops_done > config.num_burnin {
            let since = lane.loops_done - config.num_burnin;
            if since % config.sample_interval == 0
                && lane.samples.len() < config.num_samples as usize
            {
                lane.samples.push(*lane.sampler.params());
            }
        }
        if lane.loops_done >= config.num_loops() {
            LaneStatus::Finished
        } else {
            LaneStatus::Continue
        }
    }
}

thread_local! {
    /// Reusable cache buffers for [`CachedBallSticks`]: one set per rayon
    /// worker, rebound to each lane it steps, so the hot loop allocates
    /// nothing in steady state.
    static POSTERIOR_CACHE: RefCell<BallSticksCacheBuffers> =
        RefCell::new(BallSticksCacheBuffers::new());
}

/// Report of a GPU-simulated MCMC run.
#[derive(Debug, Clone)]
pub struct McmcGpuReport {
    /// The six 4-D sample volumes.
    pub samples: SampleVolumes,
    /// Timing breakdown of the run.
    pub ledger: TimingLedger,
    /// Number of voxels estimated.
    pub voxels: usize,
    /// Chain-state snapshots taken (0 when checkpointing is disabled).
    pub checkpoints: u64,
}

/// Build one [`McmcLane`] per masked voxel, seeded per-voxel so results are
/// independent of how lanes are later partitioned across devices.
fn build_mcmc_lanes(
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
) -> Vec<McmcLane> {
    mask.indices()
        .into_iter()
        .map(|voxel_index| {
            let signal: Vec<f64> = dwi
                .voxel_at(voxel_index)
                .iter()
                .map(|&v| v as f64)
                .collect();
            let posterior = BallSticksPosterior::new(acq, &signal, prior);
            let mut init = posterior.initial_params();
            if prior.max_sticks == 1 {
                init.f2 = 0.0;
            }
            let scales = default_proposal_scales(init.s0);
            let target = |p: &[f64; NUM_PARAMETERS]| {
                posterior.log_posterior(&BallSticksParams::from_array(*p))
            };
            let mut sampler = MhSampler::new(&target, init.to_array(), scales, config.adapt);
            if prior.max_sticks == 1 {
                use tracto_diffusion::posterior::param_index;
                sampler.freeze(param_index::F2);
                sampler.freeze(param_index::TH2);
                sampler.freeze(param_index::PH2);
            }
            McmcLane {
                voxel_index,
                signal,
                sampler,
                rng: HybridTaus::seed_stream(seed, voxel_index as u64),
                loops_done: 0,
                samples: Vec::with_capacity(config.num_samples as usize),
            }
        })
        .collect()
}

/// Assemble downloaded lanes into the six sample volumes.
fn assemble_volumes(
    lanes: &[McmcLane],
    dwi: &Volume4<f32>,
    config: ChainConfig,
) -> (SampleVolumes, usize) {
    let mut volumes = SampleVolumes::zeros(dwi.dims(), config.num_samples as usize);
    let dims = dwi.dims();
    let mut voxels = 0;
    for lane in lanes {
        let c = dims.coords(lane.voxel_index);
        let out = tracto_mcmc::chain::ChainOutput::<NUM_PARAMETERS> {
            samples: lane.samples.clone(),
            final_scales: *lane.sampler.scales(),
            final_acceptance: lane.sampler.recent_acceptance_rates(),
        };
        volumes.store_chain(c, &out);
        voxels += 1;
    }
    (volumes, voxels)
}

/// Run Step 1 on the simulated GPU: upload the DWI volume, run one lane per
/// masked voxel for `NumLoops` iterations, download the six sample volumes.
///
/// Results are bit-identical to
/// [`VoxelEstimator::run_voxel`](tracto_mcmc::VoxelEstimator) with the same
/// `(seed, voxel)` pairs, since lanes execute the same chain code with the
/// same per-voxel RNG streams.
pub fn run_mcmc_gpu(
    gpu: &mut Gpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
) -> McmcGpuReport {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
    gpu.reset();

    // Upload the 4-D DWI volume plus b-values/gradients (Fig. 1 inputs).
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16; // b + 3-vector per volume
    gpu.transfer_to_device(dwi_bytes + protocol_bytes);

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);

    let kernel = McmcKernel { acq, prior, config };
    // Every chain needs exactly NumLoops iterations: one launch, perfectly
    // balanced lanes.
    gpu.launch(&kernel, &mut lanes, config.num_loops());

    // Download the six sample volumes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    gpu.transfer_to_host(out_bytes);

    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);

    McmcGpuReport {
        samples: volumes,
        ledger: *gpu.ledger(),
        voxels,
        checkpoints: 0,
    }
}

/// [`run_mcmc_gpu`] driven through the stream-aware launch path: the masked
/// voxels are split into `streams` contiguous lane groups, each bound to its
/// own stream, so one group's sample-volume readback hides behind the next
/// group's kernel on the simulated clock.
///
/// Chains are perfectly balanced, so each group still runs one launch of
/// `NumLoops` — the kernels serialize on the single device's compute engine
/// and only transfers overlap, which is exactly what real streams buy on
/// one GPU. Each lane owns its per-voxel RNG stream and runs the same loop
/// count, so the sample volumes are **bit-identical** to the serialized
/// path regardless of stream count; only the simulated timeline changes.
/// `streams <= 1` delegates to [`run_mcmc_gpu`] exactly.
#[allow(clippy::too_many_arguments)]
pub fn run_mcmc_gpu_streamed(
    gpu: &mut Gpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
    streams: usize,
) -> McmcGpuReport {
    if streams <= 1 {
        return run_mcmc_gpu(gpu, acq, dwi, mask, prior, config, seed);
    }
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
    gpu.reset();

    // The DWI volume and protocol are shared by every group; charge them to
    // stream 0 so each group's first launch transitively waits on them (the
    // groups' kernels serialize on the compute engine behind stream 0's).
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16;
    gpu.try_transfer_to_device_on(dwi_bytes + protocol_bytes, 0)
        .expect("transfer failed on a device with a fault plan");

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);
    let kernel = McmcKernel { acq, prior, config };

    let total = lanes.len();
    let groups = streams.min(total.max(1));
    let per_group = total.div_ceil(groups.max(1)).max(1);
    // One balanced launch per group, issued in stream order so the clock
    // pipelines group g's readback behind group g+1's kernel.
    for (g, group) in lanes.chunks_mut(per_group).enumerate() {
        gpu.try_launch_on(&kernel, group, config.num_loops(), g)
            .expect("launch failed on a device with a fault plan");
    }
    // Per-group share of the six sample volumes, proportional to lanes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    let mut charged = 0u64;
    let n_groups = total.div_ceil(per_group);
    for g in 0..n_groups {
        let lanes_in_group = per_group.min(total - g * per_group) as u64;
        let share = if g + 1 == n_groups {
            out_bytes - charged
        } else {
            out_bytes * lanes_in_group / total as u64
        };
        charged += share;
        gpu.try_transfer_to_host_on(share, g)
            .expect("transfer failed on a device with a fault plan");
    }

    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);

    McmcGpuReport {
        samples: volumes,
        ledger: *gpu.ledger(),
        voxels,
        checkpoints: 0,
    }
}

/// Run Step 1 across a device pool with chain checkpointing.
///
/// The single `NumLoops` launch is split into `checkpoint.segments(..)`
/// budgets; after each non-final segment the kept chain state is
/// snapshotted to the host ([`CHECKPOINT_LANE_BYTES`] per lane). Each chain
/// guards on its own loop counter, so segmentation — and any mid-segment
/// device-loss failover inside
/// [`launch_partitioned`](MultiGpu::launch_partitioned) — leaves the
/// posterior samples bit-identical to [`run_mcmc_gpu`] with the same seed:
/// a failed launch never advances a lane, so a lost device costs only the
/// replay time since the last completed segment, never a burn-in re-run.
///
/// Errors with [`tracto_trace::TractoError::Capacity`] if every device in
/// the pool is lost.
#[allow(clippy::too_many_arguments)]
pub fn run_mcmc_multi(
    multi: &mut MultiGpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
    checkpoint: CheckpointPolicy,
) -> TractoResult<McmcGpuReport> {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");

    // Every device needs the full DWI volume and protocol.
    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16;
    multi.broadcast_to_devices(dwi_bytes + protocol_bytes);

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);
    let kernel = McmcKernel { acq, prior, config };

    let segments = checkpoint.segments(config.num_loops());
    let mut checkpoints = 0u64;
    for (i, &budget) in segments.iter().enumerate() {
        multi.launch_partitioned(&kernel, &mut lanes, budget)?;
        if i + 1 < segments.len() {
            // Snapshot chain state so a later device loss replays at most
            // one segment.
            multi.gather_to_host(lanes.len() as u64 * CHECKPOINT_LANE_BYTES);
            checkpoints += 1;
        }
    }

    // Download the six sample volumes.
    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    multi.gather_to_host(out_bytes);

    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);

    Ok(McmcGpuReport {
        samples: volumes,
        ledger: multi.aggregate_ledger(),
        voxels,
        checkpoints,
    })
}

/// Where a persistently checkpointed run stores its snapshots: a
/// [`CheckpointStore`], the key naming this chain (the serve layer uses the
/// Step-1 content hash, so a recovered job recomputes the same key and
/// finds its own snapshot), and a tracer for `ckpt.*` lifecycle events.
pub struct PersistentCheckpoint<'a> {
    /// The snapshot store (under the service's `--state-dir`).
    pub store: &'a CheckpointStore,
    /// Snapshot key; must satisfy the store's key rules.
    pub key: String,
    /// Receives `ckpt.save` / `ckpt.resume` / `ckpt.corrupt` events.
    pub tracer: Tracer,
}

// --- chain-state snapshot codec -------------------------------------------
//
// The payload the CheckpointStore envelopes for one MCMC run: a fingerprint
// of the chain schedule, then the full mutable state of every lane. Every
// number is written as little-endian bit patterns (f64::to_bits for floats),
// so restore is exact — no text round-trip, no rounding.

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.bytes.len() {
            return Err(format!(
                "snapshot payload truncated at byte {} (wanted {n} more of {})",
                self.pos,
                self.bytes.len()
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64_array<const N: usize>(&mut self) -> Result<[f64; N], String> {
        let mut out = [0.0; N];
        for v in &mut out {
            *v = self.f64()?;
        }
        Ok(out)
    }

    fn u32_array<const N: usize>(&mut self) -> Result<[u32; N], String> {
        let mut out = [0; N];
        for v in &mut out {
            *v = self.u32()?;
        }
        Ok(out)
    }
}

fn encode_chain_state(
    lanes: &[McmcLane],
    config: ChainConfig,
    seed: u64,
    segments_done: u32,
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + lanes.len() * 256);
    buf.extend_from_slice(&config.num_burnin.to_le_bytes());
    buf.extend_from_slice(&config.num_samples.to_le_bytes());
    buf.extend_from_slice(&config.sample_interval.to_le_bytes());
    buf.extend_from_slice(&segments_done.to_le_bytes());
    buf.extend_from_slice(&seed.to_le_bytes());
    buf.extend_from_slice(&(lanes.len() as u64).to_le_bytes());
    for lane in lanes {
        buf.extend_from_slice(&(lane.voxel_index as u64).to_le_bytes());
        buf.extend_from_slice(&lane.loops_done.to_le_bytes());
        for z in lane.rng.state() {
            buf.extend_from_slice(&z.to_le_bytes());
        }
        let s = lane.sampler.snapshot();
        for p in s.params {
            buf.extend_from_slice(&p.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&s.log_density.to_bits().to_le_bytes());
        for sc in s.scales {
            buf.extend_from_slice(&sc.to_bits().to_le_bytes());
        }
        for a in s.accepted {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        for p in s.proposed {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf.extend_from_slice(&s.loops_done.to_le_bytes());
        for r in s.last_window_rates {
            buf.extend_from_slice(&r.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(lane.samples.len() as u32).to_le_bytes());
        for sample in &lane.samples {
            for v in sample {
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }
    buf
}

/// Apply a decoded snapshot onto freshly built lanes. Returns how many
/// segments the snapshotted run had completed, or a reason string when the
/// payload does not belong to this `(lanes, config, seed)` run — the caller
/// then restarts from scratch exactly as for a corrupt envelope.
fn restore_chain_state(
    lanes: &mut [McmcLane],
    config: ChainConfig,
    seed: u64,
    payload: &[u8],
) -> Result<u32, String> {
    let mut r = ByteReader {
        bytes: payload,
        pos: 0,
    };
    let (burnin, samples, interval) = (r.u32()?, r.u32()?, r.u32()?);
    let segments_done = r.u32()?;
    let snap_seed = r.u64()?;
    let lane_count = r.u64()?;
    if (burnin, samples, interval)
        != (
            config.num_burnin,
            config.num_samples,
            config.sample_interval,
        )
    {
        return Err(format!(
            "chain schedule mismatch: snapshot {burnin}/{samples}/{interval}, \
             run {}/{}/{}",
            config.num_burnin, config.num_samples, config.sample_interval
        ));
    }
    if snap_seed != seed {
        return Err(format!("seed mismatch: snapshot {snap_seed}, run {seed}"));
    }
    if lane_count != lanes.len() as u64 {
        return Err(format!(
            "lane count mismatch: snapshot {lane_count}, run {}",
            lanes.len()
        ));
    }
    for lane in lanes.iter_mut() {
        let voxel = r.u64()?;
        if voxel != lane.voxel_index as u64 {
            return Err(format!(
                "voxel order mismatch: snapshot {voxel}, run {}",
                lane.voxel_index
            ));
        }
        let loops_done = r.u32()?;
        let rng_state = r.u32_array::<4>()?;
        let state = MhState::<NUM_PARAMETERS> {
            params: r.f64_array()?,
            log_density: r.f64()?,
            scales: r.f64_array()?,
            accepted: r.u32_array()?,
            proposed: r.u32_array()?,
            loops_done: r.u32()?,
            last_window_rates: r.f64_array()?,
        };
        let n_samples = r.u32()? as usize;
        if n_samples > config.num_samples as usize {
            return Err(format!(
                "snapshot holds {n_samples} samples, schedule allows {}",
                config.num_samples
            ));
        }
        let mut collected = Vec::with_capacity(config.num_samples as usize);
        for _ in 0..n_samples {
            collected.push(r.f64_array::<NUM_PARAMETERS>()?);
        }
        // The freeze mask is configuration: carry it over from the freshly
        // built sampler rather than trusting bytes on disk.
        let mut frozen = [false; NUM_PARAMETERS];
        for (j, f) in frozen.iter_mut().enumerate() {
            *f = lane.sampler.is_frozen(j);
        }
        lane.sampler = MhSampler::restore(state, config.adapt, frozen);
        lane.rng = HybridTaus::from_state(rng_state);
        lane.loops_done = loops_done;
        lane.samples = collected;
    }
    if r.pos != payload.len() {
        return Err(format!(
            "snapshot payload has {} trailing bytes",
            payload.len() - r.pos
        ));
    }
    Ok(segments_done)
}

/// [`run_mcmc_gpu`] with durable, resumable checkpoints.
///
/// The `NumLoops` launch is split into `checkpoint.segments(..)` budgets;
/// after each non-final segment the full chain state (sampler, RNG, kept
/// samples) is encoded and written through `persist.store` — atomically, so
/// a process killed at any instant leaves a complete snapshot from at most
/// one checkpoint interval ago. On entry, an existing valid snapshot for
/// `persist.key` is restored and the completed segments are skipped; a
/// corrupt or mismatched snapshot emits a `ckpt.corrupt` event and the run
/// restarts from scratch. Each chain guards on its own loop counter, so
/// interrupted-and-resumed runs are bit-identical to uninterrupted ones.
///
/// The snapshot is discarded once the run completes.
#[allow(clippy::too_many_arguments)]
pub fn run_mcmc_gpu_checkpointed(
    gpu: &mut Gpu,
    acq: &Acquisition,
    dwi: &Volume4<f32>,
    mask: &Mask,
    prior: PriorConfig,
    config: ChainConfig,
    seed: u64,
    checkpoint: CheckpointPolicy,
    persist: &PersistentCheckpoint<'_>,
) -> TractoResult<McmcGpuReport> {
    assert_eq!(dwi.nt(), acq.len(), "DWI volume count must match protocol");
    assert_eq!(dwi.dims(), mask.dims(), "mask dims must match DWI dims");
    gpu.reset();

    let dwi_bytes = dwi.len() as u64 * 4;
    let protocol_bytes = acq.len() as u64 * 16;
    gpu.transfer_to_device(dwi_bytes + protocol_bytes);

    let mut lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);
    let key = persist.key.as_str();
    let mut segments_done = 0u32;
    match persist.store.load(key)? {
        SnapshotLoad::Missing => {}
        SnapshotLoad::Corrupt(reason) => {
            persist.tracer.emit(
                "ckpt.corrupt",
                &[
                    ("key", Value::Text(key.to_string())),
                    ("reason", Value::Text(reason)),
                ],
            );
        }
        SnapshotLoad::Snapshot(payload) => {
            match restore_chain_state(&mut lanes, config, seed, &payload) {
                Ok(done) => {
                    segments_done = done;
                    persist.tracer.emit(
                        "ckpt.resume",
                        &[
                            ("key", Value::Text(key.to_string())),
                            ("segments_done", u64::from(done).into()),
                        ],
                    );
                }
                Err(reason) => {
                    // Structurally valid envelope, wrong contents: same
                    // fallback as corruption — restart from scratch.
                    persist.store.discard(key)?;
                    lanes = build_mcmc_lanes(acq, dwi, mask, prior, config, seed);
                    persist.tracer.emit(
                        "ckpt.corrupt",
                        &[
                            ("key", Value::Text(key.to_string())),
                            ("reason", Value::Text(reason)),
                        ],
                    );
                }
            }
        }
    }

    let kernel = McmcKernel { acq, prior, config };
    let segments = checkpoint.segments(config.num_loops());
    let mut checkpoints = 0u64;
    for (i, &budget) in segments.iter().enumerate() {
        if (i as u32) < segments_done {
            continue; // already covered by the restored snapshot
        }
        gpu.launch(&kernel, &mut lanes, budget);
        if i + 1 < segments.len() {
            // The simulated device pays the same per-lane snapshot transfer
            // as in-memory checkpointing; durability adds host-side fsync
            // cost only (measured by the checkpoint_persistence bench).
            gpu.transfer_to_host(lanes.len() as u64 * CHECKPOINT_LANE_BYTES);
            let payload = encode_chain_state(&lanes, config, seed, i as u32 + 1);
            let bytes = payload.len() as u64;
            persist.store.save(key, &payload)?;
            checkpoints += 1;
            persist.tracer.emit(
                "ckpt.save",
                &[
                    ("key", Value::Text(key.to_string())),
                    ("segment", (i as u64 + 1).into()),
                    ("bytes", bytes.into()),
                ],
            );
        }
    }

    let out_bytes = 6 * dwi.dims().len() as u64 * config.num_samples as u64 * 4;
    gpu.transfer_to_host(out_bytes);
    let (volumes, voxels) = assemble_volumes(&lanes, dwi, config);
    persist.store.discard(key)?;

    Ok(McmcGpuReport {
        samples: volumes,
        ledger: *gpu.ledger(),
        voxels,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracto_gpu_sim::DeviceConfig;
    use tracto_mcmc::VoxelEstimator;
    use tracto_phantom::datasets;
    use tracto_volume::{Dim3, Ijk};

    fn small_gpu() -> Gpu {
        Gpu::new(DeviceConfig {
            wavefront_size: 8,
            num_compute_units: 2,
            waves_per_cu: 2,
            ..DeviceConfig::radeon_5870()
        })
    }

    #[test]
    fn gpu_mcmc_matches_cpu_reference_exactly() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let gpu_out = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        let cpu_out = VoxelEstimator::new(&ds.acq, &ds.dwi, &mask, prior, config, 77).run_serial();
        assert_eq!(
            gpu_out.samples.f1, cpu_out.f1,
            "f1 volumes must be bit-identical"
        );
        assert_eq!(gpu_out.samples.th1, cpu_out.th1);
        assert_eq!(gpu_out.samples.ph2, cpu_out.ph2);
        assert_eq!(gpu_out.voxels, mask.count());
    }

    #[test]
    fn mcmc_lanes_perfectly_balanced() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.k == 2);
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        // All lanes run NumLoops: zero lockstep waste.
        assert!(
            (out.ledger.simd_utilization() - 1.0).abs() < 1e-12,
            "utilization {}",
            out.ledger.simd_utilization()
        );
        assert_eq!(out.ledger.launches, 1);
    }

    #[test]
    fn streamed_mcmc_bit_identical_to_serialized() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let serialized = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        for streams in [2usize, 3, 5] {
            let mut gpu = small_gpu();
            let streamed = run_mcmc_gpu_streamed(
                &mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77, streams,
            );
            assert_eq!(
                serialized.samples.f1, streamed.samples.f1,
                "{streams} streams: f1 must be bit-identical"
            );
            assert_eq!(serialized.samples.th1, streamed.samples.th1);
            assert_eq!(serialized.samples.ph2, streamed.samples.ph2);
            assert_eq!(serialized.voxels, streamed.voxels);
            // Same total traffic, just charged to different streams.
            assert_eq!(serialized.ledger.bytes_h2d, streamed.ledger.bytes_h2d);
            assert_eq!(serialized.ledger.bytes_d2h, streamed.ledger.bytes_d2h);
        }
    }

    #[test]
    fn streamed_mcmc_overlaps_readbacks_behind_kernels() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        run_mcmc_gpu_streamed(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77, 3);
        assert!(
            gpu.overlap_saved_s() > 0.0,
            "a group's readback should hide behind the next group's kernel"
        );
        assert!(gpu.clock_s() < gpu.stream_clock().serial_s());
    }

    #[test]
    fn single_stream_delegates_to_serialized_path() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut a = small_gpu();
        let plain = run_mcmc_gpu(&mut a, &ds.acq, &ds.dwi, &mask, prior, config, 9);
        let mut b = small_gpu();
        let streamed = run_mcmc_gpu_streamed(&mut b, &ds.acq, &ds.dwi, &mask, prior, config, 9, 1);
        assert_eq!(plain.samples.f1, streamed.samples.f1);
        assert_eq!(a.clock_s(), b.clock_s(), "streams=1 charges identically");
        assert_eq!(b.overlap_saved_s(), 0.0);
    }

    #[test]
    fn transfers_match_volume_sizes() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        let dwi_bytes = ds.dwi.len() as u64 * 4;
        assert!(out.ledger.bytes_h2d >= dwi_bytes);
        let sample_bytes = 6 * ds.dwi.dims().len() as u64 * config.num_samples as u64 * 4;
        assert_eq!(out.ledger.bytes_d2h, sample_bytes);
    }

    #[test]
    fn multi_device_checkpointed_matches_single_device_exactly() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let single = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        let mut multi = MultiGpu::new(small_gpu().config().clone(), 3);
        let multi_out = run_mcmc_multi(
            &mut multi,
            &ds.acq,
            &ds.dwi,
            &mask,
            prior,
            config,
            77,
            CheckpointPolicy::every(3),
        )
        .unwrap();
        assert_eq!(single.samples.f1, multi_out.samples.f1);
        assert_eq!(single.samples.th1, multi_out.samples.th1);
        assert_eq!(single.samples.ph2, multi_out.samples.ph2);
        assert_eq!(single.voxels, multi_out.voxels);
        assert!(multi_out.checkpoints > 0, "policy of 3 loops snapshots");
        // Snapshots are charged to the transfer ledger.
        assert!(multi_out.ledger.bytes_d2h > single.ledger.bytes_d2h);
    }

    #[test]
    fn device_loss_mid_estimation_resumes_from_checkpoint() {
        use tracto_gpu_sim::FaultPlan;

        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let run = |plan: Option<&FaultPlan>| {
            let mut multi = MultiGpu::new(small_gpu().config().clone(), 3);
            if let Some(p) = plan {
                multi.set_fault_plan(p);
            }
            run_mcmc_multi(
                &mut multi,
                &ds.acq,
                &ds.dwi,
                &mask,
                prior,
                config,
                77,
                CheckpointPolicy::every(3),
            )
            .map(|r| {
                (
                    r,
                    multi.failovers(),
                    multi.aggregate_ledger().useful_iterations,
                )
            })
        };
        let (clean, _, clean_useful) = run(None).unwrap();
        // Lose device 1 partway through the segmented launches.
        let plan = FaultPlan::parse("fault 1 2 device-lost").unwrap();
        let (faulted, failovers, faulted_useful) = run(Some(&plan)).unwrap();
        assert_eq!(clean.samples.f1, faulted.samples.f1, "bit-identical");
        assert_eq!(clean.samples.th1, faulted.samples.th1);
        assert_eq!(failovers, 1);
        // No burn-in re-run: failed launches never advance a lane, so the
        // faulted run performs exactly the same useful work.
        assert_eq!(clean_useful, faulted_useful);
    }

    #[test]
    fn all_devices_lost_surfaces_capacity_error() {
        use tracto_gpu_sim::FaultPlan;

        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let plan = FaultPlan::parse("fault 0 0 device-lost\nfault 1 0 device-lost").unwrap();
        let mut multi = MultiGpu::new(small_gpu().config().clone(), 2);
        multi.set_fault_plan(&plan);
        let err = run_mcmc_multi(
            &mut multi,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            ChainConfig::fast_test(),
            5,
            CheckpointPolicy::disabled(),
        )
        .expect_err("no devices left");
        assert_eq!(err.kind(), tracto_trace::ErrorKind::Capacity);
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!(
            "tracto-est-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir).unwrap();
        (dir, store)
    }

    /// Simulate a crash: run only `crash_after` segments of the schedule,
    /// persist the snapshot exactly as the checkpointed runner would, and
    /// throw everything else away.
    #[allow(clippy::too_many_arguments)]
    fn run_partially_then_die(
        ds: &tracto_phantom::datasets::Dataset,
        mask: &Mask,
        config: ChainConfig,
        seed: u64,
        policy: CheckpointPolicy,
        crash_after: usize,
        store: &CheckpointStore,
        key: &str,
    ) {
        let prior = PriorConfig::default();
        let mut gpu = small_gpu();
        let mut lanes = build_mcmc_lanes(&ds.acq, &ds.dwi, mask, prior, config, seed);
        let kernel = McmcKernel {
            acq: &ds.acq,
            prior,
            config,
        };
        let segments = policy.segments(config.num_loops());
        assert!(crash_after < segments.len(), "crash point must be mid-run");
        for (i, &budget) in segments.iter().take(crash_after).enumerate() {
            gpu.launch(&kernel, &mut lanes, budget);
            store
                .save(key, &encode_chain_state(&lanes, config, seed, i as u32 + 1))
                .unwrap();
        }
        // ... SIGKILL: lanes dropped, only the store survives.
    }

    #[test]
    fn interrupted_run_resumes_bit_identical_to_uninterrupted() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let policy = CheckpointPolicy::every(3);
        let mut gpu = small_gpu();
        let clean = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);

        let n_segments = policy.segments(config.num_loops()).len();
        assert!(
            n_segments >= 3,
            "schedule too short to test mid-run crashes"
        );
        for crash_after in 1..n_segments {
            let (dir, store) = tmp_store(&format!("resume{crash_after}"));
            run_partially_then_die(&ds, &mask, config, 77, policy, crash_after, &store, "job");
            // "Restart": a fresh checkpointed run over the same store.
            let ring = std::sync::Arc::new(tracto_trace::RingSink::new(4096));
            let persist = PersistentCheckpoint {
                store: &store,
                key: "job".to_string(),
                tracer: Tracer::shared(ring.clone()),
            };
            let mut gpu2 = small_gpu();
            let resumed = run_mcmc_gpu_checkpointed(
                &mut gpu2, &ds.acq, &ds.dwi, &mask, prior, config, 77, policy, &persist,
            )
            .unwrap();
            assert_eq!(
                clean.samples.f1, resumed.samples.f1,
                "crash after {crash_after} segment(s): f1 must be bit-identical"
            );
            assert_eq!(clean.samples.th1, resumed.samples.th1);
            assert_eq!(clean.samples.ph2, resumed.samples.ph2);
            assert_eq!(clean.voxels, resumed.voxels);
            assert_eq!(ring.count("ckpt.resume"), 1, "crash {crash_after}");
            assert_eq!(ring.count("ckpt.corrupt"), 0);
            assert_eq!(
                store.load("job").unwrap(),
                SnapshotLoad::Missing,
                "snapshot discarded after completion"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_snapshot_restarts_from_scratch_with_trace_event() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let policy = CheckpointPolicy::every(3);
        let mut gpu = small_gpu();
        let clean = run_mcmc_gpu(&mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77);

        let (dir, store) = tmp_store("corrupt");
        run_partially_then_die(&ds, &mask, config, 77, policy, 2, &store, "job");
        // Flip a payload byte: the envelope checksum must catch it.
        let path = dir.join("job.ckpt");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let ring = std::sync::Arc::new(tracto_trace::RingSink::new(4096));
        let persist = PersistentCheckpoint {
            store: &store,
            key: "job".to_string(),
            tracer: Tracer::shared(ring.clone()),
        };
        let mut gpu2 = small_gpu();
        let resumed = run_mcmc_gpu_checkpointed(
            &mut gpu2, &ds.acq, &ds.dwi, &mask, prior, config, 77, policy, &persist,
        )
        .unwrap();
        assert_eq!(ring.count("ckpt.corrupt"), 1, "corruption must be reported");
        assert_eq!(ring.count("ckpt.resume"), 0, "no resume from garbage");
        assert_eq!(
            clean.samples.f1, resumed.samples.f1,
            "restart is still exact"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_snapshot_is_rejected_not_resumed() {
        // A snapshot taken under a different seed shares the key (operator
        // error / key collision): the fingerprint rejects it and the run
        // restarts from scratch rather than splicing chains.
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let policy = CheckpointPolicy::every(3);
        let (dir, store) = tmp_store("mismatch");
        run_partially_then_die(&ds, &mask, config, 123, policy, 1, &store, "job");

        let ring = std::sync::Arc::new(tracto_trace::RingSink::new(4096));
        let persist = PersistentCheckpoint {
            store: &store,
            key: "job".to_string(),
            tracer: Tracer::shared(ring.clone()),
        };
        let mut gpu = small_gpu();
        let resumed = run_mcmc_gpu_checkpointed(
            &mut gpu, &ds.acq, &ds.dwi, &mask, prior, config, 77, policy, &persist,
        )
        .unwrap();
        let mut gpu2 = small_gpu();
        let clean = run_mcmc_gpu(&mut gpu2, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        assert_eq!(clean.samples.f1, resumed.samples.f1);
        assert_eq!(ring.count("ckpt.corrupt"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_without_prior_snapshot_matches_plain_run() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), Some(25.0), 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c.j == 2 && c.k == 2);
        let config = ChainConfig::fast_test();
        let prior = PriorConfig::default();
        let (dir, store) = tmp_store("fresh");
        let persist = PersistentCheckpoint {
            store: &store,
            key: "fresh".to_string(),
            tracer: Tracer::disabled(),
        };
        let mut gpu = small_gpu();
        let ckpt = run_mcmc_gpu_checkpointed(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            prior,
            config,
            77,
            CheckpointPolicy::every(3),
            &persist,
        )
        .unwrap();
        let mut gpu2 = small_gpu();
        let plain = run_mcmc_gpu(&mut gpu2, &ds.acq, &ds.dwi, &mask, prior, config, 77);
        assert_eq!(ckpt.samples.f1, plain.samples.f1);
        assert_eq!(ckpt.samples.th2, plain.samples.th2);
        assert!(ckpt.checkpoints > 0, "snapshots were written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sample_count_honored() {
        let ds = datasets::single_bundle(Dim3::new(6, 4, 4), None, 3);
        let mask = Mask::from_fn(ds.dwi.dims(), |c| c == Ijk::new(3, 2, 2));
        let config = ChainConfig::fast_test();
        let mut gpu = small_gpu();
        let out = run_mcmc_gpu(
            &mut gpu,
            &ds.acq,
            &ds.dwi,
            &mask,
            PriorConfig::default(),
            config,
            5,
        );
        assert_eq!(out.samples.num_samples(), config.num_samples as usize);
    }
}
